/**
 * @file
 * cuDNN-lite PTX: direct convolution kernels — IMPLICIT_GEMM forward and the
 * numbered backward algorithms (scatter/atomic and gather variants).
 *
 * conv_bwd_data_algo1 decides tap validity with a signed remainder
 * (`rem.s32` on a possibly negative value): exactly the instruction class
 * whose untyped legacy implementation the paper debugged (Section III-D).
 */
#include "cudnn/kernels.h"

namespace mlgs::cudnn
{

const char *kConvPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// Forward IMPLICIT_GEMM: one thread per output element (n,k,oy,ox), looping
// over (c,r,s) with boundary guards. Correlation convention (no flip).
.visible .entry implicit_gemm_fwd(
    .param .u64 X, .param .u64 Wf, .param .u64 Y,
    .param .u32 N, .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 K, .param .u32 R, .param .u32 S,
    .param .u32 OH, .param .u32 OW,
    .param .u32 pad, .param .u32 stride
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<30>;
    .reg .s32 %s<10>;
    .reg .f32 %f<6>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Wf];
    ld.param.u64 %rd3, [Y];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [H];
    ld.param.u32 %r4, [Wd];
    ld.param.u32 %r5, [K];
    ld.param.u32 %r6, [R];
    ld.param.u32 %r7, [S];
    ld.param.u32 %r8, [OH];
    ld.param.u32 %r9, [OW];
    ld.param.u32 %r10, [pad];
    ld.param.u32 %r11, [stride];

    mov.u32 %r12, %ctaid.x;
    mov.u32 %r13, %ntid.x;
    mov.u32 %r14, %tid.x;
    mad.lo.u32 %r15, %r12, %r13, %r14;   // flat (n,k,oy,ox)
    mul.lo.u32 %r16, %r8, %r9;           // OHW
    mul.lo.u32 %r17, %r5, %r16;          // K*OHW
    mul.lo.u32 %r18, %r1, %r17;
    setp.ge.u32 %p1, %r15, %r18;
    @%p1 bra DONE;

    div.u32 %r19, %r15, %r17;            // n
    rem.u32 %r20, %r15, %r17;
    div.u32 %r21, %r20, %r16;            // k
    rem.u32 %r22, %r20, %r16;
    div.u32 %r23, %r22, %r9;             // oy
    rem.u32 %r24, %r22, %r9;             // ox

    // iy0 = oy*stride - pad ; ix0 = ox*stride - pad (can be negative)
    mul.lo.u32 %r12, %r23, %r11;
    cvt.s32.u32 %s1, %r12;
    cvt.s32.u32 %s2, %r10;
    sub.s32 %s1, %s1, %s2;
    mul.lo.u32 %r12, %r24, %r11;
    cvt.s32.u32 %s3, %r12;
    sub.s32 %s3, %s3, %s2;

    mov.f32 %f1, 0f00000000;
    mov.u32 %r25, 0;                     // c
CLOOP:
    setp.ge.u32 %p2, %r25, %r2;
    @%p2 bra CDONE;
    mov.u32 %r26, 0;                     // r
RLOOP:
    setp.ge.u32 %p3, %r26, %r6;
    @%p3 bra RDONE;
    cvt.s32.u32 %s4, %r26;
    add.s32 %s5, %s1, %s4;               // iy
    setp.lt.s32 %p4, %s5, 0;
    @%p4 bra RNEXT;
    cvt.s32.u32 %s6, %r3;
    setp.ge.s32 %p4, %s5, %s6;
    @%p4 bra RNEXT;
    mov.u32 %r27, 0;                     // s
SLOOP:
    setp.ge.u32 %p5, %r27, %r7;
    @%p5 bra SDONE;
    cvt.s32.u32 %s4, %r27;
    add.s32 %s7, %s3, %s4;               // ix
    setp.lt.s32 %p4, %s7, 0;
    @%p4 bra SNEXT;
    cvt.s32.u32 %s6, %r4;
    setp.ge.s32 %p4, %s7, %s6;
    @%p4 bra SNEXT;
    // x[((n*C + c)*H + iy)*W + ix]
    mad.lo.u32 %r28, %r19, %r2, %r25;
    cvt.u32.s32 %r12, %s5;
    mad.lo.u32 %r28, %r28, %r3, %r12;
    cvt.u32.s32 %r12, %s7;
    mad.lo.u32 %r28, %r28, %r4, %r12;
    mul.wide.u32 %rd4, %r28, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    // w[((k*C + c)*R + r)*S + s]
    mad.lo.u32 %r29, %r21, %r2, %r25;
    mad.lo.u32 %r29, %r29, %r6, %r26;
    mad.lo.u32 %r29, %r29, %r7, %r27;
    mul.wide.u32 %rd6, %r29, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
SNEXT:
    add.u32 %r27, %r27, 1;
    bra SLOOP;
SDONE:
RNEXT:
    add.u32 %r26, %r26, 1;
    bra RLOOP;
RDONE:
    add.u32 %r25, %r25, 1;
    bra CLOOP;
CDONE:
    mul.wide.u32 %rd4, %r15, 4;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}

// Backward data, ALGO_0: atomic scatter. One thread per dy element,
// scattering x-gradient contributions with red.global.add.
.visible .entry conv_bwd_data_algo0(
    .param .u64 DY, .param .u64 Wf, .param .u64 DX,
    .param .u32 N, .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 K, .param .u32 R, .param .u32 S,
    .param .u32 OH, .param .u32 OW,
    .param .u32 pad, .param .u32 stride
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<30>;
    .reg .s32 %s<10>;
    .reg .f32 %f<6>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [DY];
    ld.param.u64 %rd2, [Wf];
    ld.param.u64 %rd3, [DX];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [H];
    ld.param.u32 %r4, [Wd];
    ld.param.u32 %r5, [K];
    ld.param.u32 %r6, [R];
    ld.param.u32 %r7, [S];
    ld.param.u32 %r8, [OH];
    ld.param.u32 %r9, [OW];
    ld.param.u32 %r10, [pad];
    ld.param.u32 %r11, [stride];

    mov.u32 %r12, %ctaid.x;
    mov.u32 %r13, %ntid.x;
    mov.u32 %r14, %tid.x;
    mad.lo.u32 %r15, %r12, %r13, %r14;   // flat (n,k,oy,ox)
    mul.lo.u32 %r16, %r8, %r9;
    mul.lo.u32 %r17, %r5, %r16;
    mul.lo.u32 %r18, %r1, %r17;
    setp.ge.u32 %p1, %r15, %r18;
    @%p1 bra DONE;

    div.u32 %r19, %r15, %r17;            // n
    rem.u32 %r20, %r15, %r17;
    div.u32 %r21, %r20, %r16;            // k
    rem.u32 %r22, %r20, %r16;
    div.u32 %r23, %r22, %r9;             // oy
    rem.u32 %r24, %r22, %r9;             // ox

    mul.wide.u32 %rd4, %r15, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];           // dy value

    mul.lo.u32 %r12, %r23, %r11;
    cvt.s32.u32 %s1, %r12;
    cvt.s32.u32 %s2, %r10;
    sub.s32 %s1, %s1, %s2;               // iy0
    mul.lo.u32 %r12, %r24, %r11;
    cvt.s32.u32 %s3, %r12;
    sub.s32 %s3, %s3, %s2;               // ix0

    mov.u32 %r25, 0;                     // c
CLOOP:
    setp.ge.u32 %p2, %r25, %r2;
    @%p2 bra DONE;
    mov.u32 %r26, 0;                     // r
RLOOP:
    setp.ge.u32 %p3, %r26, %r6;
    @%p3 bra RDONE;
    cvt.s32.u32 %s4, %r26;
    add.s32 %s5, %s1, %s4;               // iy
    setp.lt.s32 %p4, %s5, 0;
    @%p4 bra RNEXT;
    cvt.s32.u32 %s6, %r3;
    setp.ge.s32 %p4, %s5, %s6;
    @%p4 bra RNEXT;
    mov.u32 %r27, 0;                     // s
SLOOP:
    setp.ge.u32 %p5, %r27, %r7;
    @%p5 bra SDONE;
    cvt.s32.u32 %s4, %r27;
    add.s32 %s7, %s3, %s4;               // ix
    setp.lt.s32 %p4, %s7, 0;
    @%p4 bra SNEXT;
    cvt.s32.u32 %s6, %r4;
    setp.ge.s32 %p4, %s7, %s6;
    @%p4 bra SNEXT;
    // dw contribution: dx[n,c,iy,ix] += dy * w[k,c,r,s]
    mad.lo.u32 %r28, %r21, %r2, %r25;
    mad.lo.u32 %r28, %r28, %r6, %r26;
    mad.lo.u32 %r28, %r28, %r7, %r27;
    mul.wide.u32 %rd6, %r28, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f2, [%rd7];
    mul.f32 %f3, %f1, %f2;
    mad.lo.u32 %r29, %r19, %r2, %r25;
    cvt.u32.s32 %r12, %s5;
    mad.lo.u32 %r29, %r29, %r3, %r12;
    cvt.u32.s32 %r12, %s7;
    mad.lo.u32 %r29, %r29, %r4, %r12;
    mul.wide.u32 %rd6, %r29, 4;
    add.u64 %rd7, %rd3, %rd6;
    red.global.add.f32 [%rd7], %f3;
SNEXT:
    add.u32 %r27, %r27, 1;
    bra SLOOP;
SDONE:
RNEXT:
    add.u32 %r26, %r26, 1;
    bra RLOOP;
RDONE:
    add.u32 %r25, %r25, 1;
    bra CLOOP;
DONE:
    ret;
}

// Backward data, ALGO_1: deterministic gather. One thread per dx element:
//   dx[n,c,iy,ix] = sum_{k,r,s : (iy+pad-r) % stride == 0, ...}
//                   dy[n,k,(iy+pad-r)/stride,(ix+pad-s)/stride] * w[k,c,r,s]
// (iy + pad - r) can be negative: the remainder must honour the sign, which
// is the rem bug class the paper fixed.
.visible .entry conv_bwd_data_algo1(
    .param .u64 DY, .param .u64 Wf, .param .u64 DX,
    .param .u32 N, .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 K, .param .u32 R, .param .u32 S,
    .param .u32 OH, .param .u32 OW,
    .param .u32 pad, .param .u32 stride
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<30>;
    .reg .s32 %s<16>;
    .reg .f32 %f<6>;
    .reg .pred %p<8>;

    ld.param.u64 %rd1, [DY];
    ld.param.u64 %rd2, [Wf];
    ld.param.u64 %rd3, [DX];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [H];
    ld.param.u32 %r4, [Wd];
    ld.param.u32 %r5, [K];
    ld.param.u32 %r6, [R];
    ld.param.u32 %r7, [S];
    ld.param.u32 %r8, [OH];
    ld.param.u32 %r9, [OW];
    ld.param.u32 %r10, [pad];
    ld.param.u32 %r11, [stride];

    mov.u32 %r12, %ctaid.x;
    mov.u32 %r13, %ntid.x;
    mov.u32 %r14, %tid.x;
    mad.lo.u32 %r15, %r12, %r13, %r14;   // flat (n,c,iy,ix)
    mul.lo.u32 %r16, %r3, %r4;           // HW
    mul.lo.u32 %r17, %r2, %r16;
    mul.lo.u32 %r18, %r1, %r17;
    setp.ge.u32 %p1, %r15, %r18;
    @%p1 bra DONE;

    div.u32 %r19, %r15, %r17;            // n
    rem.u32 %r20, %r15, %r17;
    div.u32 %r21, %r20, %r16;            // c
    rem.u32 %r22, %r20, %r16;
    div.u32 %r23, %r22, %r4;             // iy
    rem.u32 %r24, %r22, %r4;             // ix

    cvt.s32.u32 %s10, %r11;              // stride (signed)
    cvt.s32.u32 %s11, %r8;               // OH
    cvt.s32.u32 %s12, %r9;               // OW

    mov.f32 %f1, 0f00000000;
    mov.u32 %r25, 0;                     // k
KLOOP:
    setp.ge.u32 %p2, %r25, %r5;
    @%p2 bra KDONE;
    mov.u32 %r26, 0;                     // r
RLOOP:
    setp.ge.u32 %p3, %r26, %r6;
    @%p3 bra RDONE;
    // ty = iy + pad - r  (may be negative)
    cvt.s32.u32 %s1, %r23;
    cvt.s32.u32 %s2, %r10;
    add.s32 %s1, %s1, %s2;
    cvt.s32.u32 %s3, %r26;
    sub.s32 %s1, %s1, %s3;
    // tap valid iff ty % stride == 0 and 0 <= ty/stride < OH
    rem.s32 %s4, %s1, %s10;
    setp.ne.s32 %p4, %s4, 0;
    @%p4 bra RNEXT;
    setp.lt.s32 %p4, %s1, 0;
    @%p4 bra RNEXT;
    div.s32 %s5, %s1, %s10;              // oy
    setp.ge.s32 %p4, %s5, %s11;
    @%p4 bra RNEXT;
    mov.u32 %r27, 0;                     // s
SLOOP:
    setp.ge.u32 %p5, %r27, %r7;
    @%p5 bra SDONE;
    cvt.s32.u32 %s6, %r24;
    add.s32 %s6, %s6, %s2;
    cvt.s32.u32 %s7, %r27;
    sub.s32 %s6, %s6, %s7;               // tx
    rem.s32 %s8, %s6, %s10;
    setp.ne.s32 %p6, %s8, 0;
    @%p6 bra SNEXT;
    setp.lt.s32 %p6, %s6, 0;
    @%p6 bra SNEXT;
    div.s32 %s9, %s6, %s10;              // ox
    setp.ge.s32 %p6, %s9, %s12;
    @%p6 bra SNEXT;
    // dy[((n*K + k)*OH + oy)*OW + ox]
    mad.lo.u32 %r28, %r19, %r5, %r25;
    cvt.u32.s32 %r12, %s5;
    mad.lo.u32 %r28, %r28, %r8, %r12;
    cvt.u32.s32 %r12, %s9;
    mad.lo.u32 %r28, %r28, %r9, %r12;
    mul.wide.u32 %rd4, %r28, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    // w[((k*C + c)*R + r)*S + s]
    mad.lo.u32 %r29, %r25, %r2, %r21;
    mad.lo.u32 %r29, %r29, %r6, %r26;
    mad.lo.u32 %r29, %r29, %r7, %r27;
    mul.wide.u32 %rd6, %r29, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
SNEXT:
    add.u32 %r27, %r27, 1;
    bra SLOOP;
SDONE:
RNEXT:
    add.u32 %r26, %r26, 1;
    bra RLOOP;
RDONE:
    add.u32 %r25, %r25, 1;
    bra KLOOP;
KDONE:
    mul.wide.u32 %rd4, %r15, 4;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}

// Backward filter, ALGO_0: atomic scatter. One thread per dy element.
.visible .entry conv_bwd_filter_algo0(
    .param .u64 X, .param .u64 DY, .param .u64 DW,
    .param .u32 N, .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 K, .param .u32 R, .param .u32 S,
    .param .u32 OH, .param .u32 OW,
    .param .u32 pad, .param .u32 stride
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<30>;
    .reg .s32 %s<10>;
    .reg .f32 %f<6>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [DY];
    ld.param.u64 %rd3, [DW];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [H];
    ld.param.u32 %r4, [Wd];
    ld.param.u32 %r5, [K];
    ld.param.u32 %r6, [R];
    ld.param.u32 %r7, [S];
    ld.param.u32 %r8, [OH];
    ld.param.u32 %r9, [OW];
    ld.param.u32 %r10, [pad];
    ld.param.u32 %r11, [stride];

    mov.u32 %r12, %ctaid.x;
    mov.u32 %r13, %ntid.x;
    mov.u32 %r14, %tid.x;
    mad.lo.u32 %r15, %r12, %r13, %r14;   // flat (n,k,oy,ox)
    mul.lo.u32 %r16, %r8, %r9;
    mul.lo.u32 %r17, %r5, %r16;
    mul.lo.u32 %r18, %r1, %r17;
    setp.ge.u32 %p1, %r15, %r18;
    @%p1 bra DONE;

    div.u32 %r19, %r15, %r17;            // n
    rem.u32 %r20, %r15, %r17;
    div.u32 %r21, %r20, %r16;            // k
    rem.u32 %r22, %r20, %r16;
    div.u32 %r23, %r22, %r9;             // oy
    rem.u32 %r24, %r22, %r9;             // ox

    mul.wide.u32 %rd4, %r15, 4;
    add.u64 %rd5, %rd2, %rd4;
    ld.global.f32 %f1, [%rd5];           // dy

    mul.lo.u32 %r12, %r23, %r11;
    cvt.s32.u32 %s1, %r12;
    cvt.s32.u32 %s2, %r10;
    sub.s32 %s1, %s1, %s2;               // iy0
    mul.lo.u32 %r12, %r24, %r11;
    cvt.s32.u32 %s3, %r12;
    sub.s32 %s3, %s3, %s2;               // ix0

    mov.u32 %r25, 0;                     // c
CLOOP:
    setp.ge.u32 %p2, %r25, %r2;
    @%p2 bra DONE;
    mov.u32 %r26, 0;                     // r
RLOOP:
    setp.ge.u32 %p3, %r26, %r6;
    @%p3 bra RDONE;
    cvt.s32.u32 %s4, %r26;
    add.s32 %s5, %s1, %s4;
    setp.lt.s32 %p4, %s5, 0;
    @%p4 bra RNEXT;
    cvt.s32.u32 %s6, %r3;
    setp.ge.s32 %p4, %s5, %s6;
    @%p4 bra RNEXT;
    mov.u32 %r27, 0;                     // s
SLOOP:
    setp.ge.u32 %p5, %r27, %r7;
    @%p5 bra SDONE;
    cvt.s32.u32 %s4, %r27;
    add.s32 %s7, %s3, %s4;
    setp.lt.s32 %p4, %s7, 0;
    @%p4 bra SNEXT;
    cvt.s32.u32 %s6, %r4;
    setp.ge.s32 %p4, %s7, %s6;
    @%p4 bra SNEXT;
    mad.lo.u32 %r28, %r19, %r2, %r25;
    cvt.u32.s32 %r12, %s5;
    mad.lo.u32 %r28, %r28, %r3, %r12;
    cvt.u32.s32 %r12, %s7;
    mad.lo.u32 %r28, %r28, %r4, %r12;
    mul.wide.u32 %rd4, %r28, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];           // x
    mul.f32 %f3, %f1, %f2;
    mad.lo.u32 %r29, %r21, %r2, %r25;
    mad.lo.u32 %r29, %r29, %r6, %r26;
    mad.lo.u32 %r29, %r29, %r7, %r27;
    mul.wide.u32 %rd6, %r29, 4;
    add.u64 %rd7, %rd3, %rd6;
    red.global.add.f32 [%rd7], %f3;
SNEXT:
    add.u32 %r27, %r27, 1;
    bra SLOOP;
SDONE:
RNEXT:
    add.u32 %r26, %r26, 1;
    bra RLOOP;
RDONE:
    add.u32 %r25, %r25, 1;
    bra CLOOP;
DONE:
    ret;
}

// Backward filter, ALGO_1 (deterministic gather): one thread per dw element
// (k,c,r,s) looping over (n,oy,ox). batch_lo/batch_hi select a sub-batch so
// ALGO_3 can reuse this kernel to build per-image partials in a workspace.
.visible .entry conv_bwd_filter_algo1(
    .param .u64 X, .param .u64 DY, .param .u64 DW,
    .param .u32 N, .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 K, .param .u32 R, .param .u32 S,
    .param .u32 OH, .param .u32 OW,
    .param .u32 pad, .param .u32 stride,
    .param .u32 batch_lo, .param .u32 batch_hi
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<32>;
    .reg .s32 %s<12>;
    .reg .f32 %f<6>;
    .reg .pred %p<8>;

    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [DY];
    ld.param.u64 %rd3, [DW];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [H];
    ld.param.u32 %r4, [Wd];
    ld.param.u32 %r5, [K];
    ld.param.u32 %r6, [R];
    ld.param.u32 %r7, [S];
    ld.param.u32 %r8, [OH];
    ld.param.u32 %r9, [OW];
    ld.param.u32 %r10, [pad];
    ld.param.u32 %r11, [stride];

    mov.u32 %r12, %ctaid.x;
    mov.u32 %r13, %ntid.x;
    mov.u32 %r14, %tid.x;
    mad.lo.u32 %r15, %r12, %r13, %r14;   // flat (k,c,r,s)
    mul.lo.u32 %r16, %r6, %r7;           // RS
    mul.lo.u32 %r17, %r2, %r16;          // C*RS
    mul.lo.u32 %r18, %r5, %r17;
    setp.ge.u32 %p1, %r15, %r18;
    @%p1 bra DONE;

    div.u32 %r19, %r15, %r17;            // k
    rem.u32 %r20, %r15, %r17;
    div.u32 %r21, %r20, %r16;            // c
    rem.u32 %r22, %r20, %r16;
    div.u32 %r23, %r22, %r7;             // r
    rem.u32 %r24, %r22, %r7;             // s

    mov.f32 %f1, 0f00000000;
    ld.param.u32 %r25, [batch_lo];       // n
    ld.param.u32 %r31, [batch_hi];
NLOOP:
    setp.ge.u32 %p2, %r25, %r31;
    @%p2 bra NDONE;
    mov.u32 %r26, 0;                     // oy
OYLOOP:
    setp.ge.u32 %p3, %r26, %r8;
    @%p3 bra OYDONE;
    // iy = oy*stride - pad + r
    mul.lo.u32 %r12, %r26, %r11;
    cvt.s32.u32 %s1, %r12;
    cvt.s32.u32 %s2, %r10;
    sub.s32 %s1, %s1, %s2;
    cvt.s32.u32 %s3, %r23;
    add.s32 %s1, %s1, %s3;
    setp.lt.s32 %p4, %s1, 0;
    @%p4 bra OYNEXT;
    cvt.s32.u32 %s4, %r3;
    setp.ge.s32 %p4, %s1, %s4;
    @%p4 bra OYNEXT;
    mov.u32 %r27, 0;                     // ox
OXLOOP:
    setp.ge.u32 %p5, %r27, %r9;
    @%p5 bra OXDONE;
    mul.lo.u32 %r12, %r27, %r11;
    cvt.s32.u32 %s5, %r12;
    sub.s32 %s5, %s5, %s2;
    cvt.s32.u32 %s6, %r24;
    add.s32 %s5, %s5, %s6;               // ix
    setp.lt.s32 %p6, %s5, 0;
    @%p6 bra OXNEXT;
    cvt.s32.u32 %s4, %r4;
    setp.ge.s32 %p6, %s5, %s4;
    @%p6 bra OXNEXT;
    // x[((n*C + c)*H + iy)*W + ix]
    mad.lo.u32 %r28, %r25, %r2, %r21;
    cvt.u32.s32 %r12, %s1;
    mad.lo.u32 %r28, %r28, %r3, %r12;
    cvt.u32.s32 %r12, %s5;
    mad.lo.u32 %r28, %r28, %r4, %r12;
    mul.wide.u32 %rd4, %r28, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    // dy[((n*K + k)*OH + oy)*OW + ox]
    mad.lo.u32 %r29, %r25, %r5, %r19;
    mad.lo.u32 %r29, %r29, %r8, %r26;
    mad.lo.u32 %r29, %r29, %r9, %r27;
    mul.wide.u32 %rd6, %r29, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
OXNEXT:
    add.u32 %r27, %r27, 1;
    bra OXLOOP;
OXDONE:
OYNEXT:
    add.u32 %r26, %r26, 1;
    bra OYLOOP;
OYDONE:
    add.u32 %r25, %r25, 1;
    bra NLOOP;
NDONE:
    mul.wide.u32 %rd4, %r15, 4;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}
)PTX";

} // namespace mlgs::cudnn
