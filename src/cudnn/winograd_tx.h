/**
 * @file
 * Cook-Toom construction of Winograd convolution transforms F(m, r):
 * matrices A^T (m x t), G (t x r), B^T (t x t) with t = m + r - 1 such that
 * for the correlation Y[i] = sum_j d[i+j] g[j]:
 *     Y = A^T [ (G g) 	⊙ (B^T d) ].
 * The 2D transforms used by the kernels are the Kronecker form
 * (B^T d B etc.), applied elementwise by the PTX.
 */
#ifndef MLGS_CUDNN_WINOGRAD_TX_H
#define MLGS_CUDNN_WINOGRAD_TX_H

#include <vector>

namespace mlgs::cudnn
{

/** Transform matrices, row-major float. */
struct WinogradTx
{
    unsigned m = 0; ///< outputs per tile side
    unsigned r = 0; ///< filter side
    unsigned t = 0; ///< tile side = m + r - 1

    std::vector<float> at; ///< m x t
    std::vector<float> g;  ///< t x r
    std::vector<float> bt; ///< t x t
};

/**
 * Build transforms for F(m, r). Supported up to t = 6 (i.e. F(2,3), F(4,3),
 * F(2,5)) with interpolation points {0, 1, -1, 2, -2} + infinity.
 */
WinogradTx makeWinogradTx(unsigned m, unsigned r);

} // namespace mlgs::cudnn

#endif // MLGS_CUDNN_WINOGRAD_TX_H
