/**
 * @file
 * cuDNN-lite PTX: tensor utilities and the non-convolution layers
 * (activation, pooling, softmax, bias, SGD, im2col, padding, rotation).
 */
#include "cudnn/kernels.h"

namespace mlgs::cudnn
{

const char *kCommonPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// out[idx] = in[(c*R*S + r*S + s)-style im2col gather for one image.
// col is [C*R*S, OH*OW]; one thread per col element.
.visible .entry im2col(
    .param .u64 Xptr, .param .u64 Col,
    .param .u32 C, .param .u32 H, .param .u32 W,
    .param .u32 R, .param .u32 S,
    .param .u32 OH, .param .u32 OW,
    .param .u32 pad, .param .u32 stride
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<24>;
    .reg .s32 %s<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [Xptr];
    ld.param.u64 %rd2, [Col];
    ld.param.u32 %r1, [C];
    ld.param.u32 %r2, [H];
    ld.param.u32 %r3, [W];
    ld.param.u32 %r4, [R];
    ld.param.u32 %r5, [S];
    ld.param.u32 %r6, [OH];
    ld.param.u32 %r7, [OW];
    ld.param.u32 %r8, [pad];
    ld.param.u32 %r9, [stride];

    mov.u32 %r10, %ctaid.x;
    mov.u32 %r11, %ntid.x;
    mov.u32 %r12, %tid.x;
    mad.lo.u32 %r13, %r10, %r11, %r12;   // col element index
    mul.lo.u32 %r14, %r6, %r7;           // OHW
    mul.lo.u32 %r15, %r4, %r5;           // RS
    mul.lo.u32 %r16, %r1, %r15;          // C*R*S
    mul.lo.u32 %r17, %r16, %r14;         // total
    setp.ge.u32 %p1, %r13, %r17;
    @%p1 bra DONE;

    div.u32 %r18, %r13, %r14;            // row = c*R*S + r*S + s
    rem.u32 %r19, %r13, %r14;            // opos = oy*OW + ox
    div.u32 %r20, %r18, %r15;            // c
    rem.u32 %r21, %r18, %r15;            // r*S + s
    div.u32 %r22, %r21, %r5;             // r
    rem.u32 %r23, %r21, %r5;             // s
    div.u32 %r10, %r19, %r7;             // oy
    rem.u32 %r11, %r19, %r7;             // ox

    // iy = oy*stride - pad + r ; ix = ox*stride - pad + s
    mul.lo.u32 %r12, %r10, %r9;
    add.u32 %r12, %r12, %r22;
    cvt.s32.u32 %s1, %r12;
    cvt.s32.u32 %s2, %r8;
    sub.s32 %s1, %s1, %s2;               // iy
    mul.lo.u32 %r12, %r11, %r9;
    add.u32 %r12, %r12, %r23;
    cvt.s32.u32 %s3, %r12;
    sub.s32 %s3, %s3, %s2;               // ix

    mov.f32 %f1, 0f00000000;
    setp.lt.s32 %p2, %s1, 0;
    @%p2 bra STORE;
    setp.lt.s32 %p2, %s3, 0;
    @%p2 bra STORE;
    cvt.s32.u32 %s4, %r2;
    setp.ge.s32 %p2, %s1, %s4;
    @%p2 bra STORE;
    cvt.s32.u32 %s4, %r3;
    setp.ge.s32 %p2, %s3, %s4;
    @%p2 bra STORE;
    // x[(c*H + iy)*W + ix]
    cvt.u32.s32 %r12, %s1;
    mad.lo.u32 %r12, %r20, %r2, %r12;
    mul.lo.u32 %r12, %r12, %r3;
    cvt.u32.s32 %r10, %s3;
    add.u32 %r12, %r12, %r10;
    mul.wide.u32 %rd3, %r12, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
STORE:
    mul.wide.u32 %rd3, %r13, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}

// out[nc, y, x] = in[nc, y - pad, x - pad] with zero fill (symmetric pad).
.visible .entry pad_tensor(
    .param .u64 In, .param .u64 Out,
    .param .u32 NC, .param .u32 H, .param .u32 W,
    .param .u32 OHP, .param .u32 OWP, .param .u32 pad
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<16>;
    .reg .s32 %s<6>;
    .reg .f32 %f<3>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [In];
    ld.param.u64 %rd2, [Out];
    ld.param.u32 %r1, [NC];
    ld.param.u32 %r2, [H];
    ld.param.u32 %r3, [W];
    ld.param.u32 %r4, [OHP];
    ld.param.u32 %r5, [OWP];
    ld.param.u32 %r6, [pad];

    mov.u32 %r7, %ctaid.x;
    mov.u32 %r8, %ntid.x;
    mov.u32 %r9, %tid.x;
    mad.lo.u32 %r10, %r7, %r8, %r9;
    mul.lo.u32 %r11, %r4, %r5;
    mul.lo.u32 %r12, %r1, %r11;
    setp.ge.u32 %p1, %r10, %r12;
    @%p1 bra DONE;

    div.u32 %r13, %r10, %r11;            // nc
    rem.u32 %r14, %r10, %r11;
    div.u32 %r15, %r14, %r5;             // oy
    rem.u32 %r7, %r14, %r5;              // ox
    cvt.s32.u32 %s1, %r15;
    cvt.s32.u32 %s2, %r6;
    sub.s32 %s1, %s1, %s2;               // iy
    cvt.s32.u32 %s3, %r7;
    sub.s32 %s3, %s3, %s2;               // ix

    mov.f32 %f1, 0f00000000;
    setp.lt.s32 %p2, %s1, 0;
    @%p2 bra STORE;
    setp.lt.s32 %p2, %s3, 0;
    @%p2 bra STORE;
    cvt.s32.u32 %s4, %r2;
    setp.ge.s32 %p2, %s1, %s4;
    @%p2 bra STORE;
    cvt.s32.u32 %s4, %r3;
    setp.ge.s32 %p2, %s3, %s4;
    @%p2 bra STORE;
    cvt.u32.s32 %r8, %s1;
    mad.lo.u32 %r9, %r13, %r2, %r8;
    mul.lo.u32 %r9, %r9, %r3;
    cvt.u32.s32 %r8, %s3;
    add.u32 %r9, %r9, %r8;
    mul.wide.u32 %rd3, %r9, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
STORE:
    mul.wide.u32 %rd3, %r10, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}

// out[c][k][r][s] = in[k][c][R-1-r][S-1-s]  (rotate 180 + swap K/C for
// FFT/Winograd backward-data paths).
.visible .entry rot180_swap_filter(
    .param .u64 In, .param .u64 Out,
    .param .u32 K, .param .u32 C, .param .u32 R, .param .u32 S
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<20>;
    .reg .f32 %f<3>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [In];
    ld.param.u64 %rd2, [Out];
    ld.param.u32 %r1, [K];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [R];
    ld.param.u32 %r4, [S];
    mov.u32 %r5, %ctaid.x;
    mov.u32 %r6, %ntid.x;
    mov.u32 %r7, %tid.x;
    mad.lo.u32 %r8, %r5, %r6, %r7;       // out index over C*K*R*S
    mul.lo.u32 %r9, %r3, %r4;            // RS
    mul.lo.u32 %r10, %r1, %r9;           // K*R*S
    mul.lo.u32 %r11, %r2, %r10;          // total
    setp.ge.u32 %p1, %r8, %r11;
    @%p1 bra DONE;
    div.u32 %r12, %r8, %r10;             // c
    rem.u32 %r13, %r8, %r10;
    div.u32 %r14, %r13, %r9;             // k
    rem.u32 %r15, %r13, %r9;
    div.u32 %r16, %r15, %r4;             // r
    rem.u32 %r17, %r15, %r4;             // s
    sub.u32 %r16, %r3, %r16;
    sub.u32 %r16, %r16, 1;               // R-1-r
    sub.u32 %r17, %r4, %r17;
    sub.u32 %r17, %r17, 1;               // S-1-s
    // in[((k*C + c)*R + rr)*S + ss]
    mad.lo.u32 %r18, %r14, %r2, %r12;
    mad.lo.u32 %r18, %r18, %r3, %r16;
    mad.lo.u32 %r18, %r18, %r4, %r17;
    mul.wide.u32 %rd3, %r18, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mul.wide.u32 %rd3, %r8, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}

// y[n,k,h,w] += bias[k]
.visible .entry add_bias(
    .param .u64 Y, .param .u64 B,
    .param .u32 total, .param .u32 K, .param .u32 HW
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<10>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Y];
    ld.param.u64 %rd2, [B];
    ld.param.u32 %r1, [total];
    ld.param.u32 %r2, [K];
    ld.param.u32 %r3, [HW];
    mov.u32 %r4, %ctaid.x;
    mov.u32 %r5, %ntid.x;
    mov.u32 %r6, %tid.x;
    mad.lo.u32 %r7, %r4, %r5, %r6;
    setp.ge.u32 %p1, %r7, %r1;
    @%p1 bra DONE;
    div.u32 %r8, %r7, %r3;
    rem.u32 %r9, %r8, %r2;               // k
    mul.wide.u32 %rd3, %r9, 4;
    add.u64 %rd4, %rd2, %rd3;
    ld.global.f32 %f1, [%rd4];
    mul.wide.u32 %rd3, %r7, 4;
    add.u64 %rd5, %rd1, %rd3;
    ld.global.f32 %f2, [%rd5];
    add.f32 %f3, %f2, %f1;
    st.global.f32 [%rd5], %f3;
DONE:
    ret;
}

// db[k] = sum_{n,h,w} dy[n,k,h,w]
.visible .entry bias_bwd(
    .param .u64 DY, .param .u64 DB,
    .param .u32 N, .param .u32 K, .param .u32 HW
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<12>;
    .reg .f32 %f<4>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [DY];
    ld.param.u64 %rd2, [DB];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [K];
    ld.param.u32 %r3, [HW];
    mov.u32 %r4, %ctaid.x;
    mov.u32 %r5, %ntid.x;
    mov.u32 %r6, %tid.x;
    mad.lo.u32 %r7, %r4, %r5, %r6;       // k
    setp.ge.u32 %p1, %r7, %r2;
    @%p1 bra DONE;
    mov.f32 %f1, 0f00000000;
    mov.u32 %r8, 0;                      // n
NLOOP:
    setp.ge.u32 %p2, %r8, %r1;
    @%p2 bra NDONE;
    mad.lo.u32 %r9, %r8, %r2, %r7;
    mul.lo.u32 %r9, %r9, %r3;            // base (n*K + k)*HW
    mov.u32 %r10, 0;
ILOOP:
    setp.ge.u32 %p2, %r10, %r3;
    @%p2 bra IDONE;
    add.u32 %r11, %r9, %r10;
    mul.wide.u32 %rd3, %r11, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f2, [%rd4];
    add.f32 %f1, %f1, %f2;
    add.u32 %r10, %r10, 1;
    bra ILOOP;
IDONE:
    add.u32 %r8, %r8, 1;
    bra NLOOP;
NDONE:
    mul.wide.u32 %rd3, %r7, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}

// Activation forward: mode 0 = relu, 1 = sigmoid, 2 = tanh.
.visible .entry activation_fwd(
    .param .u64 X, .param .u64 Y, .param .u32 total, .param .u32 mode
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .f32 %f<12>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Y];
    ld.param.u32 %r1, [total];
    ld.param.u32 %r2, [mode];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd3, %r6, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];

    setp.eq.u32 %p2, %r2, 0;
    @!%p2 bra TRY_SIG;
    mov.f32 %f2, 0f00000000;
    max.f32 %f3, %f1, %f2;
    bra STORE;
TRY_SIG:
    setp.eq.u32 %p2, %r2, 1;
    @!%p2 bra DO_TANH;
    // sigmoid = 1/(1 + 2^(-x*log2e))
    mov.f32 %f4, 0fBFB8AA3B;             // -log2(e)
    mul.f32 %f5, %f1, %f4;
    ex2.approx.f32 %f6, %f5;
    mov.f32 %f7, 0f3F800000;
    add.f32 %f8, %f6, %f7;
    rcp.approx.f32 %f3, %f8;
    bra STORE;
DO_TANH:
    // tanh = 1 - 2/(2^(2x*log2e) + 1)
    mov.f32 %f4, 0f4038AA3B;             // 2*log2(e)
    mul.f32 %f5, %f1, %f4;
    ex2.approx.f32 %f6, %f5;
    mov.f32 %f7, 0f3F800000;
    add.f32 %f8, %f6, %f7;
    rcp.approx.f32 %f9, %f8;
    mov.f32 %f10, 0fC0000000;            // -2
    fma.rn.f32 %f3, %f9, %f10, %f7;
STORE:
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f3;
DONE:
    ret;
}

// Activation backward from stored outputs: dx = dy * f'(y).
.visible .entry activation_bwd(
    .param .u64 Yv, .param .u64 DY, .param .u64 DX,
    .param .u32 total, .param .u32 mode
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<12>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [Yv];
    ld.param.u64 %rd2, [DY];
    ld.param.u64 %rd3, [DX];
    ld.param.u32 %r1, [total];
    ld.param.u32 %r2, [mode];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r6, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];           // y
    add.u64 %rd6, %rd2, %rd4;
    ld.global.f32 %f2, [%rd6];           // dy

    setp.eq.u32 %p2, %r2, 0;
    @!%p2 bra TRY_SIG;
    mov.f32 %f3, 0f00000000;
    setp.gt.f32 %p3, %f1, %f3;
    selp.f32 %f4, %f2, %f3, %p3;         // relu'
    bra STORE;
TRY_SIG:
    setp.eq.u32 %p2, %r2, 1;
    @!%p2 bra DO_TANH;
    mov.f32 %f5, 0f3F800000;
    sub.f32 %f6, %f5, %f1;               // 1-y
    mul.f32 %f7, %f1, %f6;
    mul.f32 %f4, %f2, %f7;
    bra STORE;
DO_TANH:
    mul.f32 %f5, %f1, %f1;
    mov.f32 %f6, 0f3F800000;
    sub.f32 %f7, %f6, %f5;               // 1-y^2
    mul.f32 %f4, %f2, %f7;
STORE:
    add.u64 %rd7, %rd3, %rd4;
    st.global.f32 [%rd7], %f4;
DONE:
    ret;
}

// Max pooling forward; stores argmax (flat input offset) for backward.
.visible .entry maxpool_fwd(
    .param .u64 X, .param .u64 Y, .param .u64 Mask,
    .param .u32 NC, .param .u32 H, .param .u32 W,
    .param .u32 win, .param .u32 stride,
    .param .u32 OH, .param .u32 OW
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<24>;
    .reg .f32 %f<4>;
    .reg .pred %p<5>;
    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Y];
    ld.param.u64 %rd3, [Mask];
    ld.param.u32 %r1, [NC];
    ld.param.u32 %r2, [H];
    ld.param.u32 %r3, [W];
    ld.param.u32 %r4, [win];
    ld.param.u32 %r5, [stride];
    ld.param.u32 %r6, [OH];
    ld.param.u32 %r7, [OW];

    mov.u32 %r8, %ctaid.x;
    mov.u32 %r9, %ntid.x;
    mov.u32 %r10, %tid.x;
    mad.lo.u32 %r11, %r8, %r9, %r10;
    mul.lo.u32 %r12, %r6, %r7;
    mul.lo.u32 %r13, %r1, %r12;
    setp.ge.u32 %p1, %r11, %r13;
    @%p1 bra DONE;

    div.u32 %r14, %r11, %r12;            // nc
    rem.u32 %r15, %r11, %r12;
    div.u32 %r16, %r15, %r7;             // oy
    rem.u32 %r17, %r15, %r7;             // ox
    mul.lo.u32 %r16, %r16, %r5;          // iy0
    mul.lo.u32 %r17, %r17, %r5;          // ix0

    mov.f32 %f1, 0fFF7FFFFF;             // -FLT_MAX
    mov.u32 %r18, 0;                     // best index
    mov.u32 %r19, 0;                     // dy
WLOOP:
    setp.ge.u32 %p2, %r19, %r4;
    @%p2 bra WDONE;
    mov.u32 %r20, 0;                     // dx
XLOOP:
    setp.ge.u32 %p2, %r20, %r4;
    @%p2 bra XDONE;
    add.u32 %r21, %r16, %r19;            // iy
    add.u32 %r22, %r17, %r20;            // ix
    setp.ge.u32 %p3, %r21, %r2;
    @%p3 bra SKIP;
    setp.ge.u32 %p3, %r22, %r3;
    @%p3 bra SKIP;
    mad.lo.u32 %r23, %r14, %r2, %r21;
    mad.lo.u32 %r23, %r23, %r3, %r22;    // flat input idx
    mul.wide.u32 %rd4, %r23, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    setp.gt.f32 %p4, %f2, %f1;
    @!%p4 bra SKIP;
    mov.f32 %f1, %f2;
    mov.u32 %r18, %r23;
SKIP:
    add.u32 %r20, %r20, 1;
    bra XLOOP;
XDONE:
    add.u32 %r19, %r19, 1;
    bra WLOOP;
WDONE:
    mul.wide.u32 %rd4, %r11, 4;
    add.u64 %rd6, %rd2, %rd4;
    st.global.f32 [%rd6], %f1;
    add.u64 %rd7, %rd3, %rd4;
    st.global.u32 [%rd7], %r18;
DONE:
    ret;
}

// dx[mask[i]] += dy[i]; dx must be zeroed first. Non-overlapping windows
// make the scatter race-free, but atomics keep it correct regardless.
.visible .entry maxpool_bwd(
    .param .u64 DY, .param .u64 Mask, .param .u64 DX, .param .u32 total
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [DY];
    ld.param.u64 %rd2, [Mask];
    ld.param.u64 %rd3, [DX];
    ld.param.u32 %r1, [total];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];
    add.u64 %rd6, %rd2, %rd4;
    ld.global.u32 %r6, [%rd6];
    mul.wide.u32 %rd7, %r6, 4;
    add.u64 %rd7, %rd3, %rd7;
    red.global.add.f32 [%rd7], %f1;
DONE:
    ret;
}

// Softmax over rows of [rows, cols]; one thread per row (cols small).
.visible .entry softmax_fwd(
    .param .u64 X, .param .u64 Y, .param .u32 rows, .param .u32 cols
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<10>;
    .reg .f32 %f<12>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Y];
    ld.param.u32 %r1, [rows];
    ld.param.u32 %r2, [cols];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mul.lo.u32 %r7, %r6, %r2;            // row base

    // pass 1: max
    mov.f32 %f1, 0fFF7FFFFF;
    mov.u32 %r8, 0;
M1:
    setp.ge.u32 %p2, %r8, %r2;
    @%p2 bra M1D;
    add.u32 %r9, %r7, %r8;
    mul.wide.u32 %rd3, %r9, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f2, [%rd4];
    max.f32 %f1, %f1, %f2;
    add.u32 %r8, %r8, 1;
    bra M1;
M1D:
    // pass 2: exp + sum (exp(v) = 2^(v*log2 e)), store exp into Y
    mov.f32 %f3, 0f00000000;
    mov.u32 %r8, 0;
M2:
    setp.ge.u32 %p2, %r8, %r2;
    @%p2 bra M2D;
    add.u32 %r9, %r7, %r8;
    mul.wide.u32 %rd3, %r9, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f2, [%rd4];
    sub.f32 %f4, %f2, %f1;
    mov.f32 %f5, 0f3FB8AA3B;             // log2(e)
    mul.f32 %f6, %f4, %f5;
    ex2.approx.f32 %f7, %f6;
    add.f32 %f3, %f3, %f7;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f7;
    add.u32 %r8, %r8, 1;
    bra M2;
M2D:
    rcp.approx.f32 %f8, %f3;
    mov.u32 %r8, 0;
M3:
    setp.ge.u32 %p2, %r8, %r2;
    @%p2 bra DONE;
    add.u32 %r9, %r7, %r8;
    mul.wide.u32 %rd3, %r9, 4;
    add.u64 %rd5, %rd2, %rd3;
    ld.global.f32 %f7, [%rd5];
    mul.f32 %f9, %f7, %f8;
    st.global.f32 [%rd5], %f9;
    add.u32 %r8, %r8, 1;
    bra M3;
DONE:
    ret;
}

// dx = (y - onehot(label)) * scale   (softmax + NLL fused backward)
.visible .entry softmax_nll_bwd(
    .param .u64 Yv, .param .u64 Labels, .param .u64 DX,
    .param .u32 rows, .param .u32 cols, .param .f32 scale
)
{
    .reg .u64 %rd<10>;
    .reg .u32 %r<12>;
    .reg .f32 %f<8>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [Yv];
    ld.param.u64 %rd2, [Labels];
    ld.param.u64 %rd3, [DX];
    ld.param.u32 %r1, [rows];
    ld.param.u32 %r2, [cols];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;       // element index
    mul.lo.u32 %r7, %r1, %r2;
    setp.ge.u32 %p1, %r6, %r7;
    @%p1 bra DONE;
    div.u32 %r8, %r6, %r2;               // row
    rem.u32 %r9, %r6, %r2;               // col
    mul.wide.u32 %rd4, %r8, 4;
    add.u64 %rd5, %rd2, %rd4;
    ld.global.u32 %r10, [%rd5];          // label
    mul.wide.u32 %rd6, %r6, 4;
    add.u64 %rd7, %rd1, %rd6;
    ld.global.f32 %f1, [%rd7];           // y
    setp.eq.u32 %p2, %r9, %r10;
    mov.f32 %f2, 0f3F800000;
    mov.f32 %f3, 0f00000000;
    selp.f32 %f4, %f2, %f3, %p2;
    sub.f32 %f5, %f1, %f4;
    ld.param.f32 %f6, [scale];
    mul.f32 %f7, %f5, %f6;
    add.u64 %rd8, %rd3, %rd6;
    st.global.f32 [%rd8], %f7;
DONE:
    ret;
}

// loss[row] = -ln(y[row, label])
.visible .entry nll_loss(
    .param .u64 Yv, .param .u64 Labels, .param .u64 Loss,
    .param .u32 rows, .param .u32 cols
)
{
    .reg .u64 %rd<10>;
    .reg .u32 %r<10>;
    .reg .f32 %f<8>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Yv];
    ld.param.u64 %rd2, [Labels];
    ld.param.u64 %rd3, [Loss];
    ld.param.u32 %r1, [rows];
    ld.param.u32 %r2, [cols];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r6, 4;
    add.u64 %rd5, %rd2, %rd4;
    ld.global.u32 %r7, [%rd5];
    mad.lo.u32 %r8, %r6, %r2, %r7;
    mul.wide.u32 %rd6, %r8, 4;
    add.u64 %rd7, %rd1, %rd6;
    ld.global.f32 %f1, [%rd7];
    lg2.approx.f32 %f2, %f1;
    mov.f32 %f3, 0fBF317218;             // -ln(2)
    mul.f32 %f4, %f2, %f3;
    add.u64 %rd8, %rd3, %rd4;
    st.global.f32 [%rd8], %f4;
DONE:
    ret;
}

// p[i] -= lr * g[i]
.visible .entry sgd_step(
    .param .u64 P, .param .u64 G, .param .u32 total, .param .f32 lr
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .f32 %f<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [P];
    ld.param.u64 %rd2, [G];
    ld.param.u32 %r1, [total];
    ld.param.f32 %f1, [lr];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd3, %r5, 4;
    add.u64 %rd4, %rd1, %rd3;
    add.u64 %rd5, %rd2, %rd3;
    ld.global.f32 %f2, [%rd4];
    ld.global.f32 %f3, [%rd5];
    neg.f32 %f4, %f1;
    fma.rn.f32 %f5, %f3, %f4, %f2;
    st.global.f32 [%rd4], %f5;
DONE:
    ret;
}

// out[i] = sum_b in[b*stride + i]  (workspace reduction, bwd-filter algo 3)
.visible .entry reduce_batch_sum(
    .param .u64 In, .param .u64 Out,
    .param .u32 count, .param .u32 batch, .param .u32 stride
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<10>;
    .reg .f32 %f<4>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [In];
    ld.param.u64 %rd2, [Out];
    ld.param.u32 %r1, [count];
    ld.param.u32 %r2, [batch];
    ld.param.u32 %r3, [stride];
    mov.u32 %r4, %ctaid.x;
    mov.u32 %r5, %ntid.x;
    mov.u32 %r6, %tid.x;
    mad.lo.u32 %r7, %r4, %r5, %r6;
    setp.ge.u32 %p1, %r7, %r1;
    @%p1 bra DONE;
    mov.f32 %f1, 0f00000000;
    mov.u32 %r8, 0;
LOOP:
    setp.ge.u32 %p2, %r8, %r2;
    @%p2 bra LDONE;
    mad.lo.u32 %r9, %r8, %r3, %r7;
    mul.wide.u32 %rd3, %r9, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f2, [%rd4];
    add.f32 %f1, %f1, %f2;
    add.u32 %r8, %r8, 1;
    bra LOOP;
LDONE:
    mul.wide.u32 %rd3, %r7, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}
)PTX";

} // namespace mlgs::cudnn
