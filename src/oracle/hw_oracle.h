/**
 * @file
 * Hardware-proxy ("NVProf on a GTX 1050") timing oracle.
 *
 * The paper correlates GPGPU-Sim cycle counts against NVProf measurements on
 * real silicon. With no GPU available, this oracle produces an independent
 * per-kernel cycle estimate from functional-execution counts and published
 * machine parameters (a classic roofline: compute-issue limit vs DRAM
 * bandwidth limit, with an occupancy correction and a fixed launch
 * overhead). Correlation figures then compare the detailed timing model
 * against this estimate exactly the way the paper compares against hardware.
 */
#ifndef MLGS_ORACLE_HW_ORACLE_H
#define MLGS_ORACLE_HW_ORACLE_H

#include <string>
#include <vector>

#include "runtime/context.h"

namespace mlgs::oracle
{

/** Published machine parameters of the proxy GPU. */
struct HwSpec
{
    std::string name = "GTX1050";
    unsigned num_sms = 5;
    unsigned issue_per_sm = 4;        ///< warp instructions / cycle / SM
    double sfu_cost = 4.0;            ///< SFU warp-inst cost vs ALU
    double mem_inst_cost = 2.0;       ///< LD/ST pipe cost vs ALU
    double dram_bytes_per_cycle = 83; ///< 112 GB/s at 1.35 GHz
    double launch_overhead = 2500;    ///< cycles per kernel launch
    double dep_latency = 6.0;         ///< cycles/instr on a dependency chain
    unsigned warp_slots_per_sm = 16;  ///< latency-hiding capacity
    double clock_ghz = 1.35;

    static HwSpec
    gtx1050()
    {
        return HwSpec{};
    }

    static HwSpec
    gtx1080ti()
    {
        HwSpec s;
        s.name = "GTX1080Ti";
        s.num_sms = 28;
        s.dram_bytes_per_cycle = 326; // 484 GB/s at 1.48 GHz
        s.clock_ghz = 1.48;
        return s;
    }
};

/** Per-kernel row in a correlation table. */
struct CorrelationRow
{
    std::string kernel;
    double hw_cycles = 0;
    double sim_cycles = 0;

    /** Sim time relative to hardware = 100. */
    double relative() const { return hw_cycles ? 100.0 * sim_cycles / hw_cycles : 0; }
};

/** Roofline-style analytical cycle estimator. */
class HwOracle
{
  public:
    explicit HwOracle(HwSpec spec = HwSpec::gtx1050()) : spec_(spec) {}

    const HwSpec &spec() const { return spec_; }

    /** Estimated hardware cycles for one recorded (functional-mode) launch. */
    double estimateCycles(const cuda::LaunchRecord &rec) const;

    /**
     * Build the per-kernel correlation table from a functional-mode launch
     * log (oracle side) and a performance-mode launch log (simulator side).
     * Logs must describe the same run; kernels are matched positionally and
     * aggregated by kernel name.
     */
    std::vector<CorrelationRow>
    correlate(const std::vector<cuda::LaunchRecord> &functional_log,
              const std::vector<cuda::LaunchRecord> &performance_log) const;

    /** Overall relative execution time (hardware = 100). */
    static double overallRelative(const std::vector<CorrelationRow> &rows);

    /** Pearson correlation coefficient between hw and sim columns. */
    static double pearson(const std::vector<CorrelationRow> &rows);

  private:
    HwSpec spec_;
};

} // namespace mlgs::oracle

#endif // MLGS_ORACLE_HW_ORACLE_H
