#include "oracle/hw_oracle.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/log.h"

namespace mlgs::oracle
{

double
HwOracle::estimateCycles(const cuda::LaunchRecord &rec) const
{
    const func::FuncStats &fs = rec.func_stats;
    MLGS_REQUIRE(fs.instructions > 0,
                 "oracle needs a functional-mode launch record for ",
                 rec.kernel_name);

    const double total_warps =
        double(rec.grid.count()) *
        double((rec.block.count() + kWarpSize - 1) / kWarpSize);

    // Pure issue-throughput limb; low-occupancy/latency effects are covered
    // by the dependency limb below.
    const double weighted_insts = double(fs.alu) +
                                  double(fs.sfu) * spec_.sfu_cost +
                                  double(fs.mem) * spec_.mem_inst_cost;
    const double compute_cycles =
        weighted_insts / (double(spec_.num_sms) * spec_.issue_per_sm);

    const double bytes = double(fs.global_ld_bytes + fs.global_st_bytes);
    const double mem_cycles = bytes / spec_.dram_bytes_per_cycle;

    // Dependency bound: a warp's serial instruction chain cannot issue
    // faster than one instruction per dep_latency cycles, and only
    // warp_slots of them overlap — the limiter for long-serial kernels
    // (e.g. the per-thread FFT butterflies).
    const double overlap = std::min(
        total_warps, double(spec_.num_sms) * spec_.warp_slots_per_sm);
    const double dep_cycles =
        overlap > 0 ? weighted_insts * spec_.dep_latency / overlap : 0.0;

    return std::max({compute_cycles, mem_cycles, dep_cycles}) +
           spec_.launch_overhead;
}

std::vector<CorrelationRow>
HwOracle::correlate(const std::vector<cuda::LaunchRecord> &functional_log,
                    const std::vector<cuda::LaunchRecord> &performance_log) const
{
    MLGS_REQUIRE(functional_log.size() == performance_log.size(),
                 "correlation logs differ in length: ", functional_log.size(),
                 " vs ", performance_log.size());
    std::map<std::string, CorrelationRow> by_kernel;
    for (size_t i = 0; i < functional_log.size(); i++) {
        const auto &f = functional_log[i];
        const auto &p = performance_log[i];
        MLGS_REQUIRE(f.kernel_name == p.kernel_name,
                     "correlation logs disagree at launch ", i, ": ",
                     f.kernel_name, " vs ", p.kernel_name);
        CorrelationRow &row = by_kernel[f.kernel_name];
        row.kernel = f.kernel_name;
        row.hw_cycles += estimateCycles(f);
        row.sim_cycles += double(p.cycles);
    }
    std::vector<CorrelationRow> rows;
    rows.reserve(by_kernel.size());
    for (auto &[name, row] : by_kernel)
        rows.push_back(row);
    return rows;
}

double
HwOracle::overallRelative(const std::vector<CorrelationRow> &rows)
{
    double hw = 0, sim = 0;
    for (const auto &r : rows) {
        hw += r.hw_cycles;
        sim += r.sim_cycles;
    }
    return hw ? 100.0 * sim / hw : 0.0;
}

double
HwOracle::pearson(const std::vector<CorrelationRow> &rows)
{
    const size_t n = rows.size();
    if (n < 2)
        return 1.0;
    double mx = 0, my = 0;
    for (const auto &r : rows) {
        mx += r.hw_cycles;
        my += r.sim_cycles;
    }
    mx /= double(n);
    my /= double(n);
    double sxy = 0, sxx = 0, syy = 0;
    for (const auto &r : rows) {
        sxy += (r.hw_cycles - mx) * (r.sim_cycles - my);
        sxx += (r.hw_cycles - mx) * (r.hw_cycles - mx);
        syy += (r.sim_cycles - my) * (r.sim_cycles - my);
    }
    return (sxx > 0 && syy > 0) ? sxy / std::sqrt(sxx * syy) : 0.0;
}

} // namespace mlgs::oracle
