#include "chkpt/checkpoint.h"

#include "trace/trace_format.h"

namespace mlgs::chkpt
{

namespace
{

constexpr uint64_t kMagic = 0x4d4c47534348504bull; // "MLGSCHPK"

/**
 * Version 2: validated header (putHeader/readHeader) and kernel identity via
 * the trace subsystem's interned (module name, kernel name) pair instead of
 * a bare flat kernel name — the same table .mlgstrace files use, so both
 * formats resolve kernels identically even when names repeat across modules.
 */
constexpr uint32_t kVersion = 2;

} // namespace

void
saveCta(BinaryWriter &w, const func::CtaExec &cta)
{
    w.put<uint32_t>(cta.ctaId().x);
    w.put<uint32_t>(cta.ctaId().y);
    w.put<uint32_t>(cta.ctaId().z);
    w.put<uint32_t>(cta.numThreads());
    // Per-thread registers + local memory.
    for (unsigned t = 0; t < cta.numThreads(); t++) {
        const auto &th = cta.thread(t);
        w.put<uint64_t>(th.regs.size());
        for (const auto &r : th.regs)
            w.put<uint64_t>(r.u64);
        w.putVector(th.local);
    }
    // Per-warp SIMT stacks + barrier flags + instruction counters.
    w.put<uint32_t>(cta.numWarps());
    for (unsigned wp = 0; wp < cta.numWarps(); wp++) {
        const auto &entries = cta.stack(wp).entries();
        w.put<uint64_t>(entries.size());
        for (const auto &e : entries) {
            w.put<uint32_t>(e.pc);
            w.put<uint32_t>(e.rpc);
            w.put<uint32_t>(e.mask);
        }
        w.put<uint8_t>(cta.warpAtBarrier(wp) ? 1 : 0);
        w.put<uint64_t>(cta.warpInstrCount(wp));
    }
    // Shared memory.
    w.putVector(cta.shared());
}

std::unique_ptr<func::CtaExec>
loadCta(BinaryReader &r, const ptx::KernelDef &kernel, const Dim3 &grid,
        const Dim3 &block)
{
    Dim3 cta_id;
    cta_id.x = r.get<uint32_t>();
    cta_id.y = r.get<uint32_t>();
    cta_id.z = r.get<uint32_t>();
    auto cta = std::make_unique<func::CtaExec>(kernel, grid, block, cta_id);

    const auto nthreads = r.get<uint32_t>();
    MLGS_REQUIRE(nthreads == cta->numThreads(), "checkpoint CTA shape mismatch");
    for (unsigned t = 0; t < nthreads; t++) {
        auto &th = cta->thread(t);
        const auto nregs = r.get<uint64_t>();
        MLGS_REQUIRE(nregs == th.regs.size(),
                     "checkpoint register-file layout mismatch");
        for (auto &reg : th.regs)
            reg.u64 = r.get<uint64_t>();
        th.local = r.getVector<uint8_t>();
    }
    const auto nwarps = r.get<uint32_t>();
    MLGS_REQUIRE(nwarps == cta->numWarps(), "checkpoint warp count mismatch");
    for (unsigned wp = 0; wp < nwarps; wp++) {
        auto &stack = cta->stack(wp).entries();
        stack.clear();
        const auto nentries = r.get<uint64_t>();
        for (uint64_t e = 0; e < nentries; e++) {
            func::SimtStack::Entry entry;
            entry.pc = r.get<uint32_t>();
            entry.rpc = r.get<uint32_t>();
            entry.mask = r.get<uint32_t>();
            stack.push_back(entry);
        }
        cta->barrierFlags()[wp] = r.get<uint8_t>();
        cta->instrCounts()[wp] = r.get<uint64_t>();
    }
    cta->shared() = r.getVector<uint8_t>();
    return cta;
}

// ---- writer ----

CheckpointWriter::CheckpointWriter(cuda::Context &ctx, CheckpointConfig cfg)
    : ctx_(&ctx), cfg_(std::move(cfg))
{
    ctx_->setLaunchHook([this](cuda::LaunchRecord &rec) { return onLaunch(rec); });
}

bool
CheckpointWriter::onLaunch(cuda::LaunchRecord &rec)
{
    if (reached_ || rec.launch_id > cfg_.kernel_x)
        return true; // everything after the checkpoint is skipped

    func::LaunchEnv env;
    env.kernel = rec.kernel;
    env.params = rec.params;
    env.symbols = &ctx_->symbols();
    env.textures = ctx_;

    auto &engine = ctx_->functionalEngine();

    if (rec.launch_id < cfg_.kernel_x) {
        rec.func_stats = engine.launch(env, rec.grid, rec.block);
        return true;
    }

    // Kernel x: CTAs < M run fully; CTAs M..M+t run y instructions per warp
    // and are serialized; CTAs beyond M+t are not executed.
    const uint64_t num_ctas = rec.grid.count();
    const uint64_t m = std::min(cfg_.cta_m, num_ctas);
    const uint64_t end_partial = std::min(m + cfg_.cta_t + 1, num_ctas);

    for (uint64_t c = 0; c < m; c++) {
        auto cta = engine.makeCta(env, rec.grid, rec.block, c);
        const bool done = engine.runCta(*cta, env);
        MLGS_ASSERT(done, "full CTA did not complete during checkpointing");
    }

    BinaryWriter w;
    w.putHeader(kMagic, kVersion);
    // Kernel identity: interned (module name, kernel name), shared with the
    // trace format (see trace::StringIntern).
    const int mod = ctx_->moduleIndexOf(rec.kernel);
    MLGS_REQUIRE(mod >= 0, "checkpointed kernel '", rec.kernel_name,
                 "' is not owned by a loaded module");
    trace::StringIntern names;
    const uint32_t module_sid = names.id(ctx_->module(mod).source_name);
    const uint32_t kernel_sid = names.id(rec.kernel_name);
    names.save(w);
    w.put<uint32_t>(module_sid);
    w.put<uint32_t>(kernel_sid);
    w.put<uint64_t>(cfg_.kernel_x);
    w.put<uint64_t>(m);
    w.put<uint32_t>(rec.grid.x);
    w.put<uint32_t>(rec.grid.y);
    w.put<uint32_t>(rec.grid.z);
    w.put<uint32_t>(rec.block.x);
    w.put<uint32_t>(rec.block.y);
    w.put<uint32_t>(rec.block.z);

    w.put<uint64_t>(end_partial - m);
    for (uint64_t c = m; c < end_partial; c++) {
        auto cta = engine.makeCta(env, rec.grid, rec.block, c);
        engine.runCta(*cta, env, cfg_.instr_y);
        saveCta(w, *cta);
    }

    // Data2: global memory after kernels < x and CTAs < M of kernel x.
    ctx_->memory().save(w);
    w.writeFile(cfg_.path);
    reached_ = true;
    return true;
}

// ---- loader ----

CheckpointLoader::CheckpointLoader(cuda::Context &ctx, const std::string &path)
    : ctx_(&ctx)
{
    BinaryReader r = BinaryReader::fromFile(path);
    r.readHeader(kMagic, kVersion, kVersion, "checkpoint");
    trace::StringIntern names;
    names.load(r);
    const std::string module_name = names.str(r.get<uint32_t>());
    kernel_name_ = names.str(r.get<uint32_t>());
    kernel_x_ = r.get<uint64_t>();
    cta_m_ = r.get<uint64_t>();
    grid_.x = r.get<uint32_t>();
    grid_.y = r.get<uint32_t>();
    grid_.z = r.get<uint32_t>();
    block_.x = r.get<uint32_t>();
    block_.y = r.get<uint32_t>();
    block_.z = r.get<uint32_t>();

    const auto npartial = r.get<uint64_t>();
    // The CTA payloads reference the kernel, so the owning module must be
    // loaded before constructing the loader. Identity is the interned
    // (module, kernel) pair: resolve the module by name, then the kernel
    // within it (duplicate kernel names in other modules cannot shadow it).
    const ptx::KernelDef *kernel = nullptr;
    for (int h = 0; h < ctx_->moduleCount(); h++) {
        if (ctx_->module(h).source_name == module_name) {
            kernel = ctx_->getFunction(h, kernel_name_);
            break;
        }
    }
    if (!kernel) {
        // The recorded module is not loaded under that name (the replayed
        // host program may load its modules later, so the caller preloaded
        // the kernel under a placeholder name). Fall back to a unique
        // kernel-name match; ambiguity stays a hard error rather than a
        // guess.
        for (int h = 0; h < ctx_->moduleCount(); h++) {
            if (const auto *k = ctx_->getFunction(h, kernel_name_)) {
                MLGS_REQUIRE(!kernel, "ambiguous checkpoint kernel ",
                             kernel_name_, ": found in several loaded modules "
                             "and the recorded module ", module_name,
                             " is not loaded");
                kernel = k;
            }
        }
    }
    MLGS_REQUIRE(kernel, "load the PTX modules before the checkpoint: missing ",
                 kernel_name_, " in module ", module_name);
    for (uint64_t i = 0; i < npartial; i++) {
        auto cta = loadCta(r, *kernel, grid_, block_);
        BinaryWriter w;
        saveCta(w, *cta);
        raw_ctas_.push_back(w.bytes());
    }

    ctx_->memory().restore(r);
    // Keep a copy of the image: the replayed host program may overwrite
    // buffers (re-uploading inputs) before kernel x is reached, so the
    // image is restored again at resume time — the paper restores global
    // memory "for each kernel" for exactly this reason (Section III-F).
    BinaryWriter w;
    ctx_->memory().save(w);
    mem_image_ = w.bytes();
    ctx_->setLaunchHook([this](cuda::LaunchRecord &rec) { return onLaunch(rec); });
}

bool
CheckpointLoader::onLaunch(cuda::LaunchRecord &rec)
{
    if (rec.launch_id < kernel_x_)
        return true; // skipped: effects are in the restored memory image

    if (rec.launch_id > kernel_x_)
        return false; // normal execution in the context's current mode

    MLGS_REQUIRE(rec.kernel_name == kernel_name_,
                 "resume mismatch: expected kernel ", kernel_name_, ", got ",
                 rec.kernel_name);

    // Re-restore the checkpointed memory image (see constructor note).
    {
        BinaryReader r(mem_image_);
        ctx_->memory().restore(r);
    }

    func::LaunchEnv env;
    env.kernel = rec.kernel;
    env.params = rec.params;
    env.symbols = &ctx_->symbols();
    env.textures = ctx_;

    std::vector<std::unique_ptr<func::CtaExec>> preloaded;
    for (const auto &bytes : raw_ctas_) {
        BinaryReader r(bytes);
        preloaded.push_back(loadCta(r, *rec.kernel, rec.grid, rec.block));
    }

    if (ctx_->mode() == cuda::SimMode::Performance) {
        rec.perf = ctx_->gpuModel().runKernelFrom(env, rec.grid, rec.block,
                                                  cta_m_, std::move(preloaded));
        rec.cycles = rec.perf.cycles;
    } else {
        auto &engine = ctx_->functionalEngine();
        const uint64_t num_ctas = rec.grid.count();
        for (uint64_t c = cta_m_; c < num_ctas; c++) {
            const uint64_t pidx = c - cta_m_;
            std::unique_ptr<func::CtaExec> cta;
            if (pidx < preloaded.size())
                cta = std::move(preloaded[pidx]);
            else
                cta = engine.makeCta(env, rec.grid, rec.block, c);
            const bool done = engine.runCta(*cta, env, UINT64_MAX,
                                            &rec.func_stats);
            MLGS_ASSERT(done, "resumed CTA did not complete");
        }
    }
    return true;
}

} // namespace mlgs::chkpt
