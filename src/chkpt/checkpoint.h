/**
 * @file
 * Checkpoint/resume (Section III-F, Figs 4-5). A checkpoint is taken during
 * Functional-mode execution at a user-chosen position — kernel x, with CTAs
 * 0..M-1 executed fully and CTAs M..M+t executed for y instructions per warp
 * — and saves:
 *   Data1: register file + local memory per thread, SIMT stack per warp,
 *          shared memory + barrier state per CTA (the suspended CTAs);
 *   Data2: the GPU global-memory image.
 * Resume restores Data2, skips kernels < x, re-adopts the suspended CTAs of
 * kernel x (skipping CTAs < M), and continues — typically in Performance
 * mode, which is the whole point: pay the 7-8x slowdown only for the region
 * of interest.
 */
#ifndef MLGS_CHKPT_CHECKPOINT_H
#define MLGS_CHKPT_CHECKPOINT_H

#include <string>

#include "runtime/context.h"

namespace mlgs::chkpt
{

/** User-visible checkpoint-position parameters (paper's x, M, t, y). */
struct CheckpointConfig
{
    uint64_t kernel_x = 0; ///< launch id to checkpoint inside
    uint64_t cta_m = 0;    ///< first partially-executed CTA
    uint64_t cta_t = 0;    ///< number of additional partial CTAs (M..M+t)
    uint64_t instr_y = 0;  ///< per-warp instruction budget for partial CTAs
    std::string path = "checkpoint.mlgs";
};

/** Serialize one CTA's Data1 state. */
void saveCta(BinaryWriter &w, const func::CtaExec &cta);

/** Restore one CTA's Data1 state (kernel must match the saved layout). */
std::unique_ptr<func::CtaExec> loadCta(BinaryReader &r,
                                       const ptx::KernelDef &kernel,
                                       const Dim3 &grid, const Dim3 &block);

/**
 * Installs a launch hook on the context that executes kernels < x fully in
 * functional mode, fast-forwards kernel x to the checkpoint position, writes
 * the checkpoint file, and skips every kernel from x onwards.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter(cuda::Context &ctx, CheckpointConfig cfg);

    /** True once the checkpoint file has been written. */
    bool reached() const { return reached_; }

  private:
    bool onLaunch(cuda::LaunchRecord &rec);

    cuda::Context *ctx_;
    CheckpointConfig cfg_;
    bool reached_ = false;
};

/**
 * Installs a launch hook that skips kernels < x (their memory effects come
 * from the restored image), resumes kernel x from the saved CTA states in
 * the context's current mode, and lets later kernels run normally.
 */
class CheckpointLoader
{
  public:
    /** Restores Data2 into the context immediately. */
    CheckpointLoader(cuda::Context &ctx, const std::string &path);

    uint64_t kernelX() const { return kernel_x_; }

  private:
    bool onLaunch(cuda::LaunchRecord &rec);

    cuda::Context *ctx_;
    uint64_t kernel_x_ = 0;
    uint64_t cta_m_ = 0;
    std::string kernel_name_;
    Dim3 grid_, block_;
    std::vector<std::vector<uint8_t>> raw_ctas_; ///< serialized partial CTAs
    std::vector<uint8_t> mem_image_;             ///< Data2 for resume-time restore
};

} // namespace mlgs::chkpt

#endif // MLGS_CHKPT_CHECKPOINT_H
