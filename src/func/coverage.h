/**
 * @file
 * Execution-coverage map over instruction handler variants, supporting the
 * "differential coverage analysis" debugging technique from Section III-D:
 * comparing which opcode/type variants two workloads exercise localizes
 * functional-simulator code paths only reached by the failing workload.
 *
 * Counts are keyed by the per-Instr interned variant id assigned by
 * analyzeKernel, so the per-warp-instruction hot path is a vector increment;
 * mnemonic strings are materialized only when counts()/diff() are called.
 */
#ifndef MLGS_FUNC_COVERAGE_H
#define MLGS_FUNC_COVERAGE_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ptx/ir.h"

namespace mlgs::func
{

/** Counts executed instruction variants, keyed by interned variant id. */
class CoverageMap
{
  public:
    void
    hit(uint32_t variant_id)
    {
        if (variant_id == ptx::kNoVariant)
            return; // instruction never went through analyzeKernel
        if (variant_id >= counts_.size())
            counts_.resize(variant_id + 1, 0);
        counts_[variant_id]++;
    }

    /** Convenience for tests/tools seeding a map by mnemonic text. */
    void hit(const std::string &variant) { hit(ptx::internVariant(variant)); }

    /** Materialize mnemonic-keyed counts (diagnostics; not the hot path). */
    std::map<std::string, uint64_t>
    counts() const
    {
        std::map<std::string, uint64_t> out;
        for (uint32_t id = 0; id < counts_.size(); id++)
            if (counts_[id] > 0)
                out.emplace(ptx::variantName(id), counts_[id]);
        return out;
    }

    /** Variants present in this map but absent from base (sorted). */
    std::vector<std::string>
    diff(const CoverageMap &base) const
    {
        std::vector<std::string> only;
        for (uint32_t id = 0; id < counts_.size(); id++)
            if (counts_[id] > 0 &&
                (id >= base.counts_.size() || base.counts_[id] == 0))
                only.push_back(ptx::variantName(id));
        std::sort(only.begin(), only.end());
        return only;
    }

    /** Fold another map in (deterministic worker-shard reduction). */
    void
    merge(const CoverageMap &o)
    {
        if (o.counts_.size() > counts_.size())
            counts_.resize(o.counts_.size(), 0);
        for (uint32_t id = 0; id < o.counts_.size(); id++)
            counts_[id] += o.counts_[id];
    }

    void clear() { counts_.clear(); }

  private:
    std::vector<uint64_t> counts_;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_COVERAGE_H
