/**
 * @file
 * Execution-coverage map over instruction handler variants, supporting the
 * "differential coverage analysis" debugging technique from Section III-D:
 * comparing which opcode/type variants two workloads exercise localizes
 * functional-simulator code paths only reached by the failing workload.
 */
#ifndef MLGS_FUNC_COVERAGE_H
#define MLGS_FUNC_COVERAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mlgs::func
{

/** Counts executed instruction variants, keyed by full mnemonic text. */
class CoverageMap
{
  public:
    void hit(const std::string &variant) { counts_[variant]++; }

    const std::map<std::string, uint64_t> &counts() const { return counts_; }

    /** Variants present in this map but absent from base. */
    std::vector<std::string>
    diff(const CoverageMap &base) const
    {
        std::vector<std::string> only;
        for (const auto &[k, v] : counts_)
            if (v > 0 && !base.counts_.count(k))
                only.push_back(k);
        return only;
    }

    void clear() { counts_.clear(); }

  private:
    std::map<std::string, uint64_t> counts_;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_COVERAGE_H
