/**
 * @file
 * Switchable reproductions of the functional-simulation bugs the paper found
 * and fixed (Section III-D). All default to off, i.e. correct semantics; the
 * debug-tool tests and demos inject them to exercise the localization flow.
 */
#ifndef MLGS_FUNC_BUG_MODEL_H
#define MLGS_FUNC_BUG_MODEL_H

namespace mlgs::func
{

/** Injectable legacy-bug switches for the functional model. */
struct BugModel
{
    /**
     * Execute every rem as `u64 % u64` regardless of the type specifier —
     * the original GPGPU-Sim rem_impl the paper fixed. Wrong for signed
     * operands and for 32-bit registers whose upper halves hold stale bits.
     */
    bool legacy_rem = false;

    /**
     * Bit-field extract without sign handling — the bfe bug found by
     * differential coverage analysis.
     */
    bool legacy_bfe = false;

    /**
     * Compute fma.f32 as round(a*b)+c (two roundings) instead of a fused
     * single-rounding operation. Models the FP16 mul+add-vs-FMA contraction
     * mismatch between simulator and hardware (Section III-D1).
     */
    bool split_fma = false;

    bool anyEnabled() const { return legacy_rem || legacy_bfe || split_fma; }
};

} // namespace mlgs::func

#endif // MLGS_FUNC_BUG_MODEL_H
