/**
 * @file
 * Per-warp SIMT reconvergence stack handling branch divergence, following
 * GPGPU-Sim's design: entries of (PC, reconvergence-PC, active mask); a
 * divergent branch pushes taken/not-taken entries that rejoin at the
 * branch's immediate post-dominator.
 */
#ifndef MLGS_FUNC_SIMT_STACK_H
#define MLGS_FUNC_SIMT_STACK_H

#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "ptx/ir.h"

namespace mlgs::func
{

/** Reconvergence stack for one warp. */
class SimtStack
{
  public:
    struct Entry
    {
        uint32_t pc = 0;
        uint32_t rpc = ptx::kReconvExit;
        warp_mask_t mask = 0;
    };

    /** Reset to a single entry at pc 0 covering the given lanes. */
    void
    init(warp_mask_t mask)
    {
        stack_.clear();
        if (mask)
            stack_.push_back(Entry{0, ptx::kReconvExit, mask});
    }

    bool empty() const { return stack_.empty(); }
    const Entry &top() const { return stack_.back(); }
    uint32_t pc() const { return stack_.back().pc; }
    warp_mask_t activeMask() const { return empty() ? 0 : stack_.back().mask; }

    /** Advance the top entry past a non-branch instruction at pc. */
    void
    advance()
    {
        stack_.back().pc++;
        popReconverged();
    }

    /**
     * Apply a (possibly divergent) branch executed by the top entry.
     *
     * @param taken_mask lanes (subset of the top mask) that take the branch
     * @param target_pc branch target
     * @param fallthrough_pc pc of the instruction after the branch
     * @param reconv_pc immediate post-dominator PC of the branch
     */
    void
    branch(warp_mask_t taken_mask, uint32_t target_pc, uint32_t fallthrough_pc,
           uint32_t reconv_pc)
    {
        Entry &t = stack_.back();
        MLGS_ASSERT((taken_mask & ~t.mask) == 0, "taken lanes outside active mask");
        const warp_mask_t not_taken = t.mask & ~taken_mask;
        if (not_taken == 0) {
            t.pc = target_pc;
            popReconverged();
            return;
        }
        if (taken_mask == 0) {
            t.pc = fallthrough_pc;
            popReconverged();
            return;
        }
        // Divergence: the current entry waits at the reconvergence point and
        // both sides execute serially from the pushed entries.
        t.pc = reconv_pc;
        stack_.push_back(Entry{fallthrough_pc, reconv_pc, not_taken});
        stack_.push_back(Entry{target_pc, reconv_pc, taken_mask});
        popReconverged();
    }

    /**
     * Remove exited lanes from every entry (handles divergent ret/exit),
     * popping entries whose mask becomes empty. The stack may end up empty,
     * meaning the whole warp has exited.
     */
    void
    exitLanes(warp_mask_t lanes)
    {
        for (auto &e : stack_)
            e.mask &= ~lanes;
        while (!stack_.empty() && stack_.back().mask == 0)
            stack_.pop_back();
        if (!stack_.empty())
            popReconverged();
    }

    /** Direct access for checkpointing. */
    std::vector<Entry> &entries() { return stack_; }
    const std::vector<Entry> &entries() const { return stack_; }

  private:
    void
    popReconverged()
    {
        // An entry reaching its reconvergence PC pops; its lanes wait in the
        // ancestor entry whose PC is that reconvergence point, while the
        // sibling entry (if any) executes the other path.
        while (stack_.size() > 1 && stack_.back().pc == stack_.back().rpc)
            stack_.pop_back();
    }

    std::vector<Entry> stack_;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_SIMT_STACK_H
