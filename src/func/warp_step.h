/**
 * @file
 * Result record of executing one warp instruction — the contract between the
 * functional interpreter and both engines (pure-functional and timing).
 */
#ifndef MLGS_FUNC_WARP_STEP_H
#define MLGS_FUNC_WARP_STEP_H

#include <vector>

#include "common/types.h"
#include "ptx/ir.h"

namespace mlgs::func
{

/** One per-lane memory transaction produced by a memory instruction. */
struct MemAccess
{
    addr_t addr = 0;
    unsigned size = 0;
    bool is_store = false;
    bool is_atomic = false;
    ptx::Space space = ptx::Space::Global;
};

/** Outcome of stepping a warp by one instruction. */
struct WarpStepResult
{
    const ptx::Instr *ins = nullptr; ///< instruction that executed
    uint32_t pc = 0;                 ///< its PC
    warp_mask_t active = 0;          ///< lanes that executed (guard applied)
    std::vector<MemAccess> accesses; ///< per-lane accesses (global/local/tex)
    unsigned shared_accesses = 0;    ///< lane count touching shared memory
    bool barrier = false;            ///< warp arrived at bar.sync
    bool exited = false;             ///< warp fully exited
};

} // namespace mlgs::func

#endif // MLGS_FUNC_WARP_STEP_H
