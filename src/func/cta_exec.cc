#include "func/cta_exec.h"

namespace mlgs::func
{

CtaExec::CtaExec(const ptx::KernelDef &kernel, const Dim3 &grid_dim,
                 const Dim3 &block_dim, const Dim3 &cta_id, bool alloc_state)
    : kernel_(&kernel),
      grid_dim_(grid_dim),
      block_dim_(block_dim),
      cta_id_(cta_id),
      num_threads_(unsigned(block_dim.count())),
      num_warps_((num_threads_ + kWarpSize - 1) / kWarpSize)
{
    MLGS_REQUIRE(num_threads_ > 0 && num_threads_ <= 1024,
                 "CTA size out of range: ", num_threads_);

    if (alloc_state) {
        threads_.resize(num_threads_);
        for (auto &t : threads_) {
            t.regs.assign(kernel.reg_types.size(), ptx::RegVal());
            t.local.assign(kernel.local_bytes, 0);
        }
    }

    stacks_.resize(num_warps_);
    for (unsigned w = 0; w < num_warps_; w++) {
        const unsigned first = w * kWarpSize;
        const unsigned count = std::min(kWarpSize, num_threads_ - first);
        const warp_mask_t mask =
            count == kWarpSize ? kFullWarpMask : ((warp_mask_t(1) << count) - 1);
        stacks_[w].init(mask);
    }

    shared_.assign(alloc_state ? kernel.shared_bytes : 0, 0);
    at_barrier_.assign(num_warps_, 0);
    instr_count_.assign(num_warps_, 0);
}

} // namespace mlgs::func
