/**
 * @file
 * Pure-functional grid execution ("Functional simulation mode"): executes
 * kernels warp-serially with no timing, collecting aggregate counts used by
 * the hardware oracle and by checkpointing.
 */
#ifndef MLGS_FUNC_ENGINE_H
#define MLGS_FUNC_ENGINE_H

#include <memory>

#include "common/thread_pool.h"
#include "func/interpreter.h"

namespace mlgs::func
{

/** Aggregate dynamic counts from a functional run. */
struct FuncStats
{
    uint64_t instructions = 0;    ///< warp instructions executed
    uint64_t thread_instructions = 0; ///< summed over active lanes
    uint64_t alu = 0;             ///< warp ALU instructions
    uint64_t sfu = 0;             ///< warp SFU (transcendental) instructions
    uint64_t mem = 0;             ///< warp memory instructions
    uint64_t global_ld_bytes = 0;
    uint64_t global_st_bytes = 0;
    uint64_t shared_accesses = 0;
    uint64_t atomics = 0;
    uint64_t barriers = 0;
    uint64_t flops = 0;           ///< per-lane floating-point operations

    /**
     * Same-phase shared-memory conflicts confirmed by the dynamic race
     * shadow (always 0 unless Interpreter::setRaceCheck is on; the shadow
     * never alters any other stat or simulated state).
     */
    uint64_t shared_races = 0;

    void accumulate(const WarpStepResult &res);

    FuncStats &
    operator+=(const FuncStats &o)
    {
        instructions += o.instructions;
        thread_instructions += o.thread_instructions;
        alu += o.alu;
        sfu += o.sfu;
        mem += o.mem;
        global_ld_bytes += o.global_ld_bytes;
        global_st_bytes += o.global_st_bytes;
        shared_accesses += o.shared_accesses;
        atomics += o.atomics;
        barriers += o.barriers;
        flops += o.flops;
        shared_races += o.shared_races;
        return *this;
    }
};

/**
 * Executes grids CTA-by-CTA on an Interpreter.
 *
 * With a ThreadPool attached (setThreadPool), launch() fans independent CTAs
 * out across the pool's workers: each worker steps whole CTAs with its own
 * FuncStats/CoverageMap shard, and shards are reduced in a fixed worker
 * order afterwards, so results are bitwise identical to a serial run.
 * Kernels whose static analysis shows global atom/red (usesGlobalAtomics)
 * run serially so float-atomic ordering never changes numerics.
 */
class FunctionalEngine
{
  public:
    explicit FunctionalEngine(Interpreter &interp) : interp_(&interp) {}

    /** Attach (or detach with nullptr) the worker pool for CTA fan-out. */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /** Run a full grid to completion. */
    FuncStats launch(const LaunchEnv &env, const Dim3 &grid, const Dim3 &block);

    /** Create the functional state for one CTA (linear index order). */
    std::unique_ptr<CtaExec> makeCta(const LaunchEnv &env, const Dim3 &grid,
                                     const Dim3 &block,
                                     uint64_t linear_cta) const;

    /**
     * Run one CTA until completion or until every warp has executed
     * max_instr_per_warp instructions (checkpoint fast-forward).
     *
     * @return true when the CTA completed, false when suspended at the limit.
     */
    bool runCta(CtaExec &cta, const LaunchEnv &env,
                uint64_t max_instr_per_warp = UINT64_MAX,
                FuncStats *stats = nullptr);

    Interpreter &interpreter() { return *interp_; }

  private:
    static bool runCtaWith(Interpreter &interp, CtaExec &cta,
                           const LaunchEnv &env, uint64_t max_instr_per_warp,
                           FuncStats *stats);

    FuncStats launchParallel(const LaunchEnv &env, const Dim3 &grid,
                             const Dim3 &block, uint64_t num_ctas);

    Interpreter *interp_;
    ThreadPool *pool_ = nullptr;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_ENGINE_H
