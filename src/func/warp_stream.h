/**
 * @file
 * Warp instruction streams: the per-warp sequence of WarpStepResults a
 * performance-mode run produces, recorded once and replayed into the timing
 * model without functional interpretation (trace-driven timing simulation).
 *
 * A stream is keyed by (launch sequence number, linear CTA id, warp) and
 * consumed strictly in program order per warp, so it is insensitive to how
 * the scheduler interleaves warps — replaying the streams through the timing
 * model reproduces the original run's statistics bitwise while skipping all
 * register/memory work. Device memory is NOT written during stream replay,
 * so recorded D2H payloads cannot be re-verified in this mode.
 */
#ifndef MLGS_FUNC_WARP_STREAM_H
#define MLGS_FUNC_WARP_STREAM_H

#include <vector>

#include "common/log.h"
#include "func/cta_exec.h"
#include "func/warp_step.h"

namespace mlgs::func
{

/** One recorded warp instruction: everything the timing model consumes. */
struct WarpStreamStep
{
    uint32_t pc = 0;
    warp_mask_t active = 0;
    uint32_t first_access = 0; ///< index into WarpStream::accesses
    uint16_t num_accesses = 0;
    uint16_t shared_accesses = 0;
    bool barrier = false;
    bool exited = false;
};

/** Program-order instruction stream of one warp. */
struct WarpStream
{
    std::vector<WarpStreamStep> steps;
    std::vector<MemAccess> accesses; ///< pooled, sliced by (first, num)
};

/** Streams of one launch, indexed [linear_cta * warps_per_cta + warp]. */
struct KernelStreams
{
    Dim3 grid, block;
    unsigned warps_per_cta = 0;
    std::vector<WarpStream> warps;
};

/** Warp streams of a whole run, indexed by LaunchEnv::launch_seq. */
class WarpStreamCache
{
  public:
    void
    append(uint64_t launch_seq, const CtaExec &cta, unsigned warp,
           const WarpStepResult &res)
    {
        if (launch_seq >= launches_.size())
            launches_.resize(launch_seq + 1);
        KernelStreams &ks = launches_[launch_seq];
        if (ks.warps.empty()) {
            ks.grid = cta.gridDim();
            ks.block = cta.blockDim();
            ks.warps_per_cta = cta.numWarps();
            ks.warps.resize(size_t(ks.grid.count()) * ks.warps_per_cta);
        }
        WarpStream &ws = ks.warps[stream_index(ks, cta, warp)];
        WarpStreamStep s;
        s.pc = res.pc;
        s.active = res.active;
        s.first_access = uint32_t(ws.accesses.size());
        s.num_accesses = uint16_t(res.accesses.size());
        s.shared_accesses = uint16_t(res.shared_accesses);
        s.barrier = res.barrier;
        s.exited = res.exited;
        ws.accesses.insert(ws.accesses.end(), res.accesses.begin(),
                           res.accesses.end());
        ws.steps.push_back(s);
    }

    const WarpStream &
    stream(uint64_t launch_seq, const CtaExec &cta, unsigned warp) const
    {
        MLGS_REQUIRE(launch_seq < launches_.size(),
                     "warp stream replay: launch ", launch_seq,
                     " was never recorded (", launches_.size(),
                     " launches in the cache)");
        const KernelStreams &ks = launches_[launch_seq];
        return ks.warps[stream_index(ks, cta, warp)];
    }

    size_t launchCount() const { return launches_.size(); }

    uint64_t
    totalSteps() const
    {
        uint64_t n = 0;
        for (const auto &ks : launches_)
            for (const auto &ws : ks.warps)
                n += ws.steps.size();
        return n;
    }

  private:
    static size_t
    stream_index(const KernelStreams &ks, const CtaExec &cta, unsigned warp)
    {
        MLGS_ASSERT(warp < ks.warps_per_cta, "warp out of range");
        const uint64_t lin = flatten(cta.ctaId(), ks.grid);
        return size_t(lin) * ks.warps_per_cta + warp;
    }

    std::vector<KernelStreams> launches_;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_WARP_STREAM_H
