/**
 * @file
 * The scalar execution semantics of the PTX dialect, extracted from the
 * interpreter so the compiled micro-op executor (src/func/compiled/) runs the
 * exact same code paths. Everything here is deliberately deterministic down
 * to the bit: canonical NaN on computed float results, -0 < +0 min/max
 * ordering, partial-union register writes, f32 arithmetic via a double
 * round-trip. Both backends must stay bitwise identical on register files
 * and memory — that property is what the difftest corpus enforces — so any
 * change here changes both backends together.
 */
#ifndef MLGS_FUNC_EXEC_SEMANTICS_H
#define MLGS_FUNC_EXEC_SEMANTICS_H

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/fp16.h"
#include "func/bug_model.h"
#include "func/cta_exec.h"
#include "func/launch_env.h"
#include "mem/addrspace.h"
#include "mem/gpu_memory.h"
#include "ptx/ir.h"

namespace mlgs::func
{

/** Read an operand value as a signed 64-bit integer per type. */
inline int64_t
asS64(ptx::Type t, const ptx::RegVal &v)
{
    using ptx::Type;
    switch (t) {
      case Type::S8: return v.s8;
      case Type::S16: return v.s16;
      case Type::S32: return v.s32;
      case Type::S64: return v.s64;
      case Type::U8: case Type::B8: return int64_t(v.u8);
      case Type::U16: case Type::B16: return int64_t(v.u16);
      case Type::U32: case Type::B32: return int64_t(v.u32);
      case Type::U64: case Type::B64: return int64_t(v.u64);
      default: panic("asS64 on non-integer type");
    }
}

/** Read an operand value as an unsigned 64-bit integer per type. */
inline uint64_t
asU64(ptx::Type t, const ptx::RegVal &v)
{
    using ptx::Type;
    switch (t) {
      case Type::U8: case Type::B8: case Type::S8: return v.u8;
      case Type::U16: case Type::B16: case Type::S16: return v.u16;
      case Type::U32: case Type::B32: case Type::S32: return v.u32;
      case Type::U64: case Type::B64: case Type::S64: return v.u64;
      default: panic("asU64 on non-integer type");
    }
}

/** Read a float operand (f16 is widened to f32). */
inline double
asF(ptx::Type t, const ptx::RegVal &v)
{
    using ptx::Type;
    switch (t) {
      case Type::F16: return fp16ToFp32(v.f16bits);
      case Type::F32: return v.f32;
      case Type::F64: return v.f64;
      default: panic("asF on non-float type");
    }
}

/** Build a RegVal holding x in the field selected by t (other bits zero). */
inline ptx::RegVal
makeInt(ptx::Type t, uint64_t x)
{
    using ptx::Type;
    ptx::RegVal v;
    switch (t) {
      case Type::U8: case Type::B8: case Type::S8: v.u8 = uint8_t(x); break;
      case Type::U16: case Type::B16: case Type::S16: v.u16 = uint16_t(x); break;
      case Type::U32: case Type::B32: case Type::S32: v.u32 = uint32_t(x); break;
      case Type::U64: case Type::B64: case Type::S64: v.u64 = x; break;
      default: panic("makeInt on non-integer type");
    }
    return v;
}

/**
 * Arithmetic instructions generate the canonical NaN (0x7fffffff for f32,
 * 0x7fff for f16), as real SMs do per the PTX ISA. Host NaN propagation is
 * operand-order dependent (x86 keeps one source's payload), so without this
 * the same kernel could produce different NaN bits across compilers. Data
 * movement (ld/st/mov) still preserves NaN payloads — only results computed
 * through makeF are canonicalized. f64 payloads are preserved, also per ISA.
 */
inline ptx::RegVal
makeF(ptx::Type t, double x)
{
    using ptx::Type;
    ptx::RegVal v;
    switch (t) {
      case Type::F16:
        v.f16bits = std::isnan(x) ? 0x7fff : fp32ToFp16(float(x));
        break;
      case Type::F32:
        if (std::isnan(x)) {
            v.u32 = 0x7fffffffu;
            break;
        }
        v.f32 = float(x);
        break;
      case Type::F64: v.f64 = x; break;
      default: panic("makeF on non-float type");
    }
    return v;
}

/** Bit width of an integer type. */
inline unsigned
bitWidth(ptx::Type t)
{
    return ptx::typeSize(t) * 8;
}

/**
 * PTX min/max: a NaN operand is dropped in favour of the other, and signed
 * zeros are ordered -0 < +0 (IEEE 754-2019 minimum/maximum). libm's
 * fmin/fmax leave the zero case unspecified — the result flips with how the
 * compiler schedules the call — so spell the semantics out.
 */
inline double
fminDet(double x, double y)
{
    if (std::isnan(x))
        return y;
    if (std::isnan(y))
        return x;
    if (x == y)
        return std::signbit(x) ? x : y;
    return x < y ? x : y;
}

inline double
fmaxDet(double x, double y)
{
    if (std::isnan(x))
        return y;
    if (std::isnan(y))
        return x;
    if (x == y)
        return std::signbit(x) ? y : x;
    return x > y ? x : y;
}

/**
 * Write only the destination-typed field of the register, leaving the other
 * union bytes untouched — the exact ptx_reg_t semantics that make the
 * legacy untyped-rem bug observable.
 */
inline void
writeTyped(ptx::RegVal &d, ptx::Type t, const ptx::RegVal &v)
{
    using ptx::Type;
    switch (t) {
      case Type::U8: case Type::B8: d.u8 = v.u8; break;
      case Type::S8: d.s8 = v.s8; break;
      case Type::U16: case Type::B16: d.u16 = v.u16; break;
      case Type::S16: d.s16 = v.s16; break;
      case Type::F16: d.f16bits = v.f16bits; break;
      case Type::U32: case Type::B32: d.u32 = v.u32; break;
      case Type::S32: d.s32 = v.s32; break;
      case Type::F32: d.f32 = v.f32; break;
      case Type::U64: case Type::B64: d.u64 = v.u64; break;
      case Type::S64: d.s64 = v.s64; break;
      case Type::F64: d.f64 = v.f64; break;
      case Type::Pred: d.pred = v.pred; break;
      default: panic("writeTyped: bad type");
    }
}

/** Saturating float -> integer conversion bound helper. */
inline int64_t
clampToSigned(double x, unsigned bits)
{
    const double lo = -std::ldexp(1.0, int(bits - 1));
    const double hi = std::ldexp(1.0, int(bits - 1)) - 1.0;
    if (std::isnan(x))
        return 0;
    if (x < lo)
        return int64_t(lo);
    if (x > hi)
        return bits == 64 ? INT64_MAX : int64_t(hi);
    return int64_t(x);
}

inline uint64_t
clampToUnsigned(double x, unsigned bits)
{
    if (std::isnan(x) || x < 0)
        return 0;
    const double hi = std::ldexp(1.0, int(bits)) - 1.0;
    if (x > hi)
        return bits == 64 ? UINT64_MAX : uint64_t(hi);
    return uint64_t(x);
}

/** Special-register value for a thread. */
inline uint32_t
readSpecial(ptx::SReg sreg, const CtaExec &cta, unsigned tid)
{
    const Dim3 tix = cta.threadIdx3(tid);
    switch (sreg) {
      case ptx::SReg::TidX: return tix.x;
      case ptx::SReg::TidY: return tix.y;
      case ptx::SReg::TidZ: return tix.z;
      case ptx::SReg::NTidX: return cta.blockDim().x;
      case ptx::SReg::NTidY: return cta.blockDim().y;
      case ptx::SReg::NTidZ: return cta.blockDim().z;
      case ptx::SReg::CtaIdX: return cta.ctaId().x;
      case ptx::SReg::CtaIdY: return cta.ctaId().y;
      case ptx::SReg::CtaIdZ: return cta.ctaId().z;
      case ptx::SReg::NCtaIdX: return cta.gridDim().x;
      case ptx::SReg::NCtaIdY: return cta.gridDim().y;
      case ptx::SReg::NCtaIdZ: return cta.gridDim().z;
      case ptx::SReg::LaneId: return tid % kWarpSize;
      case ptx::SReg::WarpId: return tid / kWarpSize;
      case ptx::SReg::Clock: return uint32_t(cta.totalInstrCount());
      default: panic("bad special register");
    }
}

/** Kernel-static (shared/local/param) then module-symbol address lookup. */
inline addr_t
symbolAddr(const std::string &sym, const ptx::KernelDef &k,
           const SymbolTable *symbols)
{
    if (const auto *sv = k.findShared(sym))
        return kSharedBase + sv->offset;
    if (const auto *lv = k.findLocal(sym))
        return kLocalBase + lv->offset;
    if (const auto *p = k.findParam(sym))
        return kParamBase + p->offset;
    if (symbols) {
        const auto it = symbols->find(sym);
        if (it != symbols->end())
            return it->second;
    }
    fatal("unresolved symbol '", sym, "' in kernel ", k.name);
}

/** Resolved effective address. */
struct Ea
{
    ptx::Space space;
    addr_t addr; ///< absolute (window-relative encoding preserved)
};

/** Generic-space resolution: classify an address by its window. */
inline ptx::Space
resolveSpace(ptx::Space sp, addr_t ea)
{
    using ptx::Space;
    if (sp != Space::None)
        return sp;
    if (inSharedWindow(ea))
        return Space::Shared;
    if (inLocalWindow(ea))
        return Space::Local;
    if (inParamWindow(ea))
        return Space::Param;
    return Space::Global;
}

/** Typed load of `vec` elements from any state space. */
inline void
loadTyped(GpuMemory &mem, const Ea &ea, ptx::Type t, unsigned vec,
          ptx::RegVal *out, CtaExec &cta, unsigned tid, const LaunchEnv &env)
{
    using ptx::Space;
    using ptx::Type;
    const unsigned esz = ptx::typeSize(t);
    uint8_t bytes[32];
    const size_t total = size_t(esz) * vec;
    MLGS_ASSERT(total <= sizeof(bytes), "vector load too wide");

    switch (ea.space) {
      case Space::Param: {
        const addr_t off = ea.addr - kParamBase;
        MLGS_REQUIRE(off + total <= env.params.size(),
                     "param read out of bounds in ", env.kernel->name);
        std::memcpy(bytes, env.params.data() + off, total);
        break;
      }
      case Space::Shared: {
        const addr_t off = ea.addr - kSharedBase;
        MLGS_REQUIRE(off + total <= cta.shared().size(),
                     "shared read out of bounds in ", env.kernel->name,
                     " offset ", off);
        std::memcpy(bytes, cta.shared().data() + off, total);
        break;
      }
      case Space::Local: {
        const addr_t off = ea.addr - kLocalBase;
        auto &local = cta.thread(tid).local;
        MLGS_REQUIRE(off + total <= local.size(), "local read out of bounds");
        std::memcpy(bytes, local.data() + off, total);
        break;
      }
      default:
        mem.read(ea.addr, bytes, total);
        break;
    }

    for (unsigned i = 0; i < vec; i++) {
        ptx::RegVal v;
        const uint8_t *p = bytes + size_t(i) * esz;
        switch (t) {
          case Type::U8: case Type::B8: v.u64 = p[0]; break;
          case Type::S8: v.s64 = int8_t(p[0]); break;
          case Type::U16: case Type::B16: case Type::F16: {
            uint16_t x;
            std::memcpy(&x, p, 2);
            if (t == Type::F16)
                v.f16bits = x;
            else
                v.u64 = x;
            break;
          }
          case Type::S16: {
            int16_t x;
            std::memcpy(&x, p, 2);
            v.s64 = x;
            break;
          }
          case Type::U32: case Type::B32: {
            uint32_t x;
            std::memcpy(&x, p, 4);
            v.u64 = x;
            break;
          }
          case Type::S32: {
            int32_t x;
            std::memcpy(&x, p, 4);
            v.s64 = x;
            break;
          }
          case Type::F32: std::memcpy(&v.f32, p, 4); break;
          case Type::U64: case Type::B64: case Type::S64:
            std::memcpy(&v.u64, p, 8);
            break;
          case Type::F64: std::memcpy(&v.f64, p, 8); break;
          default: panic("loadTyped: bad type");
        }
        out[i] = v;
    }
}

/** Typed store of `vec` elements into any state space. */
inline void
storeTyped(GpuMemory &mem, const Ea &ea, ptx::Type t, unsigned vec,
           const ptx::RegVal *vals, CtaExec &cta, unsigned tid)
{
    using ptx::Space;
    using ptx::Type;
    const unsigned esz = ptx::typeSize(t);
    uint8_t bytes[32];
    const size_t total = size_t(esz) * vec;
    MLGS_ASSERT(total <= sizeof(bytes), "vector store too wide");

    for (unsigned i = 0; i < vec; i++) {
        uint8_t *p = bytes + size_t(i) * esz;
        const ptx::RegVal &v = vals[i];
        switch (t) {
          case Type::U8: case Type::B8: case Type::S8: p[0] = v.u8; break;
          case Type::U16: case Type::B16: case Type::S16:
            std::memcpy(p, &v.u16, 2);
            break;
          case Type::F16: std::memcpy(p, &v.f16bits, 2); break;
          case Type::U32: case Type::B32: case Type::S32:
            std::memcpy(p, &v.u32, 4);
            break;
          case Type::F32: std::memcpy(p, &v.f32, 4); break;
          case Type::U64: case Type::B64: case Type::S64:
            std::memcpy(p, &v.u64, 8);
            break;
          case Type::F64: std::memcpy(p, &v.f64, 8); break;
          default: panic("storeTyped: bad type");
        }
    }

    switch (ea.space) {
      case Space::Param:
        fatal("stores to param space are not allowed");
      case Space::Shared: {
        const addr_t off = ea.addr - kSharedBase;
        MLGS_REQUIRE(off + total <= cta.shared().size(),
                     "shared write out of bounds offset ", off);
        std::memcpy(cta.shared().data() + off, bytes, total);
        break;
      }
      case Space::Local: {
        const addr_t off = ea.addr - kLocalBase;
        auto &local = cta.thread(tid).local;
        MLGS_REQUIRE(off + total <= local.size(), "local write out of bounds");
        std::memcpy(local.data() + off, bytes, total);
        break;
      }
      default:
        mem.write(ea.addr, bytes, total);
        break;
    }
}

/** Two/three-operand ALU semantics (add..lg2); bug flags parameterized. */
inline ptx::RegVal
execAluOp(const BugModel &bugs, ptx::Op op, ptx::Type t, ptx::MulMode mul_mode,
          const ptx::RegVal &a, const ptx::RegVal &b, const ptx::RegVal &c)
{
    using ptx::MulMode;
    using ptx::Op;
    using ptx::RegVal;
    using ptx::Type;
    using ptx::isFloat;
    using ptx::isSigned;

    switch (op) {
      case Op::Add:
        if (isFloat(t))
            return makeF(t, asF(t, a) + asF(t, b));
        return makeInt(t, asU64(t, a) + asU64(t, b));
      case Op::Sub:
        if (isFloat(t))
            return makeF(t, asF(t, a) - asF(t, b));
        return makeInt(t, asU64(t, a) - asU64(t, b));
      case Op::Mul:
      case Op::Mad: {
        RegVal prod;
        if (isFloat(t)) {
            prod = makeF(t, asF(t, a) * asF(t, b));
        } else {
            switch (mul_mode) {
              case MulMode::Wide: {
                // Destination is double-width.
                if (isSigned(t)) {
                    const int64_t p = asS64(t, a) * asS64(t, b);
                    prod = makeInt(t == Type::S32 ? Type::S64 : Type::S32,
                                   uint64_t(p));
                } else {
                    const uint64_t p = asU64(t, a) * asU64(t, b);
                    prod = makeInt(t == Type::U32 ? Type::U64 : Type::U32, p);
                }
                break;
              }
              case MulMode::Hi: {
                if (bitWidth(t) == 32) {
                    if (isSigned(t)) {
                        const int64_t p = asS64(t, a) * asS64(t, b);
                        prod = makeInt(t, uint64_t(p >> 32));
                    } else {
                        const uint64_t p = asU64(t, a) * asU64(t, b);
                        prod = makeInt(t, p >> 32);
                    }
                } else {
                    const uint64_t p =
                        uint64_t((__uint128_t(asU64(t, a)) * asU64(t, b)) >> 64);
                    prod = makeInt(t, p);
                }
                break;
              }
              default:
                prod = makeInt(t, asU64(t, a) * asU64(t, b));
                break;
            }
        }
        if (op == Op::Mul)
            return prod;
        // mad: accumulate in the product's (possibly widened) type.
        if (isFloat(t))
            return makeF(t, asF(t, prod) + asF(t, c));
        const Type acc_t = (mul_mode == MulMode::Wide)
                               ? (bitWidth(t) == 32
                                      ? (isSigned(t) ? Type::S64 : Type::U64)
                                      : (isSigned(t) ? Type::S32 : Type::U32))
                               : t;
        return makeInt(acc_t, asU64(acc_t, prod) + asU64(acc_t, c));
      }
      case Op::Fma: {
        if (t == Type::F64) {
            return makeF(t, bugs.split_fma ? a.f64 * b.f64 + c.f64
                                           : std::fma(a.f64, b.f64, c.f64));
        }
        const float fa = float(asF(t, a)), fb = float(asF(t, b)),
                    fc = float(asF(t, c));
        const float r = bugs.split_fma ? fa * fb + fc : std::fmaf(fa, fb, fc);
        return makeF(t, r);
      }
      case Op::Div:
        if (isFloat(t))
            return makeF(t, asF(t, a) / asF(t, b));
        if (isSigned(t)) {
            const int64_t sa = asS64(t, a), sb = asS64(t, b);
            if (sb == 0)
                return makeInt(t, ~0ull);
            if (sa == INT64_MIN && sb == -1)
                return makeInt(t, uint64_t(sa));
            return makeInt(t, uint64_t(sa / sb));
        } else {
            const uint64_t ua = asU64(t, a), ub = asU64(t, b);
            return makeInt(t, ub == 0 ? ~0ull : ua / ub);
        }
      case Op::Rem: {
        if (bugs.legacy_rem) {
            // The original GPGPU-Sim rem_impl the paper fixed:
            //   data.u64 = src1_data.u64 % src2_data.u64;
            // ignoring both signedness and operand width.
            RegVal d;
            d.u64 = b.u64 == 0 ? a.u64 : a.u64 % b.u64;
            return d;
        }
        if (isSigned(t)) {
            const int64_t sa = asS64(t, a), sb = asS64(t, b);
            if (sb == 0)
                return makeInt(t, uint64_t(sa));
            if (sa == INT64_MIN && sb == -1)
                return makeInt(t, 0);
            return makeInt(t, uint64_t(sa % sb));
        } else {
            const uint64_t ua = asU64(t, a), ub = asU64(t, b);
            return makeInt(t, ub == 0 ? ua : ua % ub);
        }
      }
      case Op::Abs:
        if (isFloat(t))
            return makeF(t, std::fabs(asF(t, a)));
        return makeInt(t, uint64_t(std::llabs(asS64(t, a))));
      case Op::Neg:
        if (isFloat(t))
            return makeF(t, -asF(t, a));
        return makeInt(t, uint64_t(-asS64(t, a)));
      case Op::Min:
        if (isFloat(t))
            return makeF(t, fminDet(asF(t, a), asF(t, b)));
        if (isSigned(t))
            return makeInt(t, uint64_t(std::min(asS64(t, a), asS64(t, b))));
        return makeInt(t, std::min(asU64(t, a), asU64(t, b)));
      case Op::Max:
        if (isFloat(t))
            return makeF(t, fmaxDet(asF(t, a), asF(t, b)));
        if (isSigned(t))
            return makeInt(t, uint64_t(std::max(asS64(t, a), asS64(t, b))));
        return makeInt(t, std::max(asU64(t, a), asU64(t, b)));
      case Op::And:
        return makeInt(t, asU64(t, a) & asU64(t, b));
      case Op::Or:
        return makeInt(t, asU64(t, a) | asU64(t, b));
      case Op::Xor:
        return makeInt(t, asU64(t, a) ^ asU64(t, b));
      case Op::Not:
        return makeInt(t, ~asU64(t, a));
      case Op::Shl: {
        const unsigned w = bitWidth(t);
        const uint32_t s = b.u32;
        return makeInt(t, s >= w ? 0 : asU64(t, a) << s);
      }
      case Op::Shr: {
        const unsigned w = bitWidth(t);
        const uint32_t s = b.u32;
        if (isSigned(t)) {
            const int64_t sa = asS64(t, a);
            return makeInt(t, uint64_t(sa >> std::min(s, w - 1)));
        }
        return makeInt(t, s >= w ? 0 : asU64(t, a) >> s);
      }
      case Op::Brev: {
        const unsigned w = bitWidth(t);
        const uint64_t x = asU64(t, a);
        uint64_t r = 0;
        for (unsigned i = 0; i < w; i++)
            if ((x >> i) & 1)
                r |= 1ull << (w - 1 - i);
        return makeInt(t, r);
      }
      case Op::Bfe: {
        const unsigned w = bitWidth(t);
        const uint64_t x = asU64(t, a);
        const uint32_t pos = b.u32 & 0xff;
        const uint32_t len = c.u32 & 0xff;
        if (len == 0)
            return makeInt(t, 0);
        uint64_t field;
        if (pos >= w)
            field = 0;
        else
            field = x >> pos;
        const uint64_t mask = len >= 64 ? ~0ull : ((1ull << len) - 1);
        field &= mask;
        if (isSigned(t) && !bugs.legacy_bfe) {
            // Sign bit is the msb of the extracted field (or of the source
            // when the field extends past it).
            const uint32_t sb = std::min(pos + len - 1, w - 1);
            if ((x >> sb) & 1)
                field |= ~mask;
        }
        // legacy_bfe: the pre-fix behaviour — no sign extension at all.
        return makeInt(t, field);
      }
      case Op::Popc:
        return makeInt(Type::U32, uint64_t(__builtin_popcountll(asU64(t, a))));
      case Op::Clz: {
        const unsigned w = bitWidth(t);
        const uint64_t x = asU64(t, a);
        unsigned n = 0;
        for (int i = int(w) - 1; i >= 0 && !((x >> i) & 1); i--)
            n++;
        return makeInt(Type::U32, n);
      }
      case Op::Rcp:
        return makeF(t, 1.0 / asF(t, a));
      case Op::Sqrt:
        return makeF(t, std::sqrt(asF(t, a)));
      case Op::Rsqrt:
        return makeF(t, 1.0 / std::sqrt(asF(t, a)));
      case Op::Sin:
        return makeF(t, std::sin(asF(t, a)));
      case Op::Cos:
        return makeF(t, std::cos(asF(t, a)));
      case Op::Ex2:
        return makeF(t, std::exp2(asF(t, a)));
      case Op::Lg2:
        return makeF(t, std::log2(asF(t, a)));
      default:
        panic("execAlu: unhandled op ", ptx::opName(op));
    }
}

/** cvt semantics: dt <- st with the instruction's rounding mode. */
inline ptx::RegVal
execCvt(ptx::Type dt, ptx::Type st, ptx::CvtRound round, const ptx::RegVal &a)
{
    using ptx::isFloat;
    using ptx::isSigned;
    ptx::RegVal out;
    if (isFloat(st) && isFloat(dt)) {
        out = makeF(dt, asF(st, a));
    } else if (isFloat(st)) {
        // float -> int, saturating; default rounding truncates (rzi);
        // .rni rounds to nearest even.
        double x = asF(st, a);
        if (round == ptx::CvtRound::Nearest)
            x = std::nearbyint(x);
        else
            x = std::trunc(x);
        if (isSigned(dt))
            out = makeInt(dt, uint64_t(clampToSigned(x, bitWidth(dt))));
        else
            out = makeInt(dt, clampToUnsigned(x, bitWidth(dt)));
    } else if (isFloat(dt)) {
        if (isSigned(st))
            out = makeF(dt, double(asS64(st, a)));
        else
            out = makeF(dt, double(asU64(st, a)));
    } else {
        // int -> int: read as source type (sign-extends), write as dest.
        if (isSigned(st))
            out = makeInt(dt, uint64_t(asS64(st, a)));
        else
            out = makeInt(dt, asU64(st, a));
    }
    return out;
}

/** setp comparison; `text` names the instruction in the float-cmp fatal. */
inline bool
setpCompare(ptx::Type t, ptx::CmpOp cmp, const ptx::RegVal &a,
            const ptx::RegVal &b, const std::string &text)
{
    using ptx::CmpOp;
    bool r = false;
    if (ptx::isFloat(t)) {
        const double fa = asF(t, a), fb = asF(t, b);
        switch (cmp) {
          case CmpOp::Eq: r = fa == fb; break;
          case CmpOp::Ne: r = fa != fb; break;
          case CmpOp::Lt: r = fa < fb; break;
          case CmpOp::Le: r = fa <= fb; break;
          case CmpOp::Gt: r = fa > fb; break;
          case CmpOp::Ge: r = fa >= fb; break;
          default: fatal("unsigned compare on float type: ", text);
        }
    } else if (cmp == CmpOp::Lo || cmp == CmpOp::Ls || cmp == CmpOp::Hi ||
               cmp == CmpOp::Hs) {
        const uint64_t ua = asU64(t, a), ub = asU64(t, b);
        switch (cmp) {
          case CmpOp::Lo: r = ua < ub; break;
          case CmpOp::Ls: r = ua <= ub; break;
          case CmpOp::Hi: r = ua > ub; break;
          default: r = ua >= ub; break;
        }
    } else if (ptx::isSigned(t)) {
        const int64_t sa = asS64(t, a), sb = asS64(t, b);
        switch (cmp) {
          case CmpOp::Eq: r = sa == sb; break;
          case CmpOp::Ne: r = sa != sb; break;
          case CmpOp::Lt: r = sa < sb; break;
          case CmpOp::Le: r = sa <= sb; break;
          case CmpOp::Gt: r = sa > sb; break;
          case CmpOp::Ge: r = sa >= sb; break;
          default: break;
        }
    } else {
        const uint64_t ua = asU64(t, a), ub = asU64(t, b);
        switch (cmp) {
          case CmpOp::Eq: r = ua == ub; break;
          case CmpOp::Ne: r = ua != ub; break;
          case CmpOp::Lt: r = ua < ub; break;
          case CmpOp::Le: r = ua <= ub; break;
          case CmpOp::Gt: r = ua > ub; break;
          case CmpOp::Ge: r = ua >= ub; break;
          default: break;
        }
    }
    return r;
}

/** bfi.b32/b64: insert ia into ib at [pos, pos+len). */
inline uint64_t
bfiInsert(ptx::Type t, uint64_t ia, uint64_t ib, uint32_t pos, uint32_t len)
{
    const unsigned w = bitWidth(t);
    uint64_t out = ib;
    if (len > 0 && pos < w) {
        const uint64_t mask = (len >= 64 ? ~0ull : ((1ull << len) - 1)) << pos;
        out = (ib & ~mask) | ((ia << pos) & mask);
    }
    return out;
}

/** Next memory value for an atomic op (swap used only by Cas). */
inline ptx::RegVal
atomNext(ptx::AtomOp aop, ptx::Type t, const ptx::RegVal &old,
         const ptx::RegVal &b, const ptx::RegVal &swap)
{
    using ptx::AtomOp;
    switch (aop) {
      case AtomOp::Add:
        if (ptx::isFloat(t))
            return makeF(t, asF(t, old) + asF(t, b));
        return makeInt(t, asU64(t, old) + asU64(t, b));
      case AtomOp::Min:
        if (ptx::isSigned(t))
            return makeInt(t, uint64_t(std::min(asS64(t, old), asS64(t, b))));
        return makeInt(t, std::min(asU64(t, old), asU64(t, b)));
      case AtomOp::Max:
        if (ptx::isSigned(t))
            return makeInt(t, uint64_t(std::max(asS64(t, old), asS64(t, b))));
        return makeInt(t, std::max(asU64(t, old), asU64(t, b)));
      case AtomOp::Exch:
        return b;
      case AtomOp::Cas:
        return (asU64(t, old) == asU64(t, b)) ? swap : old;
      case AtomOp::And:
        return makeInt(t, asU64(t, old) & asU64(t, b));
      case AtomOp::Or:
        return makeInt(t, asU64(t, old) | asU64(t, b));
      case AtomOp::Inc: {
        const uint64_t uo = asU64(t, old);
        return makeInt(t, uo >= asU64(t, b) ? 0 : uo + 1);
      }
      default:
        panic("unhandled atomic op");
    }
}

/** Texture coordinate register -> integer texel coordinate. */
inline int64_t
texCoordToInt(ptx::Type ct, const ptx::RegVal &cv)
{
    if (ptx::isFloat(ct))
        return int64_t(std::floor(asF(ct, cv)));
    return asS64(ct, cv);
}

/** Result of a texel fetch; hit=false means border (texel stays zero). */
struct TexFetch
{
    float texel[4] = {0, 0, 0, 0};
    bool hit = false;
    addr_t base = 0;
    unsigned bytes = 0;
};

/** Wrap/clamp/border coordinate handling plus the texel reads. */
inline TexFetch
texFetch(GpuMemory &mem, const TexBinding &bind, unsigned tex_dim, int64_t xi,
         int64_t yi)
{
    auto wrap = [&](int64_t v, int64_t n) -> int64_t {
        if (n <= 0)
            return 0;
        switch (bind.address_mode) {
          case TexAddressMode::Wrap: {
            int64_t m = v % n;
            return m < 0 ? m + n : m;
          }
          case TexAddressMode::Border:
            return (v < 0 || v >= n) ? -1 : v;
          default:
            return std::min(std::max<int64_t>(v, 0), n - 1);
        }
    };
    TexFetch f;
    const int64_t x = wrap(xi, int64_t(bind.width));
    const int64_t y = tex_dim >= 2 ? wrap(yi, int64_t(bind.height)) : 0;
    if (x >= 0 && y >= 0) {
        f.base = bind.base +
                 (addr_t(y) * bind.width + addr_t(x)) * bind.channels * 4;
        for (unsigned ch = 0; ch < bind.channels && ch < 4; ch++)
            f.texel[ch] = mem.load<float>(f.base + ch * 4);
        f.bytes = bind.channels * 4;
        f.hit = true;
    }
    return f;
}

} // namespace mlgs::func

#endif // MLGS_FUNC_EXEC_SEMANTICS_H
