/**
 * @file
 * SiteProfiler: measured transactions-per-warp-access and bank-conflict
 * degrees per memory pc (site_profiler.h). The transaction rule is the
 * timing model's (ShaderCore::issueWarp): one transaction per distinct
 * line_bytes-aligned line, straddles touching both lines. The bank rule is
 * the one perf-lint predicts: words of bank_bytes, bank = word % banks,
 * degree = max distinct words on one bank, same-word lanes broadcast.
 */
#include <bit>
#include <set>
#include <sstream>

#include "func/site_profiler.h"

namespace mlgs::func
{

std::string
SiteProfiler::key(const std::string &kernel, const Dim3 &block)
{
    std::ostringstream os;
    os << kernel << "@" << block.x << "x" << block.y << "x" << block.z;
    return os.str();
}

void
SiteProfiler::finishStep(const std::string &kernel, const Dim3 &block,
                         const WarpStepResult &res)
{
    if (!res.ins) {
        shared_lanes_.clear();
        return;
    }
    const bool has_global = [&] {
        for (const MemAccess &a : res.accesses)
            if (a.space == ptx::Space::Global)
                return true;
        return false;
    }();
    if (!has_global && shared_lanes_.empty())
        return;

    KernelSites *ks = nullptr;
    {
        auto [it, inserted] = kernels_.try_emplace(key(kernel, block));
        ks = &it->second;
        if (inserted) {
            ks->kernel = kernel;
            ks->block = block;
        }
    }
    const bool full = std::popcount(uint64_t(res.active)) == 32;

    if (has_global) {
        const addr_t lmask = ~addr_t(line_bytes_ - 1);
        std::set<addr_t> lines;
        bool is_store = false, is_atomic = false;
        unsigned width = 0;
        for (const MemAccess &a : res.accesses) {
            if (a.space != ptx::Space::Global)
                continue;
            lines.insert(a.addr & lmask);
            lines.insert((a.addr + a.size - 1) & lmask);
            is_store |= a.is_store;
            is_atomic |= a.is_atomic;
            width = a.size;
        }
        GlobalSiteStats &g = ks->globals[res.pc];
        g.accesses++;
        g.transactions += lines.size();
        if (full) {
            g.full_accesses++;
            g.full_transactions += lines.size();
        }
        g.is_store = is_store;
        g.is_atomic = is_atomic;
        g.width = width;
    }

    if (!shared_lanes_.empty()) {
        std::map<addr_t, std::set<addr_t>> bank_words;
        std::set<addr_t> words;
        unsigned width = 0;
        for (const Lane &l : shared_lanes_) {
            const addr_t first = l.addr / bank_bytes_;
            const addr_t last = (l.addr + l.bytes - 1) / bank_bytes_;
            for (addr_t w = first; w <= last; w++) {
                bank_words[w % banks_].insert(w);
                words.insert(w);
            }
            width = l.bytes;
        }
        unsigned degree = 1;
        for (const auto &[bank, bw] : bank_words)
            degree = std::max(degree, unsigned(bw.size()));
        SharedSiteStats &s = ks->shared[res.pc];
        s.accesses++;
        s.degree_sum += degree;
        if (full) {
            s.full_accesses++;
            s.full_degree_sum += degree;
        }
        s.max_degree = std::max(s.max_degree, degree);
        if (shared_lanes_.size() > 1 && words.size() == 1)
            s.broadcasts++;
        s.is_store = res.ins->op != ptx::Op::Ld;
        s.width = width;
        shared_lanes_.clear();
    }
}

} // namespace mlgs::func
