/**
 * @file
 * Functional-execution backend selection. Two backends produce bitwise-
 * identical results: the reference interpreter (per-instruction decode) and
 * the compiled micro-op executor (decode-once lowering + threaded dispatch,
 * src/func/compiled/). Selection order mirrors ThreadPool::resolveThreadCount:
 * an explicit ContextOptions/constructor choice wins, then the MLGS_EXEC
 * environment variable ("interp" / "compiled"), then the default (compiled).
 */
#ifndef MLGS_FUNC_EXEC_MODE_H
#define MLGS_FUNC_EXEC_MODE_H

#include <cstdint>

namespace mlgs::func
{

/** Which functional backend executes warp instructions. */
enum class ExecMode : uint8_t
{
    Auto,     ///< resolve from MLGS_EXEC, default Compiled
    Interp,   ///< reference interpreter (ground truth)
    Compiled, ///< lowered micro-op executor
};

/** Resolve Auto via MLGS_EXEC; explicit requests pass through unchanged. */
ExecMode resolveExecMode(ExecMode requested);

/** Printable backend name ("interp" / "compiled" / "auto"). */
const char *execModeName(ExecMode mode);

} // namespace mlgs::func

#endif // MLGS_FUNC_EXEC_MODE_H
