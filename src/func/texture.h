/**
 * @file
 * Texture access interface between the functional model and the runtime's
 * texture-binding tables.
 */
#ifndef MLGS_FUNC_TEXTURE_H
#define MLGS_FUNC_TEXTURE_H

#include <string>

#include "common/types.h"

namespace mlgs::func
{

/** Out-of-range coordinate policy. */
enum class TexAddressMode { Clamp, Wrap, Border };

/** Resolved binding of a texture name to backing storage. */
struct TexBinding
{
    addr_t base = 0;          ///< device address of texel storage (f32 texels)
    unsigned width = 0;       ///< texels per row
    unsigned height = 1;      ///< rows (1 for 1D)
    unsigned channels = 1;    ///< components per texel (1..4)
    TexAddressMode address_mode = TexAddressMode::Clamp;
    bool normalized_coords = false;
};

/** Supplied by the runtime: name -> current binding (paper's name-keyed map). */
class TextureProvider
{
  public:
    virtual ~TextureProvider() = default;

    /** @return binding for the texture name, or nullptr if unbound. */
    virtual const TexBinding *lookupTexture(const std::string &name) const = 0;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_TEXTURE_H
