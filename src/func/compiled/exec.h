/**
 * @file
 * Compiled warp execution: dispatches the decode-once micro-op stream a
 * kernel was lowered into (ptx/uop.h) instead of re-decoding parsed
 * instructions each step. Two entry points:
 *
 *  - stepWarp(): single-instruction step with the exact WarpStepResult
 *    contract of Interpreter::stepWarpExec — used by the timing model and
 *    whenever a warp-stream cache is attached (record keeps its per-step
 *    granularity).
 *  - runWarp(): the batched fast path for the pure-functional engine — runs
 *    the warp until it finishes, reaches a barrier, or hits the instruction
 *    limit, folding stats in directly and walking straight-line basic-block
 *    spans without touching the SIMT stack.
 *
 * Both are bitwise identical to the interpreter on register files, memory
 * and every FuncStats field.
 */
#ifndef MLGS_FUNC_COMPILED_EXEC_H
#define MLGS_FUNC_COMPILED_EXEC_H

#include <cstdint>

#include "func/warp_step.h"

namespace mlgs::func
{

class CtaExec;
class Interpreter;
struct FuncStats;
struct LaunchEnv;

namespace compiled
{

/** Execute one warp instruction (timing-model / warp-stream contract). */
WarpStepResult stepWarp(Interpreter &interp, CtaExec &cta, unsigned warp,
                        const LaunchEnv &env);

/**
 * Run a warp until done, at a barrier, or at the per-warp instruction limit.
 * `stats` may be null (checkpoint fast-forward discards counts, exactly like
 * the interpreter path).
 */
void runWarp(Interpreter &interp, CtaExec &cta, unsigned warp,
             const LaunchEnv &env, uint64_t max_instr_per_warp,
             FuncStats *stats);

} // namespace compiled
} // namespace mlgs::func

#endif // MLGS_FUNC_COMPILED_EXEC_H
