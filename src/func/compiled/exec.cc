/**
 * @file
 * The compiled micro-op executor. Dispatch is a flat table of per-kind
 * handlers over the lowered uop stream (ptx/uop.h): control kinds are
 * handled inline by the dispatch loop, generic kinds funnel into the shared
 * scalar semantics (func/exec_semantics.h) — the same code the interpreter
 * runs — and the specialized kinds are dense 32-lane loops over pre-resolved
 * register slots, structured so the compiler can unroll/vectorize them.
 *
 * The batch loop (runWarp) additionally exploits the basic-block structure
 * the lowering pass marked via `ends_block`: within a block the active mask
 * is invariant and the SIMT stack is untouched, so the top-of-stack pc is
 * synced only at block boundaries, control ops, and the instruction limit.
 * This is safe because reconvergence targets are always block leaders — a
 * mid-block advance can never trigger a reconvergence pop.
 */
#include "func/compiled/exec.h"

#include "func/engine.h"
#include "func/exec_semantics.h"
#include "func/interpreter.h"
#include "ptx/uop.h"

namespace mlgs::func::compiled
{

using ptx::AtomOp;
using ptx::CmpOp;
using ptx::RegVal;
using ptx::Space;
using ptx::Type;
using ptx::Uop;
using ptx::UopBug;
using ptx::UopKind;
using ptx::UopMem;
using ptx::UopProgram;
using ptx::UopSrc;

namespace
{

/** Per-warp execution context threaded through every handler. */
struct ExecCtx
{
    CtaExec *cta = nullptr;
    const LaunchEnv *env = nullptr;
    GpuMemory *mem = nullptr;
    const UopProgram *prog = nullptr;
    unsigned warp = 0;
    unsigned tid0 = 0;                 ///< first thread id of the warp
    RegVal *lanes[kWarpSize] = {};     ///< per-lane register files
    WarpStepResult *res = nullptr;     ///< single-step mode: access sink
    FuncStats *stats = nullptr;        ///< batch mode: direct accumulation
};

ExecCtx
makeCtx(Interpreter &interp, CtaExec &cta, const LaunchEnv &env,
        const UopProgram &prog, unsigned warp)
{
    ExecCtx ctx;
    ctx.cta = &cta;
    ctx.env = &env;
    ctx.mem = &interp.memory();
    ctx.prog = &prog;
    ctx.warp = warp;
    ctx.tid0 = warp * kWarpSize;
    const unsigned n = cta.numThreads();
    for (unsigned lane = 0; lane < kWarpSize; lane++) {
        const unsigned tid = ctx.tid0 + lane;
        ctx.lanes[lane] = tid < n ? cta.thread(tid).regs.data() : nullptr;
    }
    return ctx;
}

/** Guard-predicate evaluation, identical to the interpreter's. */
warp_mask_t
predMask(const Uop &u, warp_mask_t mask, const ExecCtx &ctx)
{
    if (u.pred < 0)
        return mask;
    warp_mask_t exec = 0;
    warp_mask_t m = mask;
    while (m) {
        const unsigned lane = unsigned(__builtin_ctz(m));
        m &= m - 1;
        const bool p = ctx.lanes[lane][size_t(u.pred)].pred;
        if (p != u.pred_neg)
            exec |= warp_mask_t(1) << lane;
    }
    return exec;
}

addr_t
windowBase(Space sp)
{
    switch (sp) {
      case Space::Shared: return kSharedBase;
      case Space::Local: return kLocalBase;
      case Space::Param: return kParamBase;
      default: panic("windowBase: bad static symbol space");
    }
}

addr_t
runtimeSym(const ExecCtx &ctx, int32_t sym)
{
    const std::string &name = ctx.prog->syms[size_t(sym)];
    if (ctx.env->symbols) {
        const auto it = ctx.env->symbols->find(name);
        if (it != ctx.env->symbols->end())
            return it->second;
    }
    fatal("unresolved symbol '", name, "' in kernel ", ctx.env->kernel->name);
}

/** Generic scalar source read (mirrors Interpreter::readOperand). */
RegVal
srcVal(const ExecCtx &ctx, const UopSrc &s, unsigned lane, const RegVal *r)
{
    RegVal v{};
    switch (s.kind) {
      case UopSrc::K::Reg:
        return r[size_t(s.reg)];
      case UopSrc::K::Imm:
        return s.imm;
      case UopSrc::K::Sreg:
        v.u64 = readSpecial(s.sreg, *ctx.cta, ctx.tid0 + lane);
        return v;
      case UopSrc::K::SymStatic:
        v.u64 = windowBase(s.space) + s.off;
        return v;
      case UopSrc::K::SymRuntime:
        v.u64 = runtimeSym(ctx, s.sym);
        return v;
      default:
        return v; // None: zeroed, like the interpreter's absent operands
    }
}

/** Specialized-kind source read: guaranteed register or typed immediate. */
inline RegVal
srcRI(const UopSrc &s, const RegVal *r)
{
    return s.kind == UopSrc::K::Reg ? r[size_t(s.reg)] : s.imm;
}

/** Pre-resolved effective address (mirrors Interpreter::resolveAddr). */
Ea
uopAddr(const ExecCtx &ctx, const UopMem &m, const RegVal *r)
{
    addr_t ea;
    if (m.base_reg >= 0)
        ea = r[size_t(m.base_reg)].u64 + addr_t(m.imm);
    else if (m.sym >= 0)
        ea = runtimeSym(ctx, m.sym) + addr_t(m.imm);
    else
        ea = windowBase(m.sym_space) + m.sym_off + addr_t(m.imm);
    return Ea{resolveSpace(m.space, ea), ea};
}

/**
 * Book-keep one lane's ld/st. Single-step mode pushes the access for the
 * engine's FuncStats::accumulate; batch mode applies the exact same
 * accumulation directly (bytes only for global/const, shared counts +
 * race shadow for shared, nothing for param).
 */
void
recordLdSt(const ExecCtx &ctx, const Uop &u, const Ea &ea, unsigned bytes,
           bool is_store, unsigned tid)
{
    if (ea.space == Space::Global || ea.space == Space::Const ||
        ea.space == Space::Local) {
        if (ctx.res) {
            ctx.res->accesses.push_back(
                MemAccess{ea.addr, bytes, is_store, false, ea.space});
        } else if (ctx.stats && ea.space != Space::Local) {
            if (is_store)
                ctx.stats->global_st_bytes += bytes;
            else
                ctx.stats->global_ld_bytes += bytes;
        }
    } else if (ea.space == Space::Shared) {
        if (ctx.res)
            ctx.res->shared_accesses++;
        else if (ctx.stats)
            ctx.stats->shared_accesses++;
        if (RaceShadow *rs = ctx.cta->raceShadow())
            rs->onAccess(size_t(ea.addr - kSharedBase), bytes, tid, u.pc,
                         u.line, is_store);
    }
}

/**
 * Dense lane loop: the full-mask path is a branch-free 0..31 loop the
 * compiler can unroll/vectorize; the divergent path walks set bits.
 */
#define MLGS_LANE_LOOP(body)                                                  \
    do {                                                                      \
        if (exec == kFullWarpMask) {                                          \
            for (unsigned lane = 0; lane < kWarpSize; lane++) {               \
                RegVal *const r = ctx.lanes[lane];                            \
                body;                                                         \
            }                                                                 \
        } else {                                                              \
            warp_mask_t m_ = exec;                                            \
            while (m_) {                                                      \
                const unsigned lane = unsigned(__builtin_ctz(m_));            \
                m_ &= m_ - 1;                                                 \
                RegVal *const r = ctx.lanes[lane];                            \
                body;                                                         \
            }                                                                 \
        }                                                                     \
    } while (0)

using Handler = void (*)(const Uop &, warp_mask_t, ExecCtx &);

// ---- generic handlers (shared scalar semantics) ----

void
hMov(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(
        writeTyped(r[size_t(u.dst)], u.type, srcVal(ctx, u.a, lane, r)));
}

void
hCvt(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(writeTyped(
        r[size_t(u.dst)], u.type,
        execCvt(u.type, u.stype, u.cvt_round, srcVal(ctx, u.a, lane, r))));
}

void
hSetpG(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    const std::string &text = ptx::variantName(u.variant_id);
    MLGS_LANE_LOOP(r[size_t(u.dst)].pred =
                       setpCompare(u.type, u.cmp, srcVal(ctx, u.a, lane, r),
                                   srcVal(ctx, u.b, lane, r), text));
}

void
hSelpG(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const RegVal a = srcVal(ctx, u.a, lane, r);
        const RegVal b = srcVal(ctx, u.b, lane, r);
        const RegVal p = srcVal(ctx, u.c, lane, r);
        writeTyped(r[size_t(u.dst)], u.type, p.pred ? a : b);
    });
}

void
hBfi(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const uint64_t ia = asU64(u.type, srcVal(ctx, u.a, lane, r));
        const uint64_t ib = asU64(u.type, srcVal(ctx, u.b, lane, r));
        const uint32_t pos = srcVal(ctx, u.c, lane, r).u32 & 0xff;
        const uint32_t len = srcVal(ctx, u.d, lane, r).u32 & 0xff;
        writeTyped(r[size_t(u.dst)], u.type,
                   makeInt(u.type, bfiInsert(u.type, ia, ib, pos, len)));
    });
}

void
hLd(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    const unsigned bytes = u.vec_width * ptx::typeSize(u.type);
    MLGS_LANE_LOOP({
        const unsigned tid = ctx.tid0 + lane;
        const Ea ea = uopAddr(ctx, u.mem, r);
        RegVal vals[4];
        loadTyped(*ctx.mem, ea, u.type, u.vec_width, vals, *ctx.cta, tid,
                  *ctx.env);
        if (u.vec_width == 1)
            writeTyped(r[size_t(u.dst)], u.type, vals[0]);
        else
            for (unsigned i = 0; i < u.dvec_n; i++)
                writeTyped(r[size_t(u.dvec[i])], u.type, vals[i]);
        recordLdSt(ctx, u, ea, bytes, false, tid);
    });
}

void
hSt(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    const unsigned bytes = u.vec_width * ptx::typeSize(u.type);
    MLGS_LANE_LOOP({
        const unsigned tid = ctx.tid0 + lane;
        const Ea ea = uopAddr(ctx, u.mem, r);
        RegVal vals[4];
        if (u.vec_width == 1)
            vals[0] = srcVal(ctx, u.a, lane, r);
        else
            for (unsigned i = 0; i < u.svec_n; i++)
                vals[i] = r[size_t(u.svec[i])];
        storeTyped(*ctx.mem, ea, u.type, u.vec_width, vals, *ctx.cta, tid);
        recordLdSt(ctx, u, ea, bytes, true, tid);
    });
}

void
hAtom(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const unsigned tid = ctx.tid0 + lane;
        const Ea ea = uopAddr(ctx, u.mem, r);
        RegVal old;
        loadTyped(*ctx.mem, ea, u.type, 1, &old, *ctx.cta, tid, *ctx.env);
        const RegVal b = srcVal(ctx, u.a, lane, r);
        RegVal swap{};
        if (u.atom_op == AtomOp::Cas)
            swap = srcVal(ctx, u.b, lane, r);
        const RegVal next = atomNext(u.atom_op, u.type, old, b, swap);
        storeTyped(*ctx.mem, ea, u.type, 1, &next, *ctx.cta, tid);
        if (u.dst >= 0)
            writeTyped(r[size_t(u.dst)], u.type, old);
        if (ea.space == Space::Shared) {
            if (ctx.res)
                ctx.res->shared_accesses++;
            else if (ctx.stats)
                ctx.stats->shared_accesses++;
        } else if (ctx.res) {
            ctx.res->accesses.push_back(MemAccess{
                ea.addr, ptx::typeSize(u.type), true, true, ea.space});
        } else if (ctx.stats) {
            ctx.stats->atomics++;
            if (ea.space == Space::Global || ea.space == Space::Const ||
                ea.space == Space::Tex)
                ctx.stats->global_st_bytes += ptx::typeSize(u.type);
        }
    });
}

void
hTex(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    if (!exec)
        return; // the interpreter's lane loop never reaches the lookups
    MLGS_REQUIRE(ctx.env->textures,
                 "texture instruction without texture table");
    const std::string &name = ctx.prog->syms[size_t(u.mem.sym)];
    const TexBinding *bind = ctx.env->textures->lookupTexture(name);
    MLGS_REQUIRE(bind, "texture '", name,
                 "' is not bound to an array (lost binding)");
    MLGS_LANE_LOOP({
        const int64_t xi = texCoordToInt(u.stype, r[size_t(u.svec[0])]);
        const int64_t yi = (u.tex_dim >= 2 && u.svec_n >= 2)
                               ? texCoordToInt(u.stype, r[size_t(u.svec[1])])
                               : 0;
        const TexFetch f = texFetch(*ctx.mem, *bind, u.tex_dim, xi, yi);
        if (f.hit) {
            if (ctx.res)
                ctx.res->accesses.push_back(
                    MemAccess{f.base, f.bytes, false, false, Space::Tex});
            else if (ctx.stats)
                ctx.stats->global_ld_bytes += f.bytes;
        }
        if (u.dvec_n) {
            for (unsigned i = 0; i < u.dvec_n; i++) {
                RegVal v;
                v.f32 = f.texel[i];
                writeTyped(r[size_t(u.dvec[i])], Type::F32, v);
            }
        } else {
            RegVal v;
            v.f32 = f.texel[0];
            writeTyped(r[size_t(u.dst)], Type::F32, v);
        }
    });
}

void
hAlu(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    BugModel bugs;
    bugs.legacy_rem = (u.bug_flags & UopBug::kLegacyRem) != 0;
    bugs.legacy_bfe = (u.bug_flags & UopBug::kLegacyBfe) != 0;
    bugs.split_fma = (u.bug_flags & UopBug::kSplitFma) != 0;
    MLGS_LANE_LOOP({
        const RegVal a = srcVal(ctx, u.a, lane, r);
        const RegVal b = srcVal(ctx, u.b, lane, r);
        const RegVal c = srcVal(ctx, u.c, lane, r);
        writeTyped(r[size_t(u.dst)], u.dst_type,
                   execAluOp(bugs, u.op, u.type, u.mul_mode, a, b, c));
    });
}

// ---- specialized SIMD lane loops ----

void
hMov32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 = srcRI(u.a, r).u32);
}

void
hMov64(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u64 = srcRI(u.a, r).u64);
}

void
hIAdd32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 + srcRI(u.b, r).u32);
}

void
hISub32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 - srcRI(u.b, r).u32);
}

void
hIMul32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 * srcRI(u.b, r).u32);
}

void
hIMad32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 * srcRI(u.b, r).u32 +
                       srcRI(u.c, r).u32);
}

void
hIAnd32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 & srcRI(u.b, r).u32);
}

void
hIOr32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 | srcRI(u.b, r).u32);
}

void
hIXor32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       srcRI(u.a, r).u32 ^ srcRI(u.b, r).u32);
}

void
hIShl32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const uint32_t s = srcRI(u.b, r).u32;
        r[size_t(u.dst)].u32 = s >= 32 ? 0 : srcRI(u.a, r).u32 << s;
    });
}

void
hIShrS32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const uint32_t s = std::min(srcRI(u.b, r).u32, 31u);
        r[size_t(u.dst)].s32 = srcRI(u.a, r).s32 >> s;
    });
}

void
hIShrU32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const uint32_t s = srcRI(u.b, r).u32;
        r[size_t(u.dst)].u32 = s >= 32 ? 0 : srcRI(u.a, r).u32 >> s;
    });
}

void
hIMinS32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].s32 =
                       std::min(srcRI(u.a, r).s32, srcRI(u.b, r).s32));
}

void
hIMinU32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       std::min(srcRI(u.a, r).u32, srcRI(u.b, r).u32));
}

void
hIMaxS32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].s32 =
                       std::max(srcRI(u.a, r).s32, srcRI(u.b, r).s32));
}

void
hIMaxU32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 =
                       std::max(srcRI(u.a, r).u32, srcRI(u.b, r).u32));
}

void
hIAdd64(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u64 =
                       srcRI(u.a, r).u64 + srcRI(u.b, r).u64);
}

void
hMulWideU32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u64 =
                       uint64_t(srcRI(u.a, r).u32) * srcRI(u.b, r).u32);
}

void
hMulWideS32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].s64 =
                       int64_t(srcRI(u.a, r).s32) * srcRI(u.b, r).s32);
}

void
hFAdd32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(writeTyped(
        r[size_t(u.dst)], Type::F32,
        makeF(Type::F32,
              double(srcRI(u.a, r).f32) + double(srcRI(u.b, r).f32))));
}

void
hFSub32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(writeTyped(
        r[size_t(u.dst)], Type::F32,
        makeF(Type::F32,
              double(srcRI(u.a, r).f32) - double(srcRI(u.b, r).f32))));
}

void
hFMul32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(writeTyped(
        r[size_t(u.dst)], Type::F32,
        makeF(Type::F32,
              double(srcRI(u.a, r).f32) * double(srcRI(u.b, r).f32))));
}

void
hFMad32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    // Exactly the generic mad.f32: the product is rounded to f32 (canonical
    // NaN applied) before the add — two roundings, like the interpreter.
    MLGS_LANE_LOOP({
        const RegVal prod =
            makeF(Type::F32,
                  double(srcRI(u.a, r).f32) * double(srcRI(u.b, r).f32));
        writeTyped(r[size_t(u.dst)], Type::F32,
                   makeF(Type::F32,
                         double(prod.f32) + double(srcRI(u.c, r).f32)));
    });
}

void
hFFma32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    const bool split = (u.bug_flags & UopBug::kSplitFma) != 0;
    MLGS_LANE_LOOP({
        const float fa = srcRI(u.a, r).f32;
        const float fb = srcRI(u.b, r).f32;
        const float fc = srcRI(u.c, r).f32;
        const float v = split ? fa * fb + fc : std::fmaf(fa, fb, fc);
        writeTyped(r[size_t(u.dst)], Type::F32, makeF(Type::F32, v));
    });
}

void
hFMin32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(writeTyped(
        r[size_t(u.dst)], Type::F32,
        makeF(Type::F32, fminDet(double(srcRI(u.a, r).f32),
                                 double(srcRI(u.b, r).f32)))));
}

void
hFMax32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(writeTyped(
        r[size_t(u.dst)], Type::F32,
        makeF(Type::F32, fmaxDet(double(srcRI(u.a, r).f32),
                                 double(srcRI(u.b, r).f32)))));
}

void
hSetp32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    // setpCompare never takes the float-fatal path for 32-bit int types.
    static const std::string kNoText;
    MLGS_LANE_LOOP(r[size_t(u.dst)].pred =
                       setpCompare(u.type, u.cmp, srcRI(u.a, r),
                                   srcRI(u.b, r), kNoText));
}

void
hSetpF32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP({
        const float fa = srcRI(u.a, r).f32;
        const float fb = srcRI(u.b, r).f32;
        bool p = false;
        switch (u.cmp) {
          case CmpOp::Eq: p = fa == fb; break;
          case CmpOp::Ne: p = fa != fb; break;
          case CmpOp::Lt: p = fa < fb; break;
          case CmpOp::Le: p = fa <= fb; break;
          case CmpOp::Gt: p = fa > fb; break;
          default: p = fa >= fb; break; // Ge: lowering excludes Lo/Ls/Hi/Hs
        }
        r[size_t(u.dst)].pred = p;
    });
}

void
hSelp32(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u32 = r[size_t(u.c.reg)].pred
                                              ? srcRI(u.a, r).u32
                                              : srcRI(u.b, r).u32);
}

void
hSelp64(const Uop &u, warp_mask_t exec, ExecCtx &ctx)
{
    MLGS_LANE_LOOP(r[size_t(u.dst)].u64 = r[size_t(u.c.reg)].pred
                                              ? srcRI(u.a, r).u64
                                              : srcRI(u.b, r).u64);
}

#undef MLGS_LANE_LOOP

constexpr size_t kNumKinds = size_t(UopKind::Count);

/** Dispatch table, indexed by UopKind; control kinds have no handler. */
const Handler kHandlers[kNumKinds] = {
    nullptr, nullptr, nullptr, nullptr, // Bra, Exit, Bar, Membar
    hMov, hCvt, hSetpG, hSelpG, hBfi, hLd, hSt, hAtom, hTex, hAlu,
    hMov32, hMov64,
    hIAdd32, hISub32, hIMul32, hIMad32,
    hIAnd32, hIOr32, hIXor32, hIShl32, hIShrS32, hIShrU32,
    hIMinS32, hIMinU32, hIMaxS32, hIMaxU32,
    hIAdd64, hMulWideU32, hMulWideS32,
    hFAdd32, hFSub32, hFMul32, hFMad32, hFFma32, hFMin32, hFMax32,
    hSetp32, hSetpF32, hSelp32, hSelp64,
};
static_assert(sizeof(kHandlers) / sizeof(kHandlers[0]) == kNumKinds,
              "handler table out of sync with UopKind");

/**
 * The lowered program for this CTA's kernel under the interpreter's bug
 * model, cached on the CtaExec (a CTA is stepped by one thread only, and the
 * timing model shares one Interpreter across CTAs, so the cache must be
 * per-CTA rather than per-Interpreter).
 */
const UopProgram &
programFor(Interpreter &interp, CtaExec &cta)
{
    if (const UopProgram *p = cta.uopProgram())
        return *p;
    const BugModel &b = interp.bugs();
    const UopProgram &p = ptx::compiledProgram(
        cta.kernel(),
        ptx::LowerBugs{b.legacy_rem, b.legacy_bfe, b.split_fma});
    cta.setUopProgram(&p);
    return p;
}

/** The per-warp-instruction FuncStats update, minus access bookkeeping. */
inline void
accumulateUop(FuncStats &s, const Uop &u, warp_mask_t exec)
{
    s.instructions++;
    const unsigned lanes = unsigned(__builtin_popcount(exec));
    s.thread_instructions += lanes;
    switch (u.stat_class) {
      case 1: s.sfu++; break;
      case 2: s.mem++; break;
      default: s.alu++; break;
    }
    s.flops += uint64_t(u.flops_per_lane) * lanes;
}

} // namespace

WarpStepResult
stepWarp(Interpreter &interp, CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    const UopProgram &prog = programFor(interp, cta);
    SimtStack &st = cta.stack(warp);
    MLGS_ASSERT(!st.empty(), "stepWarp on a finished warp");
    MLGS_ASSERT(!cta.warpAtBarrier(warp), "stepWarp on a warp at a barrier");

    const uint32_t pc = st.pc();
    MLGS_ASSERT(pc < prog.uops.size(), "pc out of range in ",
                env.kernel->name);
    const Uop &u = prog.uops[pc];
    const warp_mask_t mask = st.activeMask();
    ExecCtx ctx = makeCtx(interp, cta, env, prog, warp);
    const warp_mask_t exec = predMask(u, mask, ctx);

    WarpStepResult res;
    res.ins = &env.kernel->instrs[pc];
    res.pc = pc;
    res.active = exec;
    cta.warpInstrCount(warp)++;
    if (CoverageMap *cov = interp.coverage())
        cov->hit(u.variant_id);

    switch (u.kind) {
      case UopKind::Bra:
        st.branch(exec, u.target_pc, pc + 1, u.reconv_pc);
        return res;
      case UopKind::Exit:
        st.exitLanes(exec);
        if (exec != mask && !st.empty())
            st.advance();
        res.exited = st.empty();
        return res;
      case UopKind::Bar:
        MLGS_REQUIRE(st.entries().size() == 1,
                     "bar.sync inside divergent control flow in ",
                     env.kernel->name);
        cta.setWarpAtBarrier(warp);
        st.advance();
        res.barrier = true;
        return res;
      case UopKind::Membar:
        st.advance();
        return res;
      default:
        break;
    }

    ctx.res = &res;
    kHandlers[size_t(u.kind)](u, exec, ctx);
    st.advance();
    return res;
}

void
runWarp(Interpreter &interp, CtaExec &cta, unsigned warp, const LaunchEnv &env,
        uint64_t max_instr_per_warp, FuncStats *stats)
{
    const UopProgram &prog = programFor(interp, cta);
    SimtStack &st = cta.stack(warp);
    ExecCtx ctx = makeCtx(interp, cta, env, prog, warp);
    ctx.stats = stats;
    CoverageMap *cov = interp.coverage();
    uint64_t &icount = cta.warpInstrCount(warp);
    const Uop *const uops = prog.uops.data();
    const size_t nuops = prog.uops.size();

    while (!st.empty() && !cta.warpAtBarrier(warp) &&
           icount < max_instr_per_warp) {
        uint32_t pc = st.pc();
        const warp_mask_t mask = st.activeMask();
        // Straight-line span: within a basic block the stack is untouched
        // and the active mask is invariant, so the top-of-stack pc is only
        // synced at block ends, control ops, and the instruction limit.
        for (;;) {
            MLGS_ASSERT(pc < nuops, "pc out of range in ", env.kernel->name);
            const Uop &u = uops[pc];
            const warp_mask_t exec = predMask(u, mask, ctx);
            icount++;
            if (cov)
                cov->hit(u.variant_id);
            if (stats)
                accumulateUop(*stats, u, exec);

            if (u.kind >= UopKind::Mov) {
                kHandlers[size_t(u.kind)](u, exec, ctx);
                if (u.ends_block) {
                    st.entries().back().pc = pc;
                    st.advance();
                    break;
                }
                pc++;
                if (icount >= max_instr_per_warp) {
                    st.entries().back().pc = pc;
                    break;
                }
                continue;
            }

            // Control op: sync the deferred pc before any stack mutation.
            st.entries().back().pc = pc;
            if (u.kind == UopKind::Bra) {
                st.branch(exec, u.target_pc, pc + 1, u.reconv_pc);
            } else if (u.kind == UopKind::Exit) {
                st.exitLanes(exec);
                if (exec != mask && !st.empty())
                    st.advance();
            } else if (u.kind == UopKind::Bar) {
                MLGS_REQUIRE(st.entries().size() == 1,
                             "bar.sync inside divergent control flow in ",
                             env.kernel->name);
                cta.setWarpAtBarrier(warp);
                st.advance();
            } else { // Membar
                st.advance();
            }
            break;
        }
    }
}

} // namespace mlgs::func::compiled
