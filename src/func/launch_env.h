/**
 * @file
 * Launch-time environment shared by both execution backends (the reference
 * interpreter and the compiled micro-op executor): kernel, packed params,
 * module symbol addresses and texture bindings.
 */
#ifndef MLGS_FUNC_LAUNCH_ENV_H
#define MLGS_FUNC_LAUNCH_ENV_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "func/texture.h"
#include "ptx/ir.h"

namespace mlgs::func
{

/** Module-level symbol addresses (globals materialized at module load). */
using SymbolTable = std::unordered_map<std::string, addr_t>;

/** Everything a kernel launch needs besides the grid itself. */
struct LaunchEnv
{
    const ptx::KernelDef *kernel = nullptr;
    std::vector<uint8_t> params;            ///< packed parameter block
    const SymbolTable *symbols = nullptr;   ///< may be null (no module globals)
    const TextureProvider *textures = nullptr; ///< may be null (no textures)

    /**
     * Position of this launch in the run's launch order, stamped by
     * GpuModel::beginKernel. Keys the warp-stream cache (trace-driven
     * timing replay); launch order is deterministic, so the same workload
     * always produces the same numbering.
     */
    uint64_t launch_seq = 0;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_LAUNCH_ENV_H
