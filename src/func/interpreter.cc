#include "func/interpreter.h"

#include <cstdlib>
#include <cstring>

#include "func/compiled/exec.h"
#include "func/exec_semantics.h"
#include "func/site_profiler.h"

namespace mlgs::func
{

using ptx::AtomOp;
using ptx::Instr;
using ptx::MulMode;
using ptx::Op;
using ptx::Operand;
using ptx::RegVal;
using ptx::Space;
using ptx::Type;

ExecMode
resolveExecMode(ExecMode requested)
{
    if (requested != ExecMode::Auto)
        return requested;
    if (const char *env = std::getenv("MLGS_EXEC")) {
        if (std::strcmp(env, "interp") == 0)
            return ExecMode::Interp;
        if (std::strcmp(env, "compiled") == 0)
            return ExecMode::Compiled;
        fatal("MLGS_EXEC must be 'interp' or 'compiled', got '", env, "'");
    }
    return ExecMode::Compiled;
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Interp: return "interp";
      case ExecMode::Compiled: return "compiled";
      default: return "auto";
    }
}

namespace
{

/** Operand read against a thread's register file and the launch env. */
RegVal
readOperand(const Instr &ins, const Operand &op, const CtaExec &cta,
            unsigned tid, const LaunchEnv &env)
{
    RegVal v;
    switch (op.kind) {
      case Operand::Kind::Reg:
        return cta.thread(tid).regs[size_t(op.reg)];
      case Operand::Kind::Imm:
        v.u64 = uint64_t(op.imm);
        return v;
      case Operand::Kind::FImm:
        if (ins.type == Type::F64)
            v.f64 = op.fimm;
        else if (ins.type == Type::F16)
            v.f16bits = fp32ToFp16(float(op.fimm));
        else
            v.f32 = float(op.fimm);
        return v;
      case Operand::Kind::Special:
        v.u64 = readSpecial(op.sreg, cta, tid);
        return v;
      case Operand::Kind::Sym:
        v.u64 = symbolAddr(op.sym, *env.kernel, env.symbols);
        return v;
      default:
        panic("readOperand: unsupported operand kind for ", ins.text);
    }
}

/** Effective address of a memory operand with generic-space resolution. */
Ea
resolveAddr(const Instr &ins, const Operand &op, const CtaExec &cta,
            unsigned tid, const LaunchEnv &env)
{
    addr_t ea;
    if (op.reg >= 0)
        ea = cta.thread(tid).regs[size_t(op.reg)].u64 + addr_t(op.imm);
    else
        ea = symbolAddr(op.sym, *env.kernel, env.symbols) + addr_t(op.imm);
    return Ea{resolveSpace(ins.space, ea), ea};
}

/** Index of an in-flight instruction within its kernel (race reporting). */
uint32_t
instrPc(const Instr &ins, const LaunchEnv &env)
{
    return uint32_t(&ins - env.kernel->instrs.data());
}

} // namespace

void
Interpreter::execLane(const Instr &ins, CtaExec &cta, unsigned tid, unsigned lane,
                      const LaunchEnv &env, WarpStepResult &res)
{
    (void)lane;
    ThreadState &th = cta.thread(tid);

    auto src = [&](size_t i) {
        return readOperand(ins, ins.ops[i], cta, tid, env);
    };
    auto writeDst = [&](Type t, const RegVal &v) {
        MLGS_ASSERT(ins.ops[0].kind == Operand::Kind::Reg,
                    "destination must be a register: ", ins.text);
        writeTyped(th.regs[size_t(ins.ops[0].reg)], t, v);
    };

    switch (ins.op) {
      case Op::Mov: {
        if (ins.type == Type::Pred) {
            RegVal v = src(1);
            writeDst(Type::Pred, v);
            return;
        }
        writeDst(ins.type, src(1));
        return;
      }
      case Op::Cvta:
        writeDst(ins.type, src(1));
        return;
      case Op::Cvt: {
        const Type dt = ins.type;
        const Type st = ins.stype == Type::None ? dt : ins.stype;
        writeDst(dt, execCvt(dt, st, ins.cvt_round, src(1)));
        return;
      }
      case Op::Setp: {
        RegVal v;
        v.pred = setpCompare(ins.type, ins.cmp, src(1), src(2), ins.text);
        writeDst(Type::Pred, v);
        return;
      }
      case Op::Selp: {
        const RegVal a = src(1), b = src(2), p = src(3);
        writeDst(ins.type, p.pred ? a : b);
        return;
      }
      case Op::Bfi: {
        // bfi.b32/b64 d, a, b, pos, len : insert a into b.
        const uint64_t ia = asU64(ins.type, src(1));
        const uint64_t ib = asU64(ins.type, src(2));
        const uint32_t pos = src(3).u32 & 0xff;
        const uint32_t len = src(4).u32 & 0xff;
        writeDst(ins.type,
                 makeInt(ins.type, bfiInsert(ins.type, ia, ib, pos, len)));
        return;
      }
      case Op::Ld: {
        const Ea ea = resolveAddr(ins, ins.ops[1], cta, tid, env);
        RegVal vals[4];
        loadTyped(*mem_, ea, ins.type, ins.vec_width, vals, cta, tid, env);
        if (ins.vec_width == 1) {
            writeDst(ins.type, vals[0]);
        } else {
            const auto &vec = ins.ops[0].vec;
            MLGS_ASSERT(vec.size() == ins.vec_width, "vector width mismatch");
            for (unsigned i = 0; i < ins.vec_width; i++)
                writeTyped(th.regs[size_t(vec[i])], ins.type, vals[i]);
        }
        if (ea.space == Space::Global || ea.space == Space::Const ||
            ea.space == Space::Local) {
            res.accesses.push_back(MemAccess{
                ea.addr, ins.vec_width * ptx::typeSize(ins.type), false, false,
                ea.space});
        } else if (ea.space == Space::Shared) {
            res.shared_accesses++;
            if (profiler_)
                profiler_->noteSharedLane(
                    ea.addr - kSharedBase,
                    ins.vec_width * ptx::typeSize(ins.type));
            if (RaceShadow *rs = cta.raceShadow())
                rs->onAccess(size_t(ea.addr - kSharedBase),
                             size_t(ins.vec_width) * ptx::typeSize(ins.type),
                             tid, instrPc(ins, env), ins.line, false);
        }
        return;
      }
      case Op::St: {
        const Ea ea = resolveAddr(ins, ins.ops[0], cta, tid, env);
        RegVal vals[4];
        if (ins.vec_width == 1) {
            vals[0] = readOperand(ins, ins.ops[1], cta, tid, env);
        } else {
            const auto &vec = ins.ops[1].vec;
            MLGS_ASSERT(vec.size() == ins.vec_width, "vector width mismatch");
            for (unsigned i = 0; i < ins.vec_width; i++)
                vals[i] = th.regs[size_t(vec[i])];
        }
        storeTyped(*mem_, ea, ins.type, ins.vec_width, vals, cta, tid);
        if (ea.space == Space::Global || ea.space == Space::Const ||
            ea.space == Space::Local) {
            res.accesses.push_back(MemAccess{
                ea.addr, ins.vec_width * ptx::typeSize(ins.type), true, false,
                ea.space});
        } else if (ea.space == Space::Shared) {
            res.shared_accesses++;
            if (profiler_)
                profiler_->noteSharedLane(
                    ea.addr - kSharedBase,
                    ins.vec_width * ptx::typeSize(ins.type));
            if (RaceShadow *rs = cta.raceShadow())
                rs->onAccess(size_t(ea.addr - kSharedBase),
                             size_t(ins.vec_width) * ptx::typeSize(ins.type),
                             tid, instrPc(ins, env), ins.line, true);
        }
        return;
      }
      case Op::Atom:
      case Op::Red: {
        const bool has_dst = ins.op == Op::Atom;
        const size_t addr_idx = has_dst ? 1 : 0;
        const Ea ea = resolveAddr(ins, ins.ops[addr_idx], cta, tid, env);
        RegVal old;
        loadTyped(*mem_, ea, ins.type, 1, &old, cta, tid, env);
        const RegVal b = readOperand(ins, ins.ops[addr_idx + 1], cta, tid, env);
        RegVal swap;
        if (ins.atom_op == AtomOp::Cas)
            swap = readOperand(ins, ins.ops[addr_idx + 2], cta, tid, env);
        const RegVal next = atomNext(ins.atom_op, ins.type, old, b, swap);
        storeTyped(*mem_, ea, ins.type, 1, &next, cta, tid);
        if (has_dst)
            writeDst(ins.type, old);
        if (ea.space == Space::Shared) {
            res.shared_accesses++;
            if (profiler_)
                profiler_->noteSharedLane(ea.addr - kSharedBase,
                                          ptx::typeSize(ins.type));
        } else {
            res.accesses.push_back(MemAccess{ea.addr, ptx::typeSize(ins.type),
                                             true, true, ea.space});
        }
        return;
      }
      case Op::Tex: {
        MLGS_REQUIRE(env.textures, "texture instruction without texture table");
        const Operand &taddr = ins.ops[1];
        const TexBinding *bind = env.textures->lookupTexture(taddr.sym);
        MLGS_REQUIRE(bind, "texture '", taddr.sym,
                     "' is not bound to an array (lost binding)");
        // Coordinates.
        const Type ct = ins.stype;
        MLGS_ASSERT(!taddr.vec.empty(), "tex without coordinates");
        const int64_t xi = texCoordToInt(ct, th.regs[size_t(taddr.vec[0])]);
        const int64_t yi = (ins.tex_dim >= 2 && taddr.vec.size() >= 2)
                               ? texCoordToInt(ct, th.regs[size_t(taddr.vec[1])])
                               : 0;
        const TexFetch f = texFetch(*mem_, *bind, ins.tex_dim, xi, yi);
        if (f.hit)
            res.accesses.push_back(
                MemAccess{f.base, f.bytes, false, false, Space::Tex});
        // Destination: vector (v4) or scalar register.
        if (ins.ops[0].kind == Operand::Kind::Vec) {
            const auto &vec = ins.ops[0].vec;
            for (size_t i = 0; i < vec.size(); i++) {
                RegVal v;
                v.f32 = f.texel[i];
                writeTyped(th.regs[size_t(vec[i])], Type::F32, v);
            }
        } else {
            RegVal v;
            v.f32 = f.texel[0];
            writeDst(Type::F32, v);
        }
        return;
      }
      default: {
        // Plain ALU instruction: d, a [, b [, c]]
        const size_t n = ins.ops.size();
        MLGS_ASSERT(n >= 2, "ALU instruction needs operands: ", ins.text);
        const RegVal a = src(1);
        const RegVal b = n > 2 ? src(2) : RegVal{};
        const RegVal c = n > 3 ? src(3) : RegVal{};
        RegVal out = execAluOp(bugs_, ins.op, ins.type, ins.mul_mode, a, b, c);
        // mul.wide / mad.wide write a double-width destination.
        Type dt = ins.type;
        if ((ins.op == Op::Mul || ins.op == Op::Mad) &&
            ins.mul_mode == MulMode::Wide) {
            switch (ins.type) {
              case Type::U32: dt = Type::U64; break;
              case Type::S32: dt = Type::S64; break;
              case Type::U16: dt = Type::U32; break;
              case Type::S16: dt = Type::S32; break;
              default: break;
            }
        }
        if (ins.op == Op::Popc || ins.op == Op::Clz)
            dt = Type::U32;
        writeDst(dt, out);
        return;
      }
    }
}

void
Interpreter::setSiteProfiler(SiteProfiler *prof)
{
    MLGS_REQUIRE(!prof || mode_ == ExecMode::Interp,
                 "SiteProfiler requires the interp exec backend (per-lane "
                 "shared addresses are not surfaced by the compiled path)");
    profiler_ = prof;
}

WarpStepResult
Interpreter::stepWarp(CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    if (replay_streams_)
        return replayStep(cta, warp, env);
    if (profiler_)
        profiler_->beginStep();
    WarpStepResult res = mode_ == ExecMode::Compiled
                             ? compiled::stepWarp(*this, cta, warp, env)
                             : stepWarpExec(cta, warp, env);
    if (profiler_)
        profiler_->finishStep(env.kernel->name, cta.blockDim(), res);
    if (record_streams_)
        record_streams_->append(env.launch_seq, cta, warp, res);
    return res;
}

WarpStepResult
Interpreter::replayStep(CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    const WarpStream &ws = replay_streams_->stream(env.launch_seq, cta, warp);
    const uint64_t idx = cta.warpInstrCount(warp);
    MLGS_REQUIRE(idx < ws.steps.size(),
                 "warp stream replay: stream exhausted at step ", idx,
                 " in ", env.kernel->name,
                 " (recorded run executed fewer instructions?)");
    const WarpStreamStep &s = ws.steps[idx];
    SimtStack &st = cta.stack(warp);
    MLGS_ASSERT(st.pc() == s.pc, "warp stream replay diverged: at pc ",
                st.pc(), ", recorded pc ", s.pc, " in ", env.kernel->name);

    WarpStepResult res;
    res.ins = &env.kernel->instrs[s.pc];
    res.pc = s.pc;
    res.active = s.active;
    res.shared_accesses = s.shared_accesses;
    res.barrier = s.barrier;
    res.exited = s.exited;
    res.accesses.assign(ws.accesses.begin() + s.first_access,
                        ws.accesses.begin() + s.first_access + s.num_accesses);

    cta.warpInstrCount(warp)++;
    auto &entries = st.entries();
    if (s.exited) {
        entries.clear();
    } else {
        // The scheduler inspects the warp's next pc before issue (scoreboard
        // checks); collapse the stack to one entry holding the recorded
        // successor pc — divergence was already resolved at record time.
        MLGS_REQUIRE(idx + 1 < ws.steps.size(),
                     "warp stream replay: truncated stream in ",
                     env.kernel->name);
        entries.assign(
            1, SimtStack::Entry{ws.steps[idx + 1].pc, ptx::kReconvExit,
                                s.active ? s.active : warp_mask_t(1)});
        if (s.barrier)
            cta.setWarpAtBarrier(warp);
    }
    return res;
}

WarpStepResult
Interpreter::stepWarpExec(CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    SimtStack &st = cta.stack(warp);
    MLGS_ASSERT(!st.empty(), "stepWarp on a finished warp");
    MLGS_ASSERT(!cta.warpAtBarrier(warp), "stepWarp on a warp at a barrier");

    const ptx::KernelDef &k = *env.kernel;
    const uint32_t pc = st.pc();
    MLGS_ASSERT(pc < k.instrs.size(), "pc out of range in ", k.name);
    const Instr &ins = k.instrs[pc];
    const warp_mask_t mask = st.activeMask();

    warp_mask_t exec = mask;
    if (ins.pred >= 0) {
        exec = 0;
        for (unsigned lane = 0; lane < kWarpSize; lane++) {
            if (!((mask >> lane) & 1))
                continue;
            const unsigned tid = warp * kWarpSize + lane;
            const bool p = cta.thread(tid).regs[size_t(ins.pred)].pred;
            if (p != ins.pred_neg)
                exec |= warp_mask_t(1) << lane;
        }
    }

    WarpStepResult res;
    res.ins = &ins;
    res.pc = pc;
    res.active = exec;
    cta.warpInstrCount(warp)++;
    if (coverage_)
        coverage_->hit(ins.variant_id);

    if (ins.op == Op::Bra) {
        st.branch(exec, ins.target_pc, pc + 1, ins.reconv_pc);
        return res;
    }
    if (ins.isExit()) {
        st.exitLanes(exec);
        if (exec != mask && !st.empty())
            st.advance();
        res.exited = st.empty();
        return res;
    }
    if (ins.op == Op::Bar) {
        MLGS_REQUIRE(st.entries().size() == 1,
                     "bar.sync inside divergent control flow in ", k.name);
        cta.setWarpAtBarrier(warp);
        st.advance();
        res.barrier = true;
        return res;
    }
    if (ins.op == Op::Membar) {
        st.advance();
        return res;
    }

    for (unsigned lane = 0; lane < kWarpSize; lane++) {
        if (!((exec >> lane) & 1))
            continue;
        const unsigned tid = warp * kWarpSize + lane;
        execLane(ins, cta, tid, lane, env, res);
    }
    st.advance();
    return res;
}

} // namespace mlgs::func
