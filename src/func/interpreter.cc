#include "func/interpreter.h"

#include <cmath>
#include <cstring>

#include "common/fp16.h"
#include "mem/addrspace.h"

namespace mlgs::func
{

using ptx::AtomOp;
using ptx::CmpOp;
using ptx::Instr;
using ptx::MulMode;
using ptx::Op;
using ptx::Operand;
using ptx::RegVal;
using ptx::Space;
using ptx::Type;

namespace
{

/** Read an operand value as a signed 64-bit integer per type. */
int64_t
asS64(Type t, const RegVal &v)
{
    switch (t) {
      case Type::S8: return v.s8;
      case Type::S16: return v.s16;
      case Type::S32: return v.s32;
      case Type::S64: return v.s64;
      case Type::U8: case Type::B8: return int64_t(v.u8);
      case Type::U16: case Type::B16: return int64_t(v.u16);
      case Type::U32: case Type::B32: return int64_t(v.u32);
      case Type::U64: case Type::B64: return int64_t(v.u64);
      default: panic("asS64 on non-integer type");
    }
}

/** Read an operand value as an unsigned 64-bit integer per type. */
uint64_t
asU64(Type t, const RegVal &v)
{
    switch (t) {
      case Type::U8: case Type::B8: case Type::S8: return v.u8;
      case Type::U16: case Type::B16: case Type::S16: return v.u16;
      case Type::U32: case Type::B32: case Type::S32: return v.u32;
      case Type::U64: case Type::B64: case Type::S64: return v.u64;
      default: panic("asU64 on non-integer type");
    }
}

/** Read a float operand (f16 is widened to f32). */
double
asF(Type t, const RegVal &v)
{
    switch (t) {
      case Type::F16: return fp16ToFp32(v.f16bits);
      case Type::F32: return v.f32;
      case Type::F64: return v.f64;
      default: panic("asF on non-float type");
    }
}

/** Build a RegVal holding x in the field selected by t (other bits zero). */
RegVal
makeInt(Type t, uint64_t x)
{
    RegVal v;
    switch (t) {
      case Type::U8: case Type::B8: case Type::S8: v.u8 = uint8_t(x); break;
      case Type::U16: case Type::B16: case Type::S16: v.u16 = uint16_t(x); break;
      case Type::U32: case Type::B32: case Type::S32: v.u32 = uint32_t(x); break;
      case Type::U64: case Type::B64: case Type::S64: v.u64 = x; break;
      default: panic("makeInt on non-integer type");
    }
    return v;
}

/**
 * Arithmetic instructions generate the canonical NaN (0x7fffffff for f32,
 * 0x7fff for f16), as real SMs do per the PTX ISA. Host NaN propagation is
 * operand-order dependent (x86 keeps one source's payload), so without this
 * the same kernel could produce different NaN bits across compilers. Data
 * movement (ld/st/mov) still preserves NaN payloads — only results computed
 * through makeF are canonicalized. f64 payloads are preserved, also per ISA.
 */
RegVal
makeF(Type t, double x)
{
    RegVal v;
    switch (t) {
      case Type::F16:
        v.f16bits = std::isnan(x) ? 0x7fff : fp32ToFp16(float(x));
        break;
      case Type::F32:
        if (std::isnan(x)) {
            v.u32 = 0x7fffffffu;
            break;
        }
        v.f32 = float(x);
        break;
      case Type::F64: v.f64 = x; break;
      default: panic("makeF on non-float type");
    }
    return v;
}

/** Bit width of an integer type. */
unsigned
bitWidth(Type t)
{
    return ptx::typeSize(t) * 8;
}

/**
 * PTX min/max: a NaN operand is dropped in favour of the other, and signed
 * zeros are ordered -0 < +0 (IEEE 754-2019 minimum/maximum). libm's
 * fmin/fmax leave the zero case unspecified — the result flips with how the
 * compiler schedules the call — so spell the semantics out.
 */
double
fminDet(double x, double y)
{
    if (std::isnan(x))
        return y;
    if (std::isnan(y))
        return x;
    if (x == y)
        return std::signbit(x) ? x : y;
    return x < y ? x : y;
}

double
fmaxDet(double x, double y)
{
    if (std::isnan(x))
        return y;
    if (std::isnan(y))
        return x;
    if (x == y)
        return std::signbit(x) ? y : x;
    return x > y ? x : y;
}

/**
 * Write only the destination-typed field of the register, leaving the other
 * union bytes untouched — the exact ptx_reg_t semantics that make the
 * legacy untyped-rem bug observable.
 */
void
writeTyped(RegVal &d, Type t, const RegVal &v)
{
    switch (t) {
      case Type::U8: case Type::B8: d.u8 = v.u8; break;
      case Type::S8: d.s8 = v.s8; break;
      case Type::U16: case Type::B16: d.u16 = v.u16; break;
      case Type::S16: d.s16 = v.s16; break;
      case Type::F16: d.f16bits = v.f16bits; break;
      case Type::U32: case Type::B32: d.u32 = v.u32; break;
      case Type::S32: d.s32 = v.s32; break;
      case Type::F32: d.f32 = v.f32; break;
      case Type::U64: case Type::B64: d.u64 = v.u64; break;
      case Type::S64: d.s64 = v.s64; break;
      case Type::F64: d.f64 = v.f64; break;
      case Type::Pred: d.pred = v.pred; break;
      default: panic("writeTyped: bad type");
    }
}

/** Saturating float -> integer conversion bound helper. */
int64_t
clampToSigned(double x, unsigned bits)
{
    const double lo = -std::ldexp(1.0, int(bits - 1));
    const double hi = std::ldexp(1.0, int(bits - 1)) - 1.0;
    if (std::isnan(x))
        return 0;
    if (x < lo)
        return int64_t(lo);
    if (x > hi)
        return bits == 64 ? INT64_MAX : int64_t(hi);
    return int64_t(x);
}

uint64_t
clampToUnsigned(double x, unsigned bits)
{
    if (std::isnan(x) || x < 0)
        return 0;
    const double hi = std::ldexp(1.0, int(bits)) - 1.0;
    if (x > hi)
        return bits == 64 ? UINT64_MAX : uint64_t(hi);
    return uint64_t(x);
}

} // namespace

RegVal
Interpreter::readOperand(const Instr &ins, const Operand &op, const CtaExec &cta,
                         unsigned tid, const LaunchEnv &env) const
{
    RegVal v;
    switch (op.kind) {
      case Operand::Kind::Reg:
        return cta.thread(tid).regs[size_t(op.reg)];
      case Operand::Kind::Imm:
        v.u64 = uint64_t(op.imm);
        return v;
      case Operand::Kind::FImm:
        if (ins.type == Type::F64)
            v.f64 = op.fimm;
        else if (ins.type == Type::F16)
            v.f16bits = fp32ToFp16(float(op.fimm));
        else
            v.f32 = float(op.fimm);
        return v;
      case Operand::Kind::Special: {
        const Dim3 tix = cta.threadIdx3(tid);
        uint32_t x = 0;
        switch (op.sreg) {
          case ptx::SReg::TidX: x = tix.x; break;
          case ptx::SReg::TidY: x = tix.y; break;
          case ptx::SReg::TidZ: x = tix.z; break;
          case ptx::SReg::NTidX: x = cta.blockDim().x; break;
          case ptx::SReg::NTidY: x = cta.blockDim().y; break;
          case ptx::SReg::NTidZ: x = cta.blockDim().z; break;
          case ptx::SReg::CtaIdX: x = cta.ctaId().x; break;
          case ptx::SReg::CtaIdY: x = cta.ctaId().y; break;
          case ptx::SReg::CtaIdZ: x = cta.ctaId().z; break;
          case ptx::SReg::NCtaIdX: x = cta.gridDim().x; break;
          case ptx::SReg::NCtaIdY: x = cta.gridDim().y; break;
          case ptx::SReg::NCtaIdZ: x = cta.gridDim().z; break;
          case ptx::SReg::LaneId: x = tid % kWarpSize; break;
          case ptx::SReg::WarpId: x = tid / kWarpSize; break;
          case ptx::SReg::Clock:
            x = uint32_t(cta.totalInstrCount());
            break;
          default: panic("bad special register");
        }
        v.u64 = x;
        return v;
      }
      case Operand::Kind::Sym: {
        v.u64 = symbolAddr(op.sym, *env.kernel, env);
        return v;
      }
      default:
        panic("readOperand: unsupported operand kind for ", ins.text);
    }
}

addr_t
Interpreter::symbolAddr(const std::string &sym, const ptx::KernelDef &k,
                        const LaunchEnv &env) const
{
    if (const auto *sv = k.findShared(sym))
        return kSharedBase + sv->offset;
    if (const auto *lv = k.findLocal(sym))
        return kLocalBase + lv->offset;
    if (const auto *p = k.findParam(sym))
        return kParamBase + p->offset;
    if (env.symbols) {
        const auto it = env.symbols->find(sym);
        if (it != env.symbols->end())
            return it->second;
    }
    fatal("unresolved symbol '", sym, "' in kernel ", k.name);
}

Interpreter::Ea
Interpreter::resolveAddr(const Instr &ins, const Operand &op, const CtaExec &cta,
                         unsigned tid, const LaunchEnv &env) const
{
    addr_t ea;
    if (op.reg >= 0)
        ea = cta.thread(tid).regs[size_t(op.reg)].u64 + addr_t(op.imm);
    else
        ea = symbolAddr(op.sym, *env.kernel, env) + addr_t(op.imm);

    Space sp = ins.space;
    if (sp == Space::None) {
        if (inSharedWindow(ea))
            sp = Space::Shared;
        else if (inLocalWindow(ea))
            sp = Space::Local;
        else if (inParamWindow(ea))
            sp = Space::Param;
        else
            sp = Space::Global;
    }
    return Ea{sp, ea};
}

void
Interpreter::loadTyped(const Ea &ea, Type t, unsigned vec, RegVal *out,
                       CtaExec &cta, unsigned tid, const LaunchEnv &env) const
{
    const unsigned esz = ptx::typeSize(t);
    uint8_t bytes[32];
    const size_t total = size_t(esz) * vec;
    MLGS_ASSERT(total <= sizeof(bytes), "vector load too wide");

    switch (ea.space) {
      case Space::Param: {
        const addr_t off = ea.addr - kParamBase;
        MLGS_REQUIRE(off + total <= env.params.size(),
                     "param read out of bounds in ", env.kernel->name);
        std::memcpy(bytes, env.params.data() + off, total);
        break;
      }
      case Space::Shared: {
        const addr_t off = ea.addr - kSharedBase;
        MLGS_REQUIRE(off + total <= cta.shared().size(),
                     "shared read out of bounds in ", env.kernel->name,
                     " offset ", off);
        std::memcpy(bytes, cta.shared().data() + off, total);
        break;
      }
      case Space::Local: {
        const addr_t off = ea.addr - kLocalBase;
        auto &local = cta.thread(tid).local;
        MLGS_REQUIRE(off + total <= local.size(), "local read out of bounds");
        std::memcpy(bytes, local.data() + off, total);
        break;
      }
      default:
        mem_->read(ea.addr, bytes, total);
        break;
    }

    for (unsigned i = 0; i < vec; i++) {
        RegVal v;
        const uint8_t *p = bytes + size_t(i) * esz;
        switch (t) {
          case Type::U8: case Type::B8: v.u64 = p[0]; break;
          case Type::S8: v.s64 = int8_t(p[0]); break;
          case Type::U16: case Type::B16: case Type::F16: {
            uint16_t x;
            std::memcpy(&x, p, 2);
            if (t == Type::F16)
                v.f16bits = x;
            else
                v.u64 = x;
            break;
          }
          case Type::S16: {
            int16_t x;
            std::memcpy(&x, p, 2);
            v.s64 = x;
            break;
          }
          case Type::U32: case Type::B32: {
            uint32_t x;
            std::memcpy(&x, p, 4);
            v.u64 = x;
            break;
          }
          case Type::S32: {
            int32_t x;
            std::memcpy(&x, p, 4);
            v.s64 = x;
            break;
          }
          case Type::F32: std::memcpy(&v.f32, p, 4); break;
          case Type::U64: case Type::B64: case Type::S64:
            std::memcpy(&v.u64, p, 8);
            break;
          case Type::F64: std::memcpy(&v.f64, p, 8); break;
          default: panic("loadTyped: bad type");
        }
        out[i] = v;
    }
}

void
Interpreter::storeTyped(const Ea &ea, Type t, unsigned vec, const RegVal *vals,
                        CtaExec &cta, unsigned tid, const LaunchEnv &env) const
{
    (void)env;
    const unsigned esz = ptx::typeSize(t);
    uint8_t bytes[32];
    const size_t total = size_t(esz) * vec;
    MLGS_ASSERT(total <= sizeof(bytes), "vector store too wide");

    for (unsigned i = 0; i < vec; i++) {
        uint8_t *p = bytes + size_t(i) * esz;
        const RegVal &v = vals[i];
        switch (t) {
          case Type::U8: case Type::B8: case Type::S8: p[0] = v.u8; break;
          case Type::U16: case Type::B16: case Type::S16:
            std::memcpy(p, &v.u16, 2);
            break;
          case Type::F16: std::memcpy(p, &v.f16bits, 2); break;
          case Type::U32: case Type::B32: case Type::S32:
            std::memcpy(p, &v.u32, 4);
            break;
          case Type::F32: std::memcpy(p, &v.f32, 4); break;
          case Type::U64: case Type::B64: case Type::S64:
            std::memcpy(p, &v.u64, 8);
            break;
          case Type::F64: std::memcpy(p, &v.f64, 8); break;
          default: panic("storeTyped: bad type");
        }
    }

    switch (ea.space) {
      case Space::Param:
        fatal("stores to param space are not allowed");
      case Space::Shared: {
        const addr_t off = ea.addr - kSharedBase;
        MLGS_REQUIRE(off + total <= cta.shared().size(),
                     "shared write out of bounds offset ", off);
        std::memcpy(cta.shared().data() + off, bytes, total);
        break;
      }
      case Space::Local: {
        const addr_t off = ea.addr - kLocalBase;
        auto &local = cta.thread(tid).local;
        MLGS_REQUIRE(off + total <= local.size(), "local write out of bounds");
        std::memcpy(local.data() + off, bytes, total);
        break;
      }
      default:
        mem_->write(ea.addr, bytes, total);
        break;
    }
}

RegVal
Interpreter::execAlu(const Instr &ins, const RegVal &a, const RegVal &b,
                     const RegVal &c) const
{
    const Type t = ins.type;

    switch (ins.op) {
      case Op::Add:
        if (isFloat(t))
            return makeF(t, asF(t, a) + asF(t, b));
        return makeInt(t, asU64(t, a) + asU64(t, b));
      case Op::Sub:
        if (isFloat(t))
            return makeF(t, asF(t, a) - asF(t, b));
        return makeInt(t, asU64(t, a) - asU64(t, b));
      case Op::Mul:
      case Op::Mad: {
        RegVal prod;
        if (isFloat(t)) {
            prod = makeF(t, asF(t, a) * asF(t, b));
        } else {
            switch (ins.mul_mode) {
              case MulMode::Wide: {
                // Destination is double-width.
                if (isSigned(t)) {
                    const int64_t p = asS64(t, a) * asS64(t, b);
                    prod = makeInt(t == Type::S32 ? Type::S64 : Type::S32,
                                   uint64_t(p));
                } else {
                    const uint64_t p = asU64(t, a) * asU64(t, b);
                    prod = makeInt(t == Type::U32 ? Type::U64 : Type::U32, p);
                }
                break;
              }
              case MulMode::Hi: {
                if (bitWidth(t) == 32) {
                    if (isSigned(t)) {
                        const int64_t p = asS64(t, a) * asS64(t, b);
                        prod = makeInt(t, uint64_t(p >> 32));
                    } else {
                        const uint64_t p = asU64(t, a) * asU64(t, b);
                        prod = makeInt(t, p >> 32);
                    }
                } else {
                    const uint64_t p =
                        uint64_t((__uint128_t(asU64(t, a)) * asU64(t, b)) >> 64);
                    prod = makeInt(t, p);
                }
                break;
              }
              default:
                prod = makeInt(t, asU64(t, a) * asU64(t, b));
                break;
            }
        }
        if (ins.op == Op::Mul)
            return prod;
        // mad: accumulate in the product's (possibly widened) type.
        if (isFloat(t))
            return makeF(t, asF(t, prod) + asF(t, c));
        const Type acc_t = (ins.mul_mode == MulMode::Wide)
                               ? (bitWidth(t) == 32
                                      ? (isSigned(t) ? Type::S64 : Type::U64)
                                      : (isSigned(t) ? Type::S32 : Type::U32))
                               : t;
        return makeInt(acc_t, asU64(acc_t, prod) + asU64(acc_t, c));
      }
      case Op::Fma: {
        if (t == Type::F64) {
            return makeF(t, bugs_.split_fma ? a.f64 * b.f64 + c.f64
                                            : std::fma(a.f64, b.f64, c.f64));
        }
        const float fa = float(asF(t, a)), fb = float(asF(t, b)),
                    fc = float(asF(t, c));
        const float r = bugs_.split_fma ? fa * fb + fc : std::fmaf(fa, fb, fc);
        return makeF(t, r);
      }
      case Op::Div:
        if (isFloat(t))
            return makeF(t, asF(t, a) / asF(t, b));
        if (isSigned(t)) {
            const int64_t sa = asS64(t, a), sb = asS64(t, b);
            if (sb == 0)
                return makeInt(t, ~0ull);
            if (sa == INT64_MIN && sb == -1)
                return makeInt(t, uint64_t(sa));
            return makeInt(t, uint64_t(sa / sb));
        } else {
            const uint64_t ua = asU64(t, a), ub = asU64(t, b);
            return makeInt(t, ub == 0 ? ~0ull : ua / ub);
        }
      case Op::Rem: {
        if (bugs_.legacy_rem) {
            // The original GPGPU-Sim rem_impl the paper fixed:
            //   data.u64 = src1_data.u64 % src2_data.u64;
            // ignoring both signedness and operand width.
            RegVal d;
            d.u64 = b.u64 == 0 ? a.u64 : a.u64 % b.u64;
            return d;
        }
        if (isSigned(t)) {
            const int64_t sa = asS64(t, a), sb = asS64(t, b);
            if (sb == 0)
                return makeInt(t, uint64_t(sa));
            if (sa == INT64_MIN && sb == -1)
                return makeInt(t, 0);
            return makeInt(t, uint64_t(sa % sb));
        } else {
            const uint64_t ua = asU64(t, a), ub = asU64(t, b);
            return makeInt(t, ub == 0 ? ua : ua % ub);
        }
      }
      case Op::Abs:
        if (isFloat(t))
            return makeF(t, std::fabs(asF(t, a)));
        return makeInt(t, uint64_t(std::llabs(asS64(t, a))));
      case Op::Neg:
        if (isFloat(t))
            return makeF(t, -asF(t, a));
        return makeInt(t, uint64_t(-asS64(t, a)));
      case Op::Min:
        if (isFloat(t))
            return makeF(t, fminDet(asF(t, a), asF(t, b)));
        if (isSigned(t))
            return makeInt(t, uint64_t(std::min(asS64(t, a), asS64(t, b))));
        return makeInt(t, std::min(asU64(t, a), asU64(t, b)));
      case Op::Max:
        if (isFloat(t))
            return makeF(t, fmaxDet(asF(t, a), asF(t, b)));
        if (isSigned(t))
            return makeInt(t, uint64_t(std::max(asS64(t, a), asS64(t, b))));
        return makeInt(t, std::max(asU64(t, a), asU64(t, b)));
      case Op::And:
        return makeInt(t, asU64(t, a) & asU64(t, b));
      case Op::Or:
        return makeInt(t, asU64(t, a) | asU64(t, b));
      case Op::Xor:
        return makeInt(t, asU64(t, a) ^ asU64(t, b));
      case Op::Not:
        return makeInt(t, ~asU64(t, a));
      case Op::Shl: {
        const unsigned w = bitWidth(t);
        const uint32_t s = b.u32;
        return makeInt(t, s >= w ? 0 : asU64(t, a) << s);
      }
      case Op::Shr: {
        const unsigned w = bitWidth(t);
        const uint32_t s = b.u32;
        if (isSigned(t)) {
            const int64_t sa = asS64(t, a);
            return makeInt(t, uint64_t(sa >> std::min(s, w - 1)));
        }
        return makeInt(t, s >= w ? 0 : asU64(t, a) >> s);
      }
      case Op::Brev: {
        const unsigned w = bitWidth(t);
        const uint64_t x = asU64(t, a);
        uint64_t r = 0;
        for (unsigned i = 0; i < w; i++)
            if ((x >> i) & 1)
                r |= 1ull << (w - 1 - i);
        return makeInt(t, r);
      }
      case Op::Bfe: {
        const unsigned w = bitWidth(t);
        const uint64_t x = asU64(t, a);
        const uint32_t pos = b.u32 & 0xff;
        const uint32_t len = c.u32 & 0xff;
        if (len == 0)
            return makeInt(t, 0);
        uint64_t field;
        if (pos >= w)
            field = 0;
        else
            field = x >> pos;
        const uint64_t mask = len >= 64 ? ~0ull : ((1ull << len) - 1);
        field &= mask;
        if (isSigned(t) && !bugs_.legacy_bfe) {
            // Sign bit is the msb of the extracted field (or of the source
            // when the field extends past it).
            const uint32_t sb = std::min(pos + len - 1, w - 1);
            if ((x >> sb) & 1)
                field |= ~mask;
        }
        // legacy_bfe: the pre-fix behaviour — no sign extension at all.
        return makeInt(t, field);
      }
      case Op::Popc:
        return makeInt(Type::U32, uint64_t(__builtin_popcountll(asU64(
                                      ins.stype == Type::None ? t : t, a))));
      case Op::Clz: {
        const unsigned w = bitWidth(t);
        const uint64_t x = asU64(t, a);
        unsigned n = 0;
        for (int i = int(w) - 1; i >= 0 && !((x >> i) & 1); i--)
            n++;
        return makeInt(Type::U32, n);
      }
      case Op::Rcp:
        return makeF(t, 1.0 / asF(t, a));
      case Op::Sqrt:
        return makeF(t, std::sqrt(asF(t, a)));
      case Op::Rsqrt:
        return makeF(t, 1.0 / std::sqrt(asF(t, a)));
      case Op::Sin:
        return makeF(t, std::sin(asF(t, a)));
      case Op::Cos:
        return makeF(t, std::cos(asF(t, a)));
      case Op::Ex2:
        return makeF(t, std::exp2(asF(t, a)));
      case Op::Lg2:
        return makeF(t, std::log2(asF(t, a)));
      default:
        panic("execAlu: unhandled op ", ptx::opName(ins.op));
    }
}

namespace
{

/** Index of an in-flight instruction within its kernel (race reporting). */
uint32_t
instrPc(const Instr &ins, const LaunchEnv &env)
{
    return uint32_t(&ins - env.kernel->instrs.data());
}

} // namespace

void
Interpreter::execLane(const Instr &ins, CtaExec &cta, unsigned tid, unsigned lane,
                      const LaunchEnv &env, WarpStepResult &res)
{
    (void)lane;
    ThreadState &th = cta.thread(tid);

    auto src = [&](size_t i) {
        return readOperand(ins, ins.ops[i], cta, tid, env);
    };
    auto writeDst = [&](Type t, const RegVal &v) {
        MLGS_ASSERT(ins.ops[0].kind == Operand::Kind::Reg,
                    "destination must be a register: ", ins.text);
        writeTyped(th.regs[size_t(ins.ops[0].reg)], t, v);
    };

    switch (ins.op) {
      case Op::Mov: {
        if (ins.type == Type::Pred) {
            RegVal v = src(1);
            writeDst(Type::Pred, v);
            return;
        }
        writeDst(ins.type, src(1));
        return;
      }
      case Op::Cvta:
        writeDst(ins.type, src(1));
        return;
      case Op::Cvt: {
        const Type dt = ins.type;
        const Type st = ins.stype == Type::None ? dt : ins.stype;
        const RegVal a = src(1);
        RegVal out;
        if (isFloat(st) && isFloat(dt)) {
            out = makeF(dt, asF(st, a));
        } else if (isFloat(st)) {
            // float -> int, saturating; default rounding truncates (rzi);
            // .rni rounds to nearest even.
            double x = asF(st, a);
            if (ins.cvt_round == ptx::CvtRound::Nearest)
                x = std::nearbyint(x);
            else
                x = std::trunc(x);
            if (isSigned(dt))
                out = makeInt(dt, uint64_t(clampToSigned(x, bitWidth(dt))));
            else
                out = makeInt(dt, clampToUnsigned(x, bitWidth(dt)));
        } else if (isFloat(dt)) {
            if (isSigned(st))
                out = makeF(dt, double(asS64(st, a)));
            else
                out = makeF(dt, double(asU64(st, a)));
        } else {
            // int -> int: read as source type (sign-extends), write as dest.
            if (isSigned(st))
                out = makeInt(dt, uint64_t(asS64(st, a)));
            else
                out = makeInt(dt, asU64(st, a));
        }
        writeDst(dt, out);
        return;
      }
      case Op::Setp: {
        const Type t = ins.stype == Type::None ? ins.type : ins.type;
        const RegVal a = src(1), b = src(2);
        bool r = false;
        if (isFloat(t)) {
            const double fa = asF(t, a), fb = asF(t, b);
            switch (ins.cmp) {
              case CmpOp::Eq: r = fa == fb; break;
              case CmpOp::Ne: r = fa != fb; break;
              case CmpOp::Lt: r = fa < fb; break;
              case CmpOp::Le: r = fa <= fb; break;
              case CmpOp::Gt: r = fa > fb; break;
              case CmpOp::Ge: r = fa >= fb; break;
              default: fatal("unsigned compare on float type: ", ins.text);
            }
        } else if (ins.cmp == CmpOp::Lo || ins.cmp == CmpOp::Ls ||
                   ins.cmp == CmpOp::Hi || ins.cmp == CmpOp::Hs) {
            const uint64_t ua = asU64(t, a), ub = asU64(t, b);
            switch (ins.cmp) {
              case CmpOp::Lo: r = ua < ub; break;
              case CmpOp::Ls: r = ua <= ub; break;
              case CmpOp::Hi: r = ua > ub; break;
              default: r = ua >= ub; break;
            }
        } else if (isSigned(t)) {
            const int64_t sa = asS64(t, a), sb = asS64(t, b);
            switch (ins.cmp) {
              case CmpOp::Eq: r = sa == sb; break;
              case CmpOp::Ne: r = sa != sb; break;
              case CmpOp::Lt: r = sa < sb; break;
              case CmpOp::Le: r = sa <= sb; break;
              case CmpOp::Gt: r = sa > sb; break;
              case CmpOp::Ge: r = sa >= sb; break;
              default: break;
            }
        } else {
            const uint64_t ua = asU64(t, a), ub = asU64(t, b);
            switch (ins.cmp) {
              case CmpOp::Eq: r = ua == ub; break;
              case CmpOp::Ne: r = ua != ub; break;
              case CmpOp::Lt: r = ua < ub; break;
              case CmpOp::Le: r = ua <= ub; break;
              case CmpOp::Gt: r = ua > ub; break;
              case CmpOp::Ge: r = ua >= ub; break;
              default: break;
            }
        }
        RegVal v;
        v.pred = r;
        writeDst(Type::Pred, v);
        return;
      }
      case Op::Selp: {
        const RegVal a = src(1), b = src(2), p = src(3);
        writeDst(ins.type, p.pred ? a : b);
        return;
      }
      case Op::Bfi: {
        // bfi.b32/b64 d, a, b, pos, len : insert a into b.
        const uint64_t ia = asU64(ins.type, src(1));
        const uint64_t ib = asU64(ins.type, src(2));
        const uint32_t pos = src(3).u32 & 0xff;
        const uint32_t len = src(4).u32 & 0xff;
        const unsigned w = bitWidth(ins.type);
        uint64_t out = ib;
        if (len > 0 && pos < w) {
            const uint64_t mask =
                (len >= 64 ? ~0ull : ((1ull << len) - 1)) << pos;
            out = (ib & ~mask) | ((ia << pos) & mask);
        }
        writeDst(ins.type, makeInt(ins.type, out));
        return;
      }
      case Op::Ld: {
        const Ea ea = resolveAddr(ins, ins.ops[1], cta, tid, env);
        RegVal vals[4];
        loadTyped(ea, ins.type, ins.vec_width, vals, cta, tid, env);
        if (ins.vec_width == 1) {
            writeDst(ins.type, vals[0]);
        } else {
            const auto &vec = ins.ops[0].vec;
            MLGS_ASSERT(vec.size() == ins.vec_width, "vector width mismatch");
            for (unsigned i = 0; i < ins.vec_width; i++)
                writeTyped(th.regs[size_t(vec[i])], ins.type, vals[i]);
        }
        if (ea.space == Space::Global || ea.space == Space::Const ||
            ea.space == Space::Local) {
            res.accesses.push_back(MemAccess{
                ea.addr, ins.vec_width * ptx::typeSize(ins.type), false, false,
                ea.space});
        } else if (ea.space == Space::Shared) {
            res.shared_accesses++;
            if (RaceShadow *rs = cta.raceShadow())
                rs->onAccess(size_t(ea.addr - kSharedBase),
                             size_t(ins.vec_width) * ptx::typeSize(ins.type),
                             tid, instrPc(ins, env), ins.line, false);
        }
        return;
      }
      case Op::St: {
        const Ea ea = resolveAddr(ins, ins.ops[0], cta, tid, env);
        RegVal vals[4];
        if (ins.vec_width == 1) {
            vals[0] = readOperand(ins, ins.ops[1], cta, tid, env);
        } else {
            const auto &vec = ins.ops[1].vec;
            MLGS_ASSERT(vec.size() == ins.vec_width, "vector width mismatch");
            for (unsigned i = 0; i < ins.vec_width; i++)
                vals[i] = th.regs[size_t(vec[i])];
        }
        storeTyped(ea, ins.type, ins.vec_width, vals, cta, tid, env);
        if (ea.space == Space::Global || ea.space == Space::Const ||
            ea.space == Space::Local) {
            res.accesses.push_back(MemAccess{
                ea.addr, ins.vec_width * ptx::typeSize(ins.type), true, false,
                ea.space});
        } else if (ea.space == Space::Shared) {
            res.shared_accesses++;
            if (RaceShadow *rs = cta.raceShadow())
                rs->onAccess(size_t(ea.addr - kSharedBase),
                             size_t(ins.vec_width) * ptx::typeSize(ins.type),
                             tid, instrPc(ins, env), ins.line, true);
        }
        return;
      }
      case Op::Atom:
      case Op::Red: {
        const bool has_dst = ins.op == Op::Atom;
        const size_t addr_idx = has_dst ? 1 : 0;
        const Ea ea = resolveAddr(ins, ins.ops[addr_idx], cta, tid, env);
        RegVal old;
        loadTyped(ea, ins.type, 1, &old, cta, tid, env);
        const RegVal b = readOperand(ins, ins.ops[addr_idx + 1], cta, tid, env);
        RegVal next;
        switch (ins.atom_op) {
          case AtomOp::Add:
            if (isFloat(ins.type))
                next = makeF(ins.type, asF(ins.type, old) + asF(ins.type, b));
            else
                next = makeInt(ins.type,
                               asU64(ins.type, old) + asU64(ins.type, b));
            break;
          case AtomOp::Min:
            if (isSigned(ins.type))
                next = makeInt(ins.type, uint64_t(std::min(
                                             asS64(ins.type, old),
                                             asS64(ins.type, b))));
            else
                next = makeInt(ins.type, std::min(asU64(ins.type, old),
                                                  asU64(ins.type, b)));
            break;
          case AtomOp::Max:
            if (isSigned(ins.type))
                next = makeInt(ins.type, uint64_t(std::max(
                                             asS64(ins.type, old),
                                             asS64(ins.type, b))));
            else
                next = makeInt(ins.type, std::max(asU64(ins.type, old),
                                                  asU64(ins.type, b)));
            break;
          case AtomOp::Exch:
            next = b;
            break;
          case AtomOp::Cas: {
            const RegVal swap =
                readOperand(ins, ins.ops[addr_idx + 2], cta, tid, env);
            next = (asU64(ins.type, old) == asU64(ins.type, b)) ? swap : old;
            break;
          }
          case AtomOp::And:
            next = makeInt(ins.type, asU64(ins.type, old) & asU64(ins.type, b));
            break;
          case AtomOp::Or:
            next = makeInt(ins.type, asU64(ins.type, old) | asU64(ins.type, b));
            break;
          case AtomOp::Inc: {
            const uint64_t uo = asU64(ins.type, old);
            next = makeInt(ins.type, uo >= asU64(ins.type, b) ? 0 : uo + 1);
            break;
          }
          default:
            panic("unhandled atomic op");
        }
        storeTyped(ea, ins.type, 1, &next, cta, tid, env);
        if (has_dst)
            writeDst(ins.type, old);
        if (ea.space == Space::Shared) {
            res.shared_accesses++;
        } else {
            res.accesses.push_back(MemAccess{ea.addr, ptx::typeSize(ins.type),
                                             true, true, ea.space});
        }
        return;
      }
      case Op::Tex: {
        MLGS_REQUIRE(env.textures, "texture instruction without texture table");
        const Operand &taddr = ins.ops[1];
        const TexBinding *bind = env.textures->lookupTexture(taddr.sym);
        MLGS_REQUIRE(bind, "texture '", taddr.sym,
                     "' is not bound to an array (lost binding)");
        // Coordinates.
        int64_t xi = 0, yi = 0;
        const Type ct = ins.stype;
        MLGS_ASSERT(!taddr.vec.empty(), "tex without coordinates");
        auto coordToInt = [&](int reg_id) -> int64_t {
            const RegVal &cv = th.regs[size_t(reg_id)];
            if (isFloat(ct))
                return int64_t(std::floor(asF(ct, cv)));
            return asS64(ct, cv);
        };
        xi = coordToInt(taddr.vec[0]);
        if (ins.tex_dim >= 2 && taddr.vec.size() >= 2)
            yi = coordToInt(taddr.vec[1]);
        auto wrap = [&](int64_t v, int64_t n) -> int64_t {
            if (n <= 0)
                return 0;
            switch (bind->address_mode) {
              case TexAddressMode::Wrap: {
                int64_t m = v % n;
                return m < 0 ? m + n : m;
              }
              case TexAddressMode::Border:
                return (v < 0 || v >= n) ? -1 : v;
              default:
                return std::min(std::max<int64_t>(v, 0), n - 1);
            }
        };
        const int64_t x = wrap(xi, int64_t(bind->width));
        const int64_t y = ins.tex_dim >= 2 ? wrap(yi, int64_t(bind->height)) : 0;
        float texel[4] = {0, 0, 0, 0};
        if (x >= 0 && y >= 0) {
            const addr_t base =
                bind->base +
                (addr_t(y) * bind->width + addr_t(x)) * bind->channels * 4;
            for (unsigned ch = 0; ch < bind->channels && ch < 4; ch++)
                texel[ch] = mem_->load<float>(base + ch * 4);
            res.accesses.push_back(MemAccess{base, bind->channels * 4, false,
                                             false, Space::Tex});
        }
        // Destination: vector (v4) or scalar register.
        if (ins.ops[0].kind == Operand::Kind::Vec) {
            const auto &vec = ins.ops[0].vec;
            for (size_t i = 0; i < vec.size(); i++) {
                RegVal v;
                v.f32 = texel[i];
                writeTyped(th.regs[size_t(vec[i])], Type::F32, v);
            }
        } else {
            RegVal v;
            v.f32 = texel[0];
            writeDst(Type::F32, v);
        }
        return;
      }
      default: {
        // Plain ALU instruction: d, a [, b [, c]]
        const size_t n = ins.ops.size();
        MLGS_ASSERT(n >= 2, "ALU instruction needs operands: ", ins.text);
        const RegVal a = src(1);
        const RegVal b = n > 2 ? src(2) : RegVal{};
        const RegVal c = n > 3 ? src(3) : RegVal{};
        RegVal out = execAlu(ins, a, b, c);
        // mul.wide / mad.wide write a double-width destination.
        Type dt = ins.type;
        if ((ins.op == Op::Mul || ins.op == Op::Mad) &&
            ins.mul_mode == MulMode::Wide) {
            switch (ins.type) {
              case Type::U32: dt = Type::U64; break;
              case Type::S32: dt = Type::S64; break;
              case Type::U16: dt = Type::U32; break;
              case Type::S16: dt = Type::S32; break;
              default: break;
            }
        }
        if (ins.op == Op::Popc || ins.op == Op::Clz)
            dt = Type::U32;
        writeDst(dt, out);
        return;
      }
    }
}

WarpStepResult
Interpreter::stepWarp(CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    if (replay_streams_)
        return replayStep(cta, warp, env);
    WarpStepResult res = stepWarpExec(cta, warp, env);
    if (record_streams_)
        record_streams_->append(env.launch_seq, cta, warp, res);
    return res;
}

WarpStepResult
Interpreter::replayStep(CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    const WarpStream &ws = replay_streams_->stream(env.launch_seq, cta, warp);
    const uint64_t idx = cta.warpInstrCount(warp);
    MLGS_REQUIRE(idx < ws.steps.size(),
                 "warp stream replay: stream exhausted at step ", idx,
                 " in ", env.kernel->name,
                 " (recorded run executed fewer instructions?)");
    const WarpStreamStep &s = ws.steps[idx];
    SimtStack &st = cta.stack(warp);
    MLGS_ASSERT(st.pc() == s.pc, "warp stream replay diverged: at pc ",
                st.pc(), ", recorded pc ", s.pc, " in ", env.kernel->name);

    WarpStepResult res;
    res.ins = &env.kernel->instrs[s.pc];
    res.pc = s.pc;
    res.active = s.active;
    res.shared_accesses = s.shared_accesses;
    res.barrier = s.barrier;
    res.exited = s.exited;
    res.accesses.assign(ws.accesses.begin() + s.first_access,
                        ws.accesses.begin() + s.first_access + s.num_accesses);

    cta.warpInstrCount(warp)++;
    auto &entries = st.entries();
    if (s.exited) {
        entries.clear();
    } else {
        // The scheduler inspects the warp's next pc before issue (scoreboard
        // checks); collapse the stack to one entry holding the recorded
        // successor pc — divergence was already resolved at record time.
        MLGS_REQUIRE(idx + 1 < ws.steps.size(),
                     "warp stream replay: truncated stream in ",
                     env.kernel->name);
        entries.assign(
            1, SimtStack::Entry{ws.steps[idx + 1].pc, ptx::kReconvExit,
                                s.active ? s.active : warp_mask_t(1)});
        if (s.barrier)
            cta.setWarpAtBarrier(warp);
    }
    return res;
}

WarpStepResult
Interpreter::stepWarpExec(CtaExec &cta, unsigned warp, const LaunchEnv &env)
{
    SimtStack &st = cta.stack(warp);
    MLGS_ASSERT(!st.empty(), "stepWarp on a finished warp");
    MLGS_ASSERT(!cta.warpAtBarrier(warp), "stepWarp on a warp at a barrier");

    const ptx::KernelDef &k = *env.kernel;
    const uint32_t pc = st.pc();
    MLGS_ASSERT(pc < k.instrs.size(), "pc out of range in ", k.name);
    const Instr &ins = k.instrs[pc];
    const warp_mask_t mask = st.activeMask();

    warp_mask_t exec = mask;
    if (ins.pred >= 0) {
        exec = 0;
        for (unsigned lane = 0; lane < kWarpSize; lane++) {
            if (!((mask >> lane) & 1))
                continue;
            const unsigned tid = warp * kWarpSize + lane;
            const bool p = cta.thread(tid).regs[size_t(ins.pred)].pred;
            if (p != ins.pred_neg)
                exec |= warp_mask_t(1) << lane;
        }
    }

    WarpStepResult res;
    res.ins = &ins;
    res.pc = pc;
    res.active = exec;
    cta.warpInstrCount(warp)++;
    if (coverage_)
        coverage_->hit(ins.variant_id);

    if (ins.op == Op::Bra) {
        st.branch(exec, ins.target_pc, pc + 1, ins.reconv_pc);
        return res;
    }
    if (ins.isExit()) {
        st.exitLanes(exec);
        if (exec != mask && !st.empty())
            st.advance();
        res.exited = st.empty();
        return res;
    }
    if (ins.op == Op::Bar) {
        MLGS_REQUIRE(st.entries().size() == 1,
                     "bar.sync inside divergent control flow in ", k.name);
        cta.setWarpAtBarrier(warp);
        st.advance();
        res.barrier = true;
        return res;
    }
    if (ins.op == Op::Membar) {
        st.advance();
        return res;
    }

    for (unsigned lane = 0; lane < kWarpSize; lane++) {
        if (!((exec >> lane) & 1))
            continue;
        const unsigned tid = warp * kWarpSize + lane;
        execLane(ins, cta, tid, lane, env, res);
    }
    st.advance();
    return res;
}

} // namespace mlgs::func
