/**
 * @file
 * Dynamic shared-memory race detection for the functional interpreter: the
 * run-time confirmation side of the static verifier's shared-race check.
 *
 * Each CTA carries per-byte shadow state over its shared segment recording
 * the last writer and last reader (thread id, source line, phase). The
 * phase counter advances whenever the CTA's barrier releases, so conflicts
 * are only flagged between accesses in the same barrier-delimited phase —
 * exactly the warp-epoch partitioning the static analysis reasons about.
 * Atomics are excluded (they serialize by definition). The shadow is
 * passive: it never alters simulated state, so enabling it is bitwise
 * neutral on simulation results.
 */
#ifndef MLGS_FUNC_RACE_CHECK_H
#define MLGS_FUNC_RACE_CHECK_H

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace mlgs::func
{

/** One confirmed same-phase conflict on a shared-memory byte. */
struct RaceRecord
{
    int line_a = 0;      ///< source line of the earlier access
    int line_b = 0;      ///< source line of the later access
    uint32_t pc_a = 0;
    uint32_t pc_b = 0;
    unsigned tid_a = 0;
    unsigned tid_b = 0;
    uint32_t offset = 0; ///< first conflicting byte offset in shared memory
    bool a_is_write = false;
    bool b_is_write = false;
    uint32_t phase = 0;
};

/** Per-CTA shadow state; owned by CtaExec when race checking is enabled. */
class RaceShadow
{
  public:
    explicit RaceShadow(size_t shared_bytes) : bytes_(shared_bytes) {}

    /** Call when the CTA's barrier releases: starts a new phase. */
    void advancePhase() { phase_++; }

    uint32_t phase() const { return phase_; }

    void
    onAccess(size_t off, size_t len, unsigned tid, uint32_t pc, int line,
             bool is_write)
    {
        if (off >= bytes_.size())
            return;
        len = std::min(len, bytes_.size() - off);
        for (size_t i = off; i < off + len; i++) {
            ByteState &b = bytes_[i];
            if (is_write) {
                if (b.w_phase == phase_ && b.w_tid >= 0 &&
                    unsigned(b.w_tid) != tid)
                    record(b.w_pc, b.w_line, unsigned(b.w_tid), true, pc,
                           line, tid, true, uint32_t(i));
                if (b.r_phase == phase_ && b.r_tid >= 0 &&
                    unsigned(b.r_tid) != tid)
                    record(b.r_pc, b.r_line, unsigned(b.r_tid), false, pc,
                           line, tid, true, uint32_t(i));
                b.w_phase = phase_;
                b.w_pc = pc;
                b.w_line = line;
                b.w_tid = int32_t(tid);
            } else {
                if (b.w_phase == phase_ && b.w_tid >= 0 &&
                    unsigned(b.w_tid) != tid)
                    record(b.w_pc, b.w_line, unsigned(b.w_tid), true, pc,
                           line, tid, false, uint32_t(i));
                b.r_phase = phase_;
                b.r_pc = pc;
                b.r_line = line;
                b.r_tid = int32_t(tid);
            }
        }
    }

    const std::vector<RaceRecord> &races() const { return races_; }

  private:
    struct ByteState
    {
        uint32_t w_phase = ~0u;
        uint32_t r_phase = ~0u;
        uint32_t w_pc = 0;
        uint32_t r_pc = 0;
        int32_t w_line = 0;
        int32_t r_line = 0;
        int32_t w_tid = -1;
        int32_t r_tid = -1;
    };

    void
    record(uint32_t pc_a, int line_a, unsigned tid_a, bool a_w, uint32_t pc_b,
           int line_b, unsigned tid_b, bool b_w, uint32_t off)
    {
        // One report per (pc, pc, kind) pair keeps a byte-granular scan
        // from flooding the log with one record per overlapping byte.
        const uint64_t key = (uint64_t(pc_a) << 34) | (uint64_t(pc_b) << 4) |
                             (uint64_t(a_w) << 1) | uint64_t(b_w);
        if (!seen_.insert(key).second || races_.size() >= kMaxRecords)
            return;
        RaceRecord r;
        r.pc_a = pc_a;
        r.line_a = line_a;
        r.tid_a = tid_a;
        r.a_is_write = a_w;
        r.pc_b = pc_b;
        r.line_b = line_b;
        r.tid_b = tid_b;
        r.b_is_write = b_w;
        r.offset = off;
        r.phase = phase_;
        races_.push_back(r);
    }

    static constexpr size_t kMaxRecords = 64;

    std::vector<ByteState> bytes_;
    std::vector<RaceRecord> races_;
    std::unordered_set<uint64_t> seen_;
    uint32_t phase_ = 0;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_RACE_CHECK_H
