/**
 * @file
 * Functional state of one in-flight CTA: per-thread registers and local
 * memory, per-warp SIMT stacks and barrier status, and the CTA's shared
 * memory segment. This is exactly the "Data1" set the paper checkpoints.
 */
#ifndef MLGS_FUNC_CTA_EXEC_H
#define MLGS_FUNC_CTA_EXEC_H

#include <memory>
#include <vector>

#include "common/types.h"
#include "func/race_check.h"
#include "func/simt_stack.h"
#include "ptx/ir.h"

namespace mlgs::ptx
{
struct UopProgram;
}

namespace mlgs::func
{

/** Per-thread architectural state. */
struct ThreadState
{
    std::vector<ptx::RegVal> regs;
    std::vector<uint8_t> local; ///< .local scratch
};

/** Functional state of one CTA. */
class CtaExec
{
  public:
    /**
     * @param alloc_state allocate per-thread registers/local and shared
     * memory. Warp-stream replay (trace-driven timing) passes false: it
     * never reads or writes functional state, only the SIMT stacks, barrier
     * flags, and instruction counters.
     */
    CtaExec(const ptx::KernelDef &kernel, const Dim3 &grid_dim,
            const Dim3 &block_dim, const Dim3 &cta_id,
            bool alloc_state = true);

    const ptx::KernelDef &kernel() const { return *kernel_; }
    const Dim3 &gridDim() const { return grid_dim_; }
    const Dim3 &blockDim() const { return block_dim_; }
    const Dim3 &ctaId() const { return cta_id_; }

    unsigned numThreads() const { return num_threads_; }
    unsigned numWarps() const { return num_warps_; }

    ThreadState &thread(unsigned tid) { return threads_[tid]; }
    const ThreadState &thread(unsigned tid) const { return threads_[tid]; }

    SimtStack &stack(unsigned warp) { return stacks_[warp]; }
    const SimtStack &stack(unsigned warp) const { return stacks_[warp]; }

    std::vector<uint8_t> &shared() { return shared_; }
    const std::vector<uint8_t> &shared() const { return shared_; }

    /** 3D thread index of a linear thread id. */
    Dim3 threadIdx3(unsigned tid) const { return unflatten(tid, block_dim_); }

    bool warpDone(unsigned warp) const { return stacks_[warp].empty(); }

    bool
    allDone() const
    {
        for (unsigned w = 0; w < num_warps_; w++)
            if (!warpDone(w))
                return false;
        return true;
    }

    // ---- barrier bookkeeping ----

    bool warpAtBarrier(unsigned warp) const { return at_barrier_[warp]; }
    void setWarpAtBarrier(unsigned warp) { at_barrier_[warp] = true; }

    /** True when every unfinished warp has arrived at the barrier. */
    bool
    barrierComplete() const
    {
        bool any = false;
        for (unsigned w = 0; w < num_warps_; w++) {
            if (warpDone(w))
                continue;
            if (!at_barrier_[w])
                return false;
            any = true;
        }
        return any;
    }

    void
    releaseBarrier()
    {
        for (unsigned w = 0; w < num_warps_; w++)
            at_barrier_[w] = false;
        if (race_)
            race_->advancePhase();
    }

    // ---- dynamic race checking (functional mode, ContextOptions) ----

    /** Allocate the per-byte shared-memory shadow (idempotent). */
    void
    enableRaceCheck()
    {
        if (!race_ && !shared_.empty())
            race_ = std::make_unique<RaceShadow>(shared_.size());
    }

    /** Shadow state, or nullptr when race checking is off. */
    RaceShadow *raceShadow() { return race_.get(); }
    const RaceShadow *raceShadow() const { return race_.get(); }

    /** Per-warp dynamic instruction counters (checkpointing, stats). */
    uint64_t &warpInstrCount(unsigned warp) { return instr_count_[warp]; }
    uint64_t warpInstrCount(unsigned warp) const { return instr_count_[warp]; }

    uint64_t
    totalInstrCount() const
    {
        uint64_t sum = 0;
        for (const auto c : instr_count_)
            sum += c;
        return sum;
    }

    /** Direct access to barrier flags for checkpoint restore. */
    std::vector<uint8_t> &barrierFlags() { return at_barrier_; }
    std::vector<uint64_t> &instrCounts() { return instr_count_; }

    // ---- compiled-backend program cache ----

    /**
     * Lowered micro-op program resolved for this CTA (compiled backend
     * only). A CTA is stepped by a single thread, so caching the pointer
     * here avoids the kernel cache's mutex on every warp step. The program
     * lives in the kernel's UopCache and outlives the CTA.
     */
    const ptx::UopProgram *uopProgram() const { return uops_; }
    void setUopProgram(const ptx::UopProgram *p) { uops_ = p; }

  private:
    const ptx::KernelDef *kernel_;
    Dim3 grid_dim_;
    Dim3 block_dim_;
    Dim3 cta_id_;
    unsigned num_threads_;
    unsigned num_warps_;

    std::vector<ThreadState> threads_;
    std::vector<SimtStack> stacks_;
    std::vector<uint8_t> shared_;
    std::vector<uint8_t> at_barrier_;
    std::vector<uint64_t> instr_count_;
    std::unique_ptr<RaceShadow> race_;
    const ptx::UopProgram *uops_ = nullptr;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_CTA_EXEC_H
