#include "func/engine.h"

#include "func/compiled/exec.h"

namespace mlgs::func
{

using ptx::Op;
using ptx::Type;

void
FuncStats::accumulate(const WarpStepResult &res)
{
    instructions++;
    const unsigned lanes = unsigned(__builtin_popcount(res.active));
    thread_instructions += lanes;

    const ptx::Instr &ins = *res.ins;
    switch (ins.op) {
      case Op::Sin: case Op::Cos: case Op::Ex2: case Op::Lg2:
      case Op::Rcp: case Op::Rsqrt: case Op::Sqrt:
        sfu++;
        break;
      case Op::Div:
        if (isFloat(ins.type))
            sfu++;
        else
            alu++;
        break;
      case Op::Ld: case Op::St: case Op::Atom: case Op::Red: case Op::Tex:
        mem++;
        break;
      default:
        alu++;
        break;
    }

    if (isFloat(ins.type)) {
        switch (ins.op) {
          case Op::Fma: case Op::Mad:
            flops += 2ull * lanes;
            break;
          case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
          case Op::Min: case Op::Max: case Op::Abs: case Op::Neg:
          case Op::Sqrt: case Op::Rsqrt: case Op::Rcp: case Op::Sin:
          case Op::Cos: case Op::Ex2: case Op::Lg2:
            flops += lanes;
            break;
          default:
            break;
        }
    }

    for (const auto &acc : res.accesses) {
        if (acc.space == ptx::Space::Global || acc.space == ptx::Space::Const ||
            acc.space == ptx::Space::Tex) {
            if (acc.is_store)
                global_st_bytes += acc.size;
            else
                global_ld_bytes += acc.size;
        }
        if (acc.is_atomic)
            atomics++;
    }
    shared_accesses += res.shared_accesses;
}

std::unique_ptr<CtaExec>
FunctionalEngine::makeCta(const LaunchEnv &env, const Dim3 &grid,
                          const Dim3 &block, uint64_t linear_cta) const
{
    MLGS_REQUIRE(linear_cta < grid.count(), "CTA index out of range");
    const Dim3 cta_id = unflatten(linear_cta, grid);
    return std::make_unique<CtaExec>(*env.kernel, grid, block, cta_id);
}

bool
FunctionalEngine::runCta(CtaExec &cta, const LaunchEnv &env,
                         uint64_t max_instr_per_warp, FuncStats *stats)
{
    return runCtaWith(*interp_, cta, env, max_instr_per_warp, stats);
}

bool
FunctionalEngine::runCtaWith(Interpreter &interp, CtaExec &cta,
                             const LaunchEnv &env, uint64_t max_instr_per_warp,
                             FuncStats *stats)
{
    if (interp.raceCheck())
        cta.enableRaceCheck();
    // The compiled backend runs warps in batches (whole basic-block spans per
    // dispatch) unless a warp-stream cache needs per-step granularity.
    const bool batch =
        interp.execMode() == ExecMode::Compiled && !interp.warpStreamActive();
    while (true) {
        if (cta.allDone()) {
            if (const RaceShadow *rs = cta.raceShadow()) {
                for (const RaceRecord &r : rs->races())
                    warn("shared-memory race in kernel '", env.kernel->name,
                         "' cta (", cta.ctaId().x, ",", cta.ctaId().y, ",",
                         cta.ctaId().z, "): ",
                         r.a_is_write ? "store" : "load", " at line ",
                         r.line_a, " (thread ", r.tid_a, ") vs ",
                         r.b_is_write ? "store" : "load", " at line ",
                         r.line_b, " (thread ", r.tid_b, ") on shared byte ",
                         r.offset, " in barrier phase ", r.phase);
                if (stats)
                    stats->shared_races += rs->races().size();
            }
            return true;
        }

        bool progressed = false;
        for (unsigned w = 0; w < cta.numWarps(); w++) {
            if (batch) {
                const uint64_t before = cta.warpInstrCount(w);
                compiled::runWarp(interp, cta, w, env, max_instr_per_warp,
                                  stats);
                progressed |= cta.warpInstrCount(w) != before;
                continue;
            }
            while (!cta.warpDone(w) && !cta.warpAtBarrier(w) &&
                   cta.warpInstrCount(w) < max_instr_per_warp) {
                const WarpStepResult res = interp.stepWarp(cta, w, env);
                if (stats)
                    stats->accumulate(res);
                progressed = true;
                if (res.barrier)
                    break;
            }
        }

        if (cta.barrierComplete()) {
            cta.releaseBarrier();
            if (stats)
                stats->barriers++;
            progressed = true;
        }

        if (!progressed) {
            // Every live warp is throttled by the instruction limit (the
            // checkpoint case) — or the CTA is deadlocked.
            bool any_below_limit = false;
            for (unsigned w = 0; w < cta.numWarps(); w++)
                if (!cta.warpDone(w) &&
                    cta.warpInstrCount(w) < max_instr_per_warp)
                    any_below_limit = true;
            if (!any_below_limit)
                return false;
            fatal("CTA deadlock in kernel ", env.kernel->name,
                  " (barrier never completed)");
        }
    }
}

FuncStats
FunctionalEngine::launch(const LaunchEnv &env, const Dim3 &grid,
                         const Dim3 &block)
{
    const uint64_t num_ctas = grid.count();
    // The site profiler accumulates per-pc counters in one map; CTAs must
    // run serially while it is attached.
    const bool parallel = pool_ && pool_->threadCount() > 1 && num_ctas > 1 &&
                          !ptx::usesGlobalAtomics(*env.kernel) &&
                          !interp_->siteProfiler();
    if (parallel)
        return launchParallel(env, grid, block, num_ctas);

    FuncStats stats;
    for (uint64_t c = 0; c < num_ctas; c++) {
        auto cta = makeCta(env, grid, block, c);
        const bool done = runCta(*cta, env, UINT64_MAX, &stats);
        MLGS_ASSERT(done, "unlimited CTA run did not complete");
    }
    return stats;
}

FuncStats
FunctionalEngine::launchParallel(const LaunchEnv &env, const Dim3 &grid,
                                 const Dim3 &block, uint64_t num_ctas)
{
    // Per-worker shards: CTAs share only GpuMemory (thread-safe) and the
    // read-only launch env. Stats are all commutative integer sums and
    // coverage counts are integer vectors, so reducing the shards in fixed
    // worker order reproduces the serial totals bitwise.
    const unsigned workers = pool_->threadCount();
    CoverageMap *cov = interp_->coverage();
    std::vector<FuncStats> stat_shards(workers);
    std::vector<CoverageMap> cov_shards(cov ? workers : 0);

    pool_->parallelFor(num_ctas, [&](uint64_t c, unsigned w) {
        Interpreter interp(interp_->memory(), interp_->bugs(),
                           interp_->execMode());
        interp.setRaceCheck(interp_->raceCheck());
        if (cov)
            interp.setCoverage(&cov_shards[w]);
        auto cta = makeCta(env, grid, block, c);
        const bool done =
            runCtaWith(interp, *cta, env, UINT64_MAX, &stat_shards[w]);
        MLGS_ASSERT(done, "unlimited CTA run did not complete");
    });

    FuncStats stats;
    for (unsigned w = 0; w < workers; w++)
        stats += stat_shards[w];
    if (cov)
        for (unsigned w = 0; w < workers; w++)
            cov->merge(cov_shards[w]);
    return stats;
}

} // namespace mlgs::func
