/**
 * @file
 * Per-pc memory-site profiler: the dynamic half of perf-lint's agreement
 * loop. While attached to the interpreter (interp backend only, serial
 * execution is forced), it measures for every executed memory instruction
 *
 *  - global sites: the number of distinct L1 lines each warp access touches
 *    (the same dedupe the timing model's coalescer performs), split into
 *    all accesses and full-warp (32 active lanes) accesses;
 *  - shared sites: the bank-conflict degree of each warp access (max
 *    distinct bank-width words routed to one bank; same-word lanes
 *    broadcast), from the per-lane shared addresses the interpreter feeds
 *    in during the step.
 *
 * Results are keyed by (kernel name, block shape) so one run covering many
 * launch shapes can still be joined site-by-site against the static
 * predictions of ptx::verifier::perfReport (bench/tab_perflint).
 * Purely observational: nothing in the functional or timing state changes
 * when a profiler is attached.
 */
#ifndef MLGS_FUNC_SITE_PROFILER_H
#define MLGS_FUNC_SITE_PROFILER_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "func/warp_step.h"

namespace mlgs::func
{

class SiteProfiler
{
  public:
    /** Measured coalescing behavior of one global load/store/atomic pc. */
    struct GlobalSiteStats
    {
        uint64_t accesses = 0;     ///< warp executions with >=1 global lane
        uint64_t transactions = 0; ///< distinct lines summed over accesses
        uint64_t full_accesses = 0;     ///< subset with a full 32-lane mask
        uint64_t full_transactions = 0; ///< lines summed over full accesses
        bool is_store = false;
        bool is_atomic = false;
        unsigned width = 0; ///< bytes per lane
    };

    /** Measured bank behavior of one shared-memory access pc. */
    struct SharedSiteStats
    {
        uint64_t accesses = 0;
        uint64_t degree_sum = 0; ///< conflict degree summed over accesses
        uint64_t full_accesses = 0;
        uint64_t full_degree_sum = 0;
        unsigned max_degree = 0;
        uint64_t broadcasts = 0; ///< accesses where all lanes hit one word
        bool is_store = false;
        unsigned width = 0;
    };

    /** All measured sites of one (kernel, block shape) combination. */
    struct KernelSites
    {
        std::string kernel;
        Dim3 block;
        std::map<uint32_t, GlobalSiteStats> globals;
        std::map<uint32_t, SharedSiteStats> shared;
    };

    explicit SiteProfiler(unsigned line_bytes = 128,
                          unsigned shared_banks = 32, unsigned bank_bytes = 4)
        : line_bytes_(line_bytes), banks_(shared_banks),
          bank_bytes_(bank_bytes)
    {
    }

    /** Interpreter hooks (serial execution is forced while attached). */
    void beginStep() { shared_lanes_.clear(); }
    void
    noteSharedLane(addr_t seg_addr, unsigned bytes)
    {
        shared_lanes_.push_back({seg_addr, bytes});
    }
    void finishStep(const std::string &kernel, const Dim3 &block,
                    const WarpStepResult &res);

    /** Key "kernel@BXxBYxBZ" used by kernels(). */
    static std::string key(const std::string &kernel, const Dim3 &block);

    const std::map<std::string, KernelSites> &kernels() const
    {
        return kernels_;
    }

  private:
    struct Lane
    {
        addr_t addr;
        unsigned bytes;
    };

    unsigned line_bytes_;
    unsigned banks_;
    unsigned bank_bytes_;
    std::vector<Lane> shared_lanes_;
    std::map<std::string, KernelSites> kernels_;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_SITE_PROFILER_H
