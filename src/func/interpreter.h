/**
 * @file
 * Functional execution of PTX warp instructions. One Interpreter instance is
 * shared by the pure-functional engine and by the timing model (which calls
 * stepWarp at issue time, GPGPU-Sim style).
 */
#ifndef MLGS_FUNC_INTERPRETER_H
#define MLGS_FUNC_INTERPRETER_H

#include <string>
#include <unordered_map>

#include "func/bug_model.h"
#include "func/coverage.h"
#include "func/cta_exec.h"
#include "func/texture.h"
#include "func/warp_step.h"
#include "func/warp_stream.h"
#include "mem/gpu_memory.h"
#include "ptx/ir.h"

namespace mlgs::func
{

/** Module-level symbol addresses (globals materialized at module load). */
using SymbolTable = std::unordered_map<std::string, addr_t>;

/** Everything a kernel launch needs besides the grid itself. */
struct LaunchEnv
{
    const ptx::KernelDef *kernel = nullptr;
    std::vector<uint8_t> params;            ///< packed parameter block
    const SymbolTable *symbols = nullptr;   ///< may be null (no module globals)
    const TextureProvider *textures = nullptr; ///< may be null (no textures)

    /**
     * Position of this launch in the run's launch order, stamped by
     * GpuModel::beginKernel. Keys the warp-stream cache (trace-driven
     * timing replay); launch order is deterministic, so the same workload
     * always produces the same numbering.
     */
    uint64_t launch_seq = 0;
};

/** Executes warp instructions against a CtaExec and global memory. */
class Interpreter
{
  public:
    explicit Interpreter(GpuMemory &mem, BugModel bugs = BugModel{})
        : mem_(&mem), bugs_(bugs)
    {
    }

    /** Optional coverage collection (differential coverage debugging). */
    void setCoverage(CoverageMap *cov) { coverage_ = cov; }
    CoverageMap *coverage() const { return coverage_; }

    /**
     * Record every stepped warp instruction into `cache` (trace-driven
     * timing replay capture). Pass nullptr to detach.
     */
    void setWarpStreamRecord(WarpStreamCache *cache) { record_streams_ = cache; }

    /**
     * Replay warp instructions from previously recorded streams instead of
     * interpreting: stepWarp() pops the next recorded step for the warp and
     * performs no register or memory work, so device memory is not updated.
     * Pass nullptr to detach. Mutually exclusive with record.
     */
    void
    setWarpStreamReplay(const WarpStreamCache *cache)
    {
        replay_streams_ = cache;
    }

    /** A warp-stream cache is attached (forces the serial timing path). */
    bool
    warpStreamActive() const
    {
        return record_streams_ != nullptr || replay_streams_ != nullptr;
    }

    /** Stream replay is attached (CTA register state is never read). */
    bool warpStreamReplayActive() const { return replay_streams_ != nullptr; }

    const BugModel &bugs() const { return bugs_; }
    GpuMemory &memory() { return *mem_; }

    /**
     * Record shared-memory ld/st into each CTA's RaceShadow (allocated by
     * the functional engine when this is on). Purely observational.
     */
    void setRaceCheck(bool on) { check_races_ = on; }
    bool raceCheck() const { return check_races_; }

    /**
     * Execute the next instruction of a warp. The warp must not be done and
     * must not be waiting at a barrier.
     */
    WarpStepResult stepWarp(CtaExec &cta, unsigned warp, const LaunchEnv &env);

  private:
    WarpStepResult stepWarpExec(CtaExec &cta, unsigned warp,
                                const LaunchEnv &env);
    WarpStepResult replayStep(CtaExec &cta, unsigned warp,
                              const LaunchEnv &env);

    ptx::RegVal readOperand(const ptx::Instr &ins, const ptx::Operand &op,
                            const CtaExec &cta, unsigned tid,
                            const LaunchEnv &env) const;

    addr_t symbolAddr(const std::string &sym, const ptx::KernelDef &k,
                      const LaunchEnv &env) const;

    struct Ea
    {
        ptx::Space space;
        addr_t addr; ///< absolute (window-relative encoding preserved)
    };
    Ea resolveAddr(const ptx::Instr &ins, const ptx::Operand &op,
                   const CtaExec &cta, unsigned tid, const LaunchEnv &env) const;

    void loadTyped(const Ea &ea, ptx::Type t, unsigned vec, ptx::RegVal *out,
                   CtaExec &cta, unsigned tid, const LaunchEnv &env) const;
    void storeTyped(const Ea &ea, ptx::Type t, unsigned vec,
                    const ptx::RegVal *vals, CtaExec &cta, unsigned tid,
                    const LaunchEnv &env) const;

    ptx::RegVal execAlu(const ptx::Instr &ins, const ptx::RegVal &a,
                        const ptx::RegVal &b, const ptx::RegVal &c) const;

    void execLane(const ptx::Instr &ins, CtaExec &cta, unsigned tid,
                  unsigned lane, const LaunchEnv &env, WarpStepResult &res);

    GpuMemory *mem_;
    BugModel bugs_;
    bool check_races_ = false;
    CoverageMap *coverage_ = nullptr;
    WarpStreamCache *record_streams_ = nullptr;
    const WarpStreamCache *replay_streams_ = nullptr;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_INTERPRETER_H
