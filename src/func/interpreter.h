/**
 * @file
 * Functional execution of PTX warp instructions. One Interpreter instance is
 * shared by the pure-functional engine and by the timing model (which calls
 * stepWarp at issue time, GPGPU-Sim style).
 *
 * Two backends sit behind stepWarp(): the reference interpreter here
 * (per-instruction decode of the parsed IR) and the compiled micro-op
 * executor (src/func/compiled/, threaded dispatch over the lowered uop
 * stream from ptx/uop.h). Both run the shared scalar semantics in
 * func/exec_semantics.h and are bitwise identical on register files and
 * memory; ExecMode picks which one executes.
 */
#ifndef MLGS_FUNC_INTERPRETER_H
#define MLGS_FUNC_INTERPRETER_H

#include <string>

#include "func/bug_model.h"
#include "func/coverage.h"
#include "func/cta_exec.h"
#include "func/exec_mode.h"
#include "func/launch_env.h"
#include "func/texture.h"
#include "func/warp_step.h"
#include "func/warp_stream.h"
#include "mem/gpu_memory.h"
#include "ptx/ir.h"

namespace mlgs::func
{

class SiteProfiler;

/** Executes warp instructions against a CtaExec and global memory. */
class Interpreter
{
  public:
    explicit Interpreter(GpuMemory &mem, BugModel bugs = BugModel{},
                         ExecMode mode = ExecMode::Auto)
        : mem_(&mem), bugs_(bugs), mode_(resolveExecMode(mode))
    {
    }

    /** The resolved functional backend (never Auto). */
    ExecMode execMode() const { return mode_; }

    /** Optional coverage collection (differential coverage debugging). */
    void setCoverage(CoverageMap *cov) { coverage_ = cov; }
    CoverageMap *coverage() const { return coverage_; }

    /**
     * Record every stepped warp instruction into `cache` (trace-driven
     * timing replay capture). Pass nullptr to detach.
     */
    void setWarpStreamRecord(WarpStreamCache *cache) { record_streams_ = cache; }

    /**
     * Replay warp instructions from previously recorded streams instead of
     * interpreting: stepWarp() pops the next recorded step for the warp and
     * performs no register or memory work, so device memory is not updated.
     * Pass nullptr to detach. Mutually exclusive with record.
     */
    void
    setWarpStreamReplay(const WarpStreamCache *cache)
    {
        replay_streams_ = cache;
    }

    /** A warp-stream cache is attached (forces the serial timing path). */
    bool
    warpStreamActive() const
    {
        return record_streams_ != nullptr || replay_streams_ != nullptr;
    }

    /** Stream replay is attached (CTA register state is never read). */
    bool warpStreamReplayActive() const { return replay_streams_ != nullptr; }

    const BugModel &bugs() const { return bugs_; }
    GpuMemory &memory() { return *mem_; }

    /**
     * Record shared-memory ld/st into each CTA's RaceShadow (allocated by
     * the functional engine when this is on). Purely observational.
     */
    void setRaceCheck(bool on) { check_races_ = on; }
    bool raceCheck() const { return check_races_; }

    /**
     * Attach a per-pc memory-site profiler (perf-lint agreement loop).
     * Requires the interp backend (the profiler needs per-lane shared
     * addresses only the reference interpreter surfaces) and forces both
     * engines onto their serial paths. Pass nullptr to detach. Purely
     * observational: simulation results are bitwise identical either way.
     */
    void setSiteProfiler(SiteProfiler *prof);
    SiteProfiler *siteProfiler() const { return profiler_; }

    /**
     * Execute the next instruction of a warp. The warp must not be done and
     * must not be waiting at a barrier.
     */
    WarpStepResult stepWarp(CtaExec &cta, unsigned warp, const LaunchEnv &env);

  private:
    WarpStepResult stepWarpExec(CtaExec &cta, unsigned warp,
                                const LaunchEnv &env);
    WarpStepResult replayStep(CtaExec &cta, unsigned warp,
                              const LaunchEnv &env);

    void execLane(const ptx::Instr &ins, CtaExec &cta, unsigned tid,
                  unsigned lane, const LaunchEnv &env, WarpStepResult &res);

    GpuMemory *mem_;
    BugModel bugs_;
    ExecMode mode_;
    bool check_races_ = false;
    CoverageMap *coverage_ = nullptr;
    WarpStreamCache *record_streams_ = nullptr;
    const WarpStreamCache *replay_streams_ = nullptr;
    SiteProfiler *profiler_ = nullptr;
};

} // namespace mlgs::func

#endif // MLGS_FUNC_INTERPRETER_H
