/**
 * @file
 * Sampled fast-forward timing configuration. The performance model can run
 * every launch through the cycle-level GpuModel (Detailed), or cluster
 * launches by signature and cycle-simulate only cluster representatives
 * (Sampled), or additionally predict cycles for never-before-seen clusters
 * with a runtime-fitted ridge regression (Predicted). Selection order mirrors
 * func::ExecMode: an explicit ContextOptions choice wins, then the
 * MLGS_TIMING environment variable ("detailed" / "sampled" / "predicted"),
 * then the default (Detailed — the cycle model stays bitwise-unchanged
 * unless sampling is asked for).
 */
#ifndef MLGS_SAMPLE_OPTIONS_H
#define MLGS_SAMPLE_OPTIONS_H

#include <cstdint>
#include <optional>
#include <string>

namespace mlgs::sample
{

/** How kernel launches are timed in performance mode. */
enum class TimingMode : uint8_t
{
    Auto,      ///< resolve from MLGS_TIMING, default Detailed
    Detailed,  ///< every launch through the cycle model (ground truth)
    Sampled,   ///< representatives detailed, members extrapolated
    Predicted, ///< Sampled + ridge-regression cycles for unseen clusters
};

/** Resolve Auto via MLGS_TIMING; explicit requests pass through unchanged. */
TimingMode resolveTimingMode(TimingMode requested);

/** Printable mode name ("detailed" / "sampled" / "predicted" / "auto"). */
const char *timingModeName(TimingMode mode);

/** Parse a CLI/env spelling; nullopt if unrecognized. */
std::optional<TimingMode> parseTimingMode(const std::string &name);

/** Knobs of the sampled/predicted timing modes. */
struct SamplingOptions
{
    /**
     * Detailed (cycle-simulated) launches required per cluster before
     * members fast-forward. The first representative is always detailed;
     * values > 1 buy real per-cluster error bars at the cost of speed.
     */
    unsigned detailed_per_cluster = 1;

    /**
     * Max launches a cluster may absorb; once exceeded, further members are
     * routed detailed. 1 disables clustering entirely (every launch
     * detailed — bitwise-identical to TimingMode::Detailed); 0 = unlimited.
     */
    unsigned max_cluster_size = 0;

    /**
     * Re-simulate every Nth cluster member in detail (0 = off). Refreshes
     * the representative's statistics and widens the error-bar sample.
     */
    unsigned redetail_period = 0;

    // ---- Predicted mode ----
    /** Min detailed launches observed before the predictor may fit. */
    unsigned predictor_min_train = 12;
    /** Ridge regularization strength (normal equations diagonal). */
    double predictor_lambda = 1e-3;
    /**
     * Leave-one-out cross-validated mean relative cycle error above which
     * the fitted model is rejected (every launch falls back to Detailed).
     */
    double predictor_max_cv_rel_err = 0.35;
    /**
     * Fractional slack added to the per-feature training min/max envelope;
     * launches whose features fall outside it fall back to Detailed.
     */
    double predictor_envelope_slack = 0.10;
};

} // namespace mlgs::sample

#endif // MLGS_SAMPLE_OPTIONS_H
