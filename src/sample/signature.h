/**
 * @file
 * Per-launch clustering signature: kernel identity, launch geometry, and the
 * kernel's static micro-op mix / divergence / footprint stats (from
 * analyzeKernel's lowered UopProgram). Two launches with equal signatures are
 * expected to cost nearly the same cycles per warp instruction, so one
 * cycle-simulated representative can time-stand-in for the rest. The CTA
 * count enters the key as a log2 bucket — launches of the same kernel whose
 * grids differ by less than 2x share a cluster and are scaled by their exact
 * work ratio; larger geometry changes hash apart.
 */
#ifndef MLGS_SAMPLE_SIGNATURE_H
#define MLGS_SAMPLE_SIGNATURE_H

#include <string>

#include "common/types.h"
#include "ptx/uop.h"

namespace mlgs::sample
{

/** Signature fields (kept for reporting; `key` is the cluster identity). */
struct Signature
{
    std::string kernel_name;
    Dim3 block;
    uint64_t ctas = 0;        ///< this launch's CTA count (not part of key)
    unsigned ctas_bucket = 0; ///< floor(log2(ctas))
    uint32_t shared_bytes = 0;
    uint32_t local_bytes = 0;
    uint32_t param_bytes = 0;
    ptx::UopMix mix;          ///< static per-class counts + divergence

    /** Deterministic cluster key over every field except `ctas`. */
    std::string key() const;
};

/** Build the signature of one launch (requires an analyzed kernel). */
Signature computeSignature(const ptx::KernelDef &kernel, const Dim3 &grid,
                           const Dim3 &block);

} // namespace mlgs::sample

#endif // MLGS_SAMPLE_SIGNATURE_H
