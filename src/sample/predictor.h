/**
 * @file
 * Runtime-fitted cycles predictor (TimingMode::Predicted): a small ridge
 * regression from launch features to log(cycles per warp instruction),
 * trained on the detailed launches the run has already cycle-simulated.
 * SimNet-style, but fitted online inside the simulator: the model is
 * leave-one-out cross-validated against its own training set and refuses to
 * predict outside the per-feature envelope it was trained in — rejected
 * launches fall back to detailed simulation, which in turn grows the
 * training set.
 */
#ifndef MLGS_SAMPLE_PREDICTOR_H
#define MLGS_SAMPLE_PREDICTOR_H

#include <array>
#include <optional>
#include <vector>

#include "sample/options.h"
#include "sample/signature.h"

namespace mlgs::sample
{

/** Feature vector of one launch (f[0] is the intercept). */
struct PredictorFeatures
{
    static constexpr size_t kCount = 8;
    std::array<double, kCount> f{};
};

/**
 * Features of one launch from its signature alone — launch geometry plus the
 * kernel's static micro-op mix. Everything here is computable *before* the
 * launch executes, which is what lets the backend decide routing (predict vs
 * fall back to detailed) without having already applied the kernel's memory
 * effects. The regression target is log(cycles per warp instruction), so the
 * per-warp-instruction features only need to rank relative memory/SFU/shared
 * intensity, not reproduce dynamic counts.
 */
PredictorFeatures makeFeatures(const Signature &sig);

class CyclePredictor
{
  public:
    explicit CyclePredictor(const SamplingOptions &opts) : opts_(opts) {}

    /** Add a detailed launch as a training sample. */
    void addSample(const PredictorFeatures &x, double cycles,
                   double warp_instrs);

    /**
     * Predicted cycles-per-warp-instruction for a launch, or nullopt when
     * the model declines: not enough training data, cross-validation error
     * above the configured bound, or features outside the training envelope.
     * Declines are counted in status(). The caller multiplies by the
     * launch's warp-instruction count once it is known (after the
     * functional fast-forward) — the prediction itself needs only
     * pre-execution features, which is what makes predict-vs-detailed
     * routing decidable before any memory effects are applied.
     */
    std::optional<double> predictCpi(const PredictorFeatures &x);

    struct Status
    {
        bool trained = false;
        size_t n_train = 0;
        double cv_rel_err = 0.0; ///< LOO mean relative cycle error
        uint64_t declined_untrained = 0;
        uint64_t declined_envelope = 0;
        uint64_t declined_cv = 0;
    };
    const Status &status() const { return status_; }

  private:
    bool fitIfNeeded();
    bool inEnvelope(const PredictorFeatures &x) const;

    SamplingOptions opts_;
    std::vector<PredictorFeatures> xs_;
    std::vector<double> ys_; ///< log(cycles / warp_instrs)
    std::array<double, PredictorFeatures::kCount> w_{};
    std::array<double, PredictorFeatures::kCount> env_min_{};
    std::array<double, PredictorFeatures::kCount> env_max_{};
    bool dirty_ = true;
    bool fit_ok_ = false;
    Status status_;
};

} // namespace mlgs::sample

#endif // MLGS_SAMPLE_PREDICTOR_H
