/**
 * @file
 * Runtime-fitted cycles predictor (TimingMode::Predicted): a small ridge
 * regression from launch features to log(cycles per warp instruction),
 * trained on the detailed launches the run has already cycle-simulated.
 * SimNet-style, but fitted online inside the simulator: the model is
 * leave-one-out cross-validated against its own training set and refuses to
 * predict outside the per-feature envelope it was trained in — rejected
 * launches fall back to detailed simulation, which in turn grows the
 * training set.
 */
#ifndef MLGS_SAMPLE_PREDICTOR_H
#define MLGS_SAMPLE_PREDICTOR_H

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "sample/options.h"
#include "sample/signature.h"

namespace mlgs::sample
{

/** Feature vector of one launch (f[0] is the intercept). */
struct PredictorFeatures
{
    static constexpr size_t kCount = 8;
    std::array<double, kCount> f{};
};

/**
 * Features of one launch from its signature alone — launch geometry plus the
 * kernel's static micro-op mix. Everything here is computable *before* the
 * launch executes, which is what lets the backend decide routing (predict vs
 * fall back to detailed) without having already applied the kernel's memory
 * effects. The regression target is log(cycles per warp instruction), so the
 * per-warp-instruction features only need to rank relative memory/SFU/shared
 * intensity, not reproduce dynamic counts.
 */
PredictorFeatures makeFeatures(const Signature &sig);

/**
 * A predictor's training set as a standalone, serializable artifact:
 * (features, log-CPI target) rows. The serve daemon accumulates one across
 * jobs (behind its own mutex) and seeds it into each predicted-mode job's
 * CyclePredictor, so later submissions warm-start instead of falling back to
 * detailed while undertrained; it can also be persisted to disk between
 * daemon runs. Versioned via serialize.h like traces and checkpoints.
 */
struct TrainingSet
{
    std::vector<PredictorFeatures> xs;
    std::vector<double> ys; ///< log(cycles / warp_instrs)

    size_t size() const { return xs.size(); }
    bool empty() const { return xs.empty(); }

    void append(const PredictorFeatures &x, double y)
    {
        xs.push_back(x);
        ys.push_back(y);
    }

    void save(BinaryWriter &w) const;
    void load(BinaryReader &r); ///< replaces current contents

    void saveFile(const std::string &path) const;
    static TrainingSet loadFile(const std::string &path);
};

class CyclePredictor
{
  public:
    explicit CyclePredictor(const SamplingOptions &opts) : opts_(opts) {}

    /** Add a detailed launch as a training sample. */
    void addSample(const PredictorFeatures &x, double cycles,
                   double warp_instrs);

    /**
     * Warm-start: prepend an externally accumulated training set (the rows a
     * previous run or the serve daemon collected). Marks the fit dirty; the
     * next predictCpi() refits over the combined set.
     */
    void seed(const TrainingSet &set);

    /** Rows added after the first `from` (for harvesting new samples). */
    void exportSamples(TrainingSet &out, size_t from = 0) const;

    /** Training rows currently held (seeded + locally observed). */
    size_t sampleCount() const { return xs_.size(); }

    /**
     * Predicted cycles-per-warp-instruction for a launch, or nullopt when
     * the model declines: not enough training data, cross-validation error
     * above the configured bound, or features outside the training envelope.
     * Declines are counted in status(). The caller multiplies by the
     * launch's warp-instruction count once it is known (after the
     * functional fast-forward) — the prediction itself needs only
     * pre-execution features, which is what makes predict-vs-detailed
     * routing decidable before any memory effects are applied.
     */
    std::optional<double> predictCpi(const PredictorFeatures &x);

    struct Status
    {
        bool trained = false;
        size_t n_train = 0;
        double cv_rel_err = 0.0; ///< LOO mean relative cycle error
        uint64_t declined_untrained = 0;
        uint64_t declined_envelope = 0;
        uint64_t declined_cv = 0;
    };
    const Status &status() const { return status_; }

  private:
    bool fitIfNeeded();
    bool inEnvelope(const PredictorFeatures &x) const;

    SamplingOptions opts_;
    std::vector<PredictorFeatures> xs_;
    std::vector<double> ys_; ///< log(cycles / warp_instrs)
    std::array<double, PredictorFeatures::kCount> w_{};
    std::array<double, PredictorFeatures::kCount> env_min_{};
    std::array<double, PredictorFeatures::kCount> env_max_{};
    bool dirty_ = true;
    bool fit_ok_ = false;
    Status status_;
};

} // namespace mlgs::sample

#endif // MLGS_SAMPLE_PREDICTOR_H
