#include "sample/sampled_backend.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.h"

namespace mlgs::sample
{

namespace
{

uint64_t
scaled(uint64_t v, double s)
{
    return uint64_t(std::llround(double(v) * s));
}

double
hitRate(uint64_t hits, uint64_t misses)
{
    const uint64_t total = hits + misses;
    return total ? double(hits) / double(total) : 0.0;
}

} // namespace

SampledBackend::SampledBackend(timing::GpuModel &gpu,
                               func::FunctionalEngine &func, TimingMode mode,
                               const SamplingOptions &opts)
    : gpu_(&gpu), func_(&func), mode_(resolveTimingMode(mode)), opts_(opts),
      predictor_(opts)
{
}

bool
SampledBackend::canAccept() const
{
    // Conservative: routing is decided inside begin(), so admission must
    // assume the next launch may need a cycle-model residency slot.
    return gpu_->residentKernels() <
           std::max(1u, gpu_->config().max_resident_kernels);
}

uint64_t
SampledBackend::begin(engine::LaunchRecord &rec, const func::LaunchEnv &env,
                      cycle_t start)
{
    launches_++;
    Cluster &cl = clusterer_.clusterFor(*rec.kernel, rec.grid, rec.block);
    cl.members++;
    rec.cluster_id = cl.id;

    Signature launch_sig = cl.sig;
    launch_sig.ctas = rec.grid.count();
    const PredictorFeatures x = makeFeatures(launch_sig);

    enum class Route
    {
        Detailed,
        Extrapolate,
        Predict,
    };
    Route route = Route::Detailed;
    double cpi_pred = 0.0;
    if (opts_.max_cluster_size == 1) {
        route = Route::Detailed; // clustering disabled: bitwise Detailed
    } else if (opts_.max_cluster_size != 0 &&
               cl.members > opts_.max_cluster_size) {
        route = Route::Detailed;
        capacity_detailed_++;
    } else if (cl.detailed_begun < opts_.detailed_per_cluster || !cl.has_rep) {
        // The cluster still owes a representative (the rep may also be in
        // flight on another stream — !has_rep covers that window). Predicted
        // mode may skip the detailed run when the regression model vouches
        // for this signature.
        route = Route::Detailed;
        if (mode_ == TimingMode::Predicted) {
            if (const auto cpi = predictor_.predictCpi(x)) {
                route = Route::Predict;
                cpi_pred = *cpi;
            }
        }
    } else if (opts_.redetail_period != 0 &&
               cl.members % opts_.redetail_period == 0) {
        route = Route::Detailed; // periodic representative refresh
    } else {
        route = Route::Extrapolate;
    }

    if (route == Route::Detailed) {
        cl.detailed_begun++;
        detailed_launches_++;
        const uint64_t token =
            gpu_->beginKernel(env, rec.grid, rec.block, start);
        if (mode_ == TimingMode::Predicted)
            detailed_x_.emplace(token, x);
        return token;
    }

    // The engine passes the stream's ready time, which is stale when this
    // begin() was deferred by canAccept() until a resident kernel retired.
    // Detailed launches are immune — GpuModel schedules from its own clock —
    // so the fast path must clamp the same way, or its completion lands in
    // the past and the launch retroactively overlaps the kernel it queued
    // behind.
    start = std::max(start, gpu_->clock());

    // Fast-forward: execute functionally now — memory effects and the
    // instruction-class counts below are exact; only the cycle-level view
    // (cycles, cache/DRAM/interconnect counters) is estimated.
    rec.func_stats = func_->launch(env, rec.grid, rec.block);
    const uint64_t wi = rec.func_stats.instructions;
    const double wid = double(std::max<uint64_t>(wi, 1));

    timing::TimingTotals est;
    est.warp_instructions = wi;
    est.thread_instructions = rec.func_stats.thread_instructions;
    est.alu = rec.func_stats.alu;
    est.sfu = rec.func_stats.sfu;
    est.mem_insts = rec.func_stats.mem;
    est.shared_accesses = rec.func_stats.shared_accesses;

    cycle_t est_cycles = 1;
    if (route == Route::Extrapolate) {
        const timing::KernelRunStats &rep = cl.rep;
        const double s = rep.warp_instructions
                             ? wid / double(rep.warp_instructions)
                             : 1.0;
        est_cycles = std::max<cycle_t>(
            1, cycle_t(std::llround(double(rep.cycles) * s)));
        est.l1_hits = scaled(rep.totals.l1_hits, s);
        est.l1_misses = scaled(rep.totals.l1_misses, s);
        est.l2_hits = scaled(rep.totals.l2_hits, s);
        est.l2_misses = scaled(rep.totals.l2_misses, s);
        est.icnt_flits = scaled(rep.totals.icnt_flits, s);
        est.dram_reads = scaled(rep.totals.dram_reads, s);
        est.dram_writes = scaled(rep.totals.dram_writes, s);
        est.dram_row_hits = scaled(rep.totals.dram_row_hits, s);
        est.dram_row_misses = scaled(rep.totals.dram_row_misses, s);
        est.core_active_cycles = scaled(rep.totals.core_active_cycles, s);
        est.core_idle_cycles = scaled(rep.totals.core_idle_cycles, s);
        rec.perf.l1_hit_rate = rep.l1_hit_rate;
        rec.perf.l2_hit_rate = rep.l2_hit_rate;
        rec.perf.dram_row_hit_rate = rep.dram_row_hit_rate;
        rec.timing_source = engine::TimingSource::Extrapolated;
        cl.fast++;
    } else {
        est_cycles = std::max<cycle_t>(
            1, cycle_t(std::llround(cpi_pred * wid)));
        // Memory-system counters from global per-warp-instruction rates
        // over every detailed launch completed so far (any cluster).
        const double dwi = double(
            std::max<uint64_t>(detailed_accum_.warp_instructions, 1));
        const auto per_wi = [&](uint64_t v) {
            return uint64_t(std::llround(double(v) / dwi * wid));
        };
        est.l1_hits = per_wi(detailed_accum_.l1_hits);
        est.l1_misses = per_wi(detailed_accum_.l1_misses);
        est.l2_hits = per_wi(detailed_accum_.l2_hits);
        est.l2_misses = per_wi(detailed_accum_.l2_misses);
        est.icnt_flits = per_wi(detailed_accum_.icnt_flits);
        est.dram_reads = per_wi(detailed_accum_.dram_reads);
        est.dram_writes = per_wi(detailed_accum_.dram_writes);
        est.dram_row_hits = per_wi(detailed_accum_.dram_row_hits);
        est.dram_row_misses = per_wi(detailed_accum_.dram_row_misses);
        est.core_active_cycles = per_wi(detailed_accum_.core_active_cycles);
        est.core_idle_cycles = per_wi(detailed_accum_.core_idle_cycles);
        rec.perf.l1_hit_rate = hitRate(est.l1_hits, est.l1_misses);
        rec.perf.l2_hit_rate = hitRate(est.l2_hits, est.l2_misses);
        rec.perf.dram_row_hit_rate =
            hitRate(est.dram_row_hits, est.dram_row_misses);
        rec.timing_source = engine::TimingSource::Predicted;
        cl.predicted++;
    }
    est.cycles = est_cycles;

    rec.perf.kernel_name = rec.kernel->name;
    rec.perf.cycles = est_cycles;
    rec.perf.warp_instructions = wi;
    rec.perf.thread_instructions = rec.func_stats.thread_instructions;
    rec.perf.ipc = double(wi) / double(est_cycles);
    rec.perf.start_cycle = start;
    rec.perf.totals = est;
    rec.cycles = est_cycles;

    const uint64_t token = kFastBit | next_fast_token_++;
    fast_pq_.push(FastPending{start + est_cycles, token});
    return token;
}

bool
SampledBackend::busy() const
{
    return gpu_->residentKernels() > 0 || !fast_pq_.empty();
}

std::optional<engine::BackendCompletion>
SampledBackend::advanceUntil(cycle_t limit)
{
    const bool have_fast = !fast_pq_.empty();
    const cycle_t fast_at = have_fast ? fast_pq_.top().at : 0;
    if (gpu_->residentKernels() > 0) {
        // Never let the cycle model's clock race past the earliest
        // fast-forwarded completion: completions must surface in device-time
        // order so the engine's stream/copy interleaving stays consistent.
        const cycle_t gpu_limit = have_fast ? std::min(limit, fast_at) : limit;
        if (const auto c = gpu_->advanceUntil(gpu_limit, sampler_))
            return engine::BackendCompletion{c->token, c->at};
    }
    if (have_fast && fast_at <= limit) {
        const uint64_t token = fast_pq_.top().token;
        fast_pq_.pop();
        return engine::BackendCompletion{token, fast_at};
    }
    return std::nullopt;
}

void
SampledBackend::finish(uint64_t token, engine::LaunchRecord &rec)
{
    Cluster &cl = *clusterer_.clusters()[rec.cluster_id];
    if (token & kFastBit) {
        // Estimates were synthesized at begin(); fold them into the device
        // grand totals now that the launch retires.
        gpu_->accumulateExtrapolated(rec.perf.totals);
        cl.extrapolated_cycles += rec.perf.cycles;
        return;
    }
    rec.perf = gpu_->collectKernel(token);
    rec.cycles = rec.perf.cycles;
    rec.timing_source = engine::TimingSource::Detailed;
    clusterer_.recordDetailed(cl, rec.perf);
    detailed_accum_ += rec.perf.totals;
    if (const auto it = detailed_x_.find(token); it != detailed_x_.end()) {
        predictor_.addSample(it->second, double(rec.perf.cycles),
                             double(rec.perf.warp_instructions));
        detailed_x_.erase(it);
    }
}

SamplingReport
SampledBackend::report() const
{
    SamplingReport r;
    r.mode = mode_;
    r.launches = launches_;
    r.detailed_launches = detailed_launches_;
    r.capacity_detailed = capacity_detailed_;
    r.predictor = predictor_.status();
    double weighted_err = 0.0;
    double covered = 0.0;
    for (const auto &clp : clusterer_.clusters()) {
        const Cluster &cl = *clp;
        r.clusters++;
        r.extrapolated_launches += cl.fast;
        r.predicted_launches += cl.predicted;
        r.detailed_cycles += cl.detailed_cycles;
        r.extrapolated_cycles += cl.extrapolated_cycles;
        weighted_err += double(cl.extrapolated_cycles) * cl.cpiRelSpread();
        if (cl.cpi_n >= 2)
            covered += double(cl.extrapolated_cycles);

        SamplingReport::ClusterRow row;
        row.id = cl.id;
        row.kernel_name = cl.sig.kernel_name;
        row.block = cl.sig.block;
        row.ctas_bucket = cl.sig.ctas_bucket;
        row.members = cl.members;
        row.detailed = cl.detailed_done;
        row.fast = cl.fast;
        row.predicted = cl.predicted;
        row.cpi_mean = cl.cpiMean();
        row.cpi_rel_spread = cl.cpiRelSpread();
        row.detailed_cycles = cl.detailed_cycles;
        row.extrapolated_cycles = cl.extrapolated_cycles;
        r.rows.push_back(std::move(row));
    }
    if (r.extrapolated_cycles > 0) {
        r.cycle_error_bound_rel =
            weighted_err / double(r.extrapolated_cycles);
        r.error_bar_coverage = covered / double(r.extrapolated_cycles);
    }
    return r;
}

std::string
reportJson(const SamplingReport &r, int indent)
{
    const std::string p(size_t(std::max(indent, 0)), ' ');
    std::ostringstream os;
    os << "{\n";
    os << p << "  \"mode\": \"" << timingModeName(r.mode) << "\",\n";
    os << p << "  \"launches\": " << r.launches << ",\n";
    os << p << "  \"detailed_launches\": " << r.detailed_launches << ",\n";
    os << p << "  \"extrapolated_launches\": " << r.extrapolated_launches
       << ",\n";
    os << p << "  \"predicted_launches\": " << r.predicted_launches << ",\n";
    os << p << "  \"capacity_detailed\": " << r.capacity_detailed << ",\n";
    os << p << "  \"clusters\": " << r.clusters << ",\n";
    os << p << "  \"detailed_cycles\": " << r.detailed_cycles << ",\n";
    os << p << "  \"extrapolated_cycles\": " << r.extrapolated_cycles
       << ",\n";
    os << p << "  \"cycle_error_bound_rel\": "
       << jsonDouble(r.cycle_error_bound_rel) << ",\n";
    os << p << "  \"error_bar_coverage\": " << jsonDouble(r.error_bar_coverage)
       << ",\n";
    os << p << "  \"predictor\": {\"trained\": "
       << (r.predictor.trained ? "true" : "false")
       << ", \"n_train\": " << r.predictor.n_train
       << ", \"cv_rel_err\": " << jsonDouble(r.predictor.cv_rel_err)
       << ", \"declined_untrained\": " << r.predictor.declined_untrained
       << ", \"declined_envelope\": " << r.predictor.declined_envelope
       << ", \"declined_cv\": " << r.predictor.declined_cv << "},\n";
    os << p << "  \"clusters_detail\": [";
    for (size_t i = 0; i < r.rows.size(); i++) {
        const auto &row = r.rows[i];
        os << (i ? "," : "") << "\n"
           << p << "    {\"id\": " << row.id << ", \"kernel\": \""
           << row.kernel_name << "\", \"block\": [" << row.block.x << ","
           << row.block.y << "," << row.block.z
           << "], \"ctas_bucket\": " << row.ctas_bucket
           << ", \"members\": " << row.members
           << ", \"detailed\": " << row.detailed << ", \"fast\": " << row.fast
           << ", \"predicted\": " << row.predicted
           << ", \"cpi_mean\": " << jsonDouble(row.cpi_mean)
           << ", \"cpi_rel_spread\": " << jsonDouble(row.cpi_rel_spread)
           << ", \"detailed_cycles\": " << row.detailed_cycles
           << ", \"extrapolated_cycles\": " << row.extrapolated_cycles
           << "}";
    }
    if (!r.rows.empty())
        os << "\n" << p << "  ";
    os << "]\n" << p << "}";
    return os.str();
}

} // namespace mlgs::sample
