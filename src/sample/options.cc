#include "sample/options.h"

#include <cstdlib>

#include "common/log.h"

namespace mlgs::sample
{

std::optional<TimingMode>
parseTimingMode(const std::string &name)
{
    if (name == "detailed")
        return TimingMode::Detailed;
    if (name == "sampled")
        return TimingMode::Sampled;
    if (name == "predicted")
        return TimingMode::Predicted;
    return std::nullopt;
}

TimingMode
resolveTimingMode(TimingMode requested)
{
    if (requested != TimingMode::Auto)
        return requested;
    if (const char *env = std::getenv("MLGS_TIMING")) {
        if (const auto m = parseTimingMode(env))
            return *m;
        fatal("MLGS_TIMING must be 'detailed', 'sampled' or 'predicted', "
              "got '", env, "'");
    }
    return TimingMode::Detailed;
}

const char *
timingModeName(TimingMode mode)
{
    switch (mode) {
      case TimingMode::Detailed: return "detailed";
      case TimingMode::Sampled: return "sampled";
      case TimingMode::Predicted: return "predicted";
      default: return "auto";
    }
}

} // namespace mlgs::sample
