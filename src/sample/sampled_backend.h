/**
 * @file
 * Sampled fast-forward execution backend: the engine-facing implementation of
 * TimingMode::Sampled / Predicted. Launches are clustered online by
 * signature; the first member(s) of each cluster run through the cycle-level
 * GpuModel as representatives, and subsequent members are fast-forwarded —
 * executed functionally (exact memory effects and instruction counts) while
 * their cycles and memory-system counters are extrapolated from the
 * representative, scaled by the exact warp-instruction ratio. In Predicted
 * mode a runtime-fitted ridge regression supplies cycles for clusters that
 * have no representative yet, when its cross-validation and feature envelope
 * allow; otherwise such launches fall back to detailed simulation.
 *
 * Interleaving semantics: fast-forwarded launches never occupy GpuModel
 * residency. Their completions live on a private min-heap that advanceUntil
 * merges with the cycle model's event stream, so stream ordering and
 * copy/kernel overlap decisions in the DeviceEngine see one consistent
 * device timeline. Extrapolated counter estimates are accumulated into the
 * GpuModel's grand totals at retirement via accumulateExtrapolated(), so
 * stats output reflects the whole workload, not just the sampled part.
 *
 * With max_cluster_size == 1 every launch routes detailed and this backend
 * reduces exactly to TimingBackend: bitwise-identical cycles and stats.
 */
#ifndef MLGS_SAMPLE_SAMPLED_BACKEND_H
#define MLGS_SAMPLE_SAMPLED_BACKEND_H

#include <map>
#include <queue>
#include <string>
#include <vector>

#include "engine/exec_backend.h"
#include "sample/clusterer.h"
#include "sample/options.h"
#include "sample/predictor.h"
#include "timing/gpu.h"

namespace mlgs::sample
{

/** Summary of one run's sampling behaviour (stats output + bench tables). */
struct SamplingReport
{
    TimingMode mode = TimingMode::Detailed;
    uint64_t launches = 0;
    uint64_t detailed_launches = 0;
    uint64_t extrapolated_launches = 0;
    uint64_t predicted_launches = 0;
    uint64_t capacity_detailed = 0; ///< routed detailed by the cluster cap
    uint64_t clusters = 0;
    uint64_t detailed_cycles = 0;     ///< cycle-simulated
    uint64_t extrapolated_cycles = 0; ///< estimated (extrapolated + predicted)

    /**
     * Weighted per-cluster error bar: sum over clusters of
     * extrapolated_cycles_c * cpiRelSpread_c, divided by total extrapolated
     * cycles. Zero-spread clusters (a single detailed sample) contribute 0 —
     * see error_bar_coverage for how much of the estimate they carry.
     */
    double cycle_error_bound_rel = 0.0;
    /** Fraction of extrapolated cycles from clusters with >= 2 samples. */
    double error_bar_coverage = 0.0;

    CyclePredictor::Status predictor;

    struct ClusterRow
    {
        uint64_t id = 0;
        std::string kernel_name;
        Dim3 block;
        unsigned ctas_bucket = 0;
        uint64_t members = 0;
        uint64_t detailed = 0;
        uint64_t fast = 0;
        uint64_t predicted = 0;
        double cpi_mean = 0.0;
        double cpi_rel_spread = 0.0;
        uint64_t detailed_cycles = 0;
        uint64_t extrapolated_cycles = 0;
    };
    std::vector<ClusterRow> rows; ///< creation order
};

/**
 * Byte-stable JSON rendering. Doubles are printed with jsonDouble()
 * (shortest round-trip decimal), so the output is a pure function of the
 * report's bits — identical across runs, compilers, and standard libraries,
 * which is what lets a cached stats JSON byte-match a cold run.
 */
std::string reportJson(const SamplingReport &r, int indent = 2);

class SampledBackend : public engine::ExecBackend
{
  public:
    SampledBackend(timing::GpuModel &gpu, func::FunctionalEngine &func,
                   TimingMode mode, const SamplingOptions &opts);

    /** AerialVision sampler observed while the cycle model advances. */
    void setSampler(stats::AerialSampler *s) { sampler_ = s; }

    bool canAccept() const override;
    uint64_t begin(engine::LaunchRecord &rec, const func::LaunchEnv &env,
                   cycle_t start) override;
    bool busy() const override;
    std::optional<engine::BackendCompletion> advanceUntil(cycle_t limit)
        override;
    void finish(uint64_t token, engine::LaunchRecord &rec) override;

    TimingMode mode() const { return mode_; }
    const SamplingOptions &samplingOptions() const { return opts_; }
    const Clusterer &clusterer() const { return clusterer_; }
    SamplingReport report() const;

    /**
     * The run's cycle predictor: exposed so a host (the serve daemon) can
     * seed() an accumulated training set before the workload runs and
     * exportSamples() the newly observed rows afterwards.
     */
    CyclePredictor &predictor() { return predictor_; }
    const CyclePredictor &predictor() const { return predictor_; }

  private:
    /** High bit marks fast-forwarded tokens apart from GpuModel tokens. */
    static constexpr uint64_t kFastBit = uint64_t(1) << 63;

    struct FastPending
    {
        cycle_t at = 0;
        uint64_t token = 0;
        bool operator>(const FastPending &o) const
        {
            return at != o.at ? at > o.at : token > o.token;
        }
    };

    timing::GpuModel *gpu_;
    func::FunctionalEngine *func_;
    TimingMode mode_;
    SamplingOptions opts_;
    stats::AerialSampler *sampler_ = nullptr;

    Clusterer clusterer_;
    CyclePredictor predictor_;

    /** Training features of in-flight detailed launches, by GpuModel token. */
    std::map<uint64_t, PredictorFeatures> detailed_x_;
    std::priority_queue<FastPending, std::vector<FastPending>,
                        std::greater<FastPending>>
        fast_pq_;
    uint64_t next_fast_token_ = 0;

    /** Sum of detailed per-launch windows: per-warp-instruction rates for
     *  estimating memory-system counters of predicted launches. */
    timing::TimingTotals detailed_accum_;

    uint64_t launches_ = 0;
    uint64_t detailed_launches_ = 0;
    uint64_t capacity_detailed_ = 0;
};

} // namespace mlgs::sample

#endif // MLGS_SAMPLE_SAMPLED_BACKEND_H
