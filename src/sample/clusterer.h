/**
 * @file
 * Online launch clusterer: launches are grouped by Signature::key() as they
 * arrive. Each cluster remembers its latest cycle-simulated representative
 * (full per-launch TimingTotals window) plus the cycles-per-warp-instruction
 * spread across every detailed sample it has seen — the error bar attached
 * to the cycles extrapolated for the cluster's fast-forwarded members.
 */
#ifndef MLGS_SAMPLE_CLUSTERER_H
#define MLGS_SAMPLE_CLUSTERER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sample/signature.h"
#include "timing/gpu.h"

namespace mlgs::sample
{

/** One signature-equivalence class of launches. */
struct Cluster
{
    uint64_t id = 0;
    Signature sig; ///< of the first member (ctas field = first member's)

    uint64_t members = 0;        ///< launches routed through this cluster
    uint64_t detailed_begun = 0; ///< routed to the cycle model (incl. in flight)
    uint64_t detailed_done = 0;  ///< detailed samples recorded
    uint64_t fast = 0;           ///< members extrapolated from the rep
    uint64_t predicted = 0;      ///< members timed by the regression model

    /** Latest completed detailed sample (the representative). */
    timing::KernelRunStats rep;
    bool has_rep = false;

    // Cycles-per-warp-instruction spread across detailed samples.
    double cpi_sum = 0.0;
    double cpi_min = 0.0;
    double cpi_max = 0.0;
    uint64_t cpi_n = 0;

    uint64_t detailed_cycles = 0;     ///< cycle-simulated cycles in-cluster
    uint64_t extrapolated_cycles = 0; ///< estimated cycles in-cluster

    double cpiMean() const { return cpi_n ? cpi_sum / double(cpi_n) : 0.0; }
    /** (max-min)/mean over detailed samples; 0 with fewer than two. */
    double cpiRelSpread() const
    {
        const double mean = cpiMean();
        return (cpi_n >= 2 && mean > 0.0) ? (cpi_max - cpi_min) / mean : 0.0;
    }
};

class Clusterer
{
  public:
    /** Find or create the cluster of one launch (requires analyzed kernel). */
    Cluster &clusterFor(const ptx::KernelDef &kernel, const Dim3 &grid,
                        const Dim3 &block);

    /** Record a completed detailed sample as the cluster's representative. */
    void recordDetailed(Cluster &cl, const timing::KernelRunStats &rs);

    /** All clusters in creation order. */
    const std::vector<std::unique_ptr<Cluster>> &clusters() const
    {
        return clusters_;
    }

  private:
    std::map<std::string, Cluster *> by_key_;
    std::vector<std::unique_ptr<Cluster>> clusters_;
};

} // namespace mlgs::sample

#endif // MLGS_SAMPLE_CLUSTERER_H
