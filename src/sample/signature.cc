#include "sample/signature.h"

#include <sstream>

namespace mlgs::sample
{

std::string
Signature::key() const
{
    std::ostringstream os;
    os << kernel_name << '|' << block.x << ',' << block.y << ',' << block.z
       << '|' << ctas_bucket << '|' << shared_bytes << ',' << local_bytes
       << ',' << param_bytes << '|' << mix.uops << ',' << mix.alu << ','
       << mix.sfu << ',' << mix.mem << ',' << mix.shared << ','
       << mix.branches << ',' << mix.divergent << ',' << mix.barriers << ','
       << mix.atomics << ',' << mix.flops;
    return os.str();
}

Signature
computeSignature(const ptx::KernelDef &kernel, const Dim3 &grid,
                 const Dim3 &block)
{
    Signature sig;
    sig.kernel_name = kernel.name;
    sig.block = block;
    sig.ctas = grid.count();
    unsigned bucket = 0;
    for (uint64_t n = sig.ctas; n > 1; n >>= 1)
        bucket++;
    sig.ctas_bucket = bucket;
    sig.shared_bytes = uint32_t(kernel.shared_bytes);
    sig.local_bytes = uint32_t(kernel.local_bytes);
    sig.param_bytes = uint32_t(kernel.param_bytes);
    sig.mix = ptx::uopMix(kernel);
    return sig;
}

} // namespace mlgs::sample
