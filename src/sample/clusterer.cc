#include "sample/clusterer.h"

#include <algorithm>

namespace mlgs::sample
{

Cluster &
Clusterer::clusterFor(const ptx::KernelDef &kernel, const Dim3 &grid,
                      const Dim3 &block)
{
    Signature sig = computeSignature(kernel, grid, block);
    const std::string key = sig.key();
    if (const auto it = by_key_.find(key); it != by_key_.end())
        return *it->second;

    auto cl = std::make_unique<Cluster>();
    cl->id = clusters_.size();
    cl->sig = std::move(sig);
    clusters_.push_back(std::move(cl));
    by_key_.emplace(key, clusters_.back().get());
    return *clusters_.back();
}

void
Clusterer::recordDetailed(Cluster &cl, const timing::KernelRunStats &rs)
{
    cl.rep = rs;
    cl.has_rep = true;
    cl.detailed_done++;
    cl.detailed_cycles += rs.cycles;
    if (rs.warp_instructions == 0)
        return; // degenerate sample; keep it as rep but not as a CPI point
    const double cpi = double(rs.cycles) / double(rs.warp_instructions);
    if (cl.cpi_n == 0) {
        cl.cpi_min = cl.cpi_max = cpi;
    } else {
        cl.cpi_min = std::min(cl.cpi_min, cpi);
        cl.cpi_max = std::max(cl.cpi_max, cpi);
    }
    cl.cpi_sum += cpi;
    cl.cpi_n++;
}

} // namespace mlgs::sample
