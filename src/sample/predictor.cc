#include "sample/predictor.h"

#include <algorithm>
#include <cmath>

namespace mlgs::sample
{

namespace
{

constexpr size_t kN = PredictorFeatures::kCount;

using Mat = std::array<std::array<double, kN>, kN>;
using Vec = std::array<double, kN>;

/** Solve A w = b by Gaussian elimination with partial pivoting. */
bool
solve(Mat a, Vec b, Vec &w)
{
    for (size_t col = 0; col < kN; col++) {
        size_t piv = col;
        for (size_t r = col + 1; r < kN; r++)
            if (std::fabs(a[r][col]) > std::fabs(a[piv][col]))
                piv = r;
        if (std::fabs(a[piv][col]) < 1e-12)
            return false;
        std::swap(a[col], a[piv]);
        std::swap(b[col], b[piv]);
        for (size_t r = col + 1; r < kN; r++) {
            const double m = a[r][col] / a[col][col];
            if (m == 0.0)
                continue;
            for (size_t c = col; c < kN; c++)
                a[r][c] -= m * a[col][c];
            b[r] -= m * b[col];
        }
    }
    for (size_t col = kN; col-- > 0;) {
        double acc = b[col];
        for (size_t c = col + 1; c < kN; c++)
            acc -= a[col][c] * w[c];
        w[col] = acc / a[col][col];
    }
    return true;
}

double
dot(const Vec &w, const PredictorFeatures &x)
{
    double acc = 0.0;
    for (size_t i = 0; i < kN; i++)
        acc += w[i] * x.f[i];
    return acc;
}

double
safeLog(double v)
{
    return std::log(std::max(v, 1e-12));
}

} // namespace

PredictorFeatures
makeFeatures(const Signature &sig)
{
    const uint64_t warps_per_cta = (uint64_t(sig.block.count()) + 31) / 32;
    const double uops = std::max<double>(double(sig.mix.uops), 1.0);
    PredictorFeatures x;
    x.f[0] = 1.0; // intercept
    x.f[1] = safeLog(double(std::max<uint64_t>(sig.ctas, 1)));
    x.f[2] = safeLog(double(std::max<uint64_t>(warps_per_cta, 1)));
    x.f[3] = safeLog(uops); // static program length
    x.f[4] = double(sig.mix.mem) / uops;
    x.f[5] = double(sig.mix.sfu) / uops;
    x.f[6] = double(sig.mix.shared) / uops;
    x.f[7] = double(sig.mix.divergent + sig.mix.barriers) / uops;
    return x;
}

void
CyclePredictor::addSample(const PredictorFeatures &x, double cycles,
                          double warp_instrs)
{
    if (cycles <= 0.0 || warp_instrs <= 0.0)
        return;
    xs_.push_back(x);
    ys_.push_back(safeLog(cycles / warp_instrs));
    dirty_ = true;
}

void
CyclePredictor::seed(const TrainingSet &set)
{
    MLGS_REQUIRE(set.xs.size() == set.ys.size(),
                 "predictor training set rows are inconsistent: ",
                 set.xs.size(), " feature rows vs ", set.ys.size(),
                 " targets");
    xs_.insert(xs_.begin(), set.xs.begin(), set.xs.end());
    ys_.insert(ys_.begin(), set.ys.begin(), set.ys.end());
    dirty_ = true;
}

void
CyclePredictor::exportSamples(TrainingSet &out, size_t from) const
{
    for (size_t i = std::min(from, xs_.size()); i < xs_.size(); i++)
        out.append(xs_[i], ys_[i]);
}

// ---- TrainingSet serialization ----

namespace
{
constexpr uint64_t kPredictorMagic = 0x4445525053474c4dull; // "MLGSPRED"
constexpr uint32_t kPredictorVersion = 1;
} // namespace

void
TrainingSet::save(BinaryWriter &w) const
{
    w.putHeader(kPredictorMagic, kPredictorVersion);
    w.put<uint32_t>(uint32_t(PredictorFeatures::kCount));
    w.put<uint64_t>(xs.size());
    for (size_t i = 0; i < xs.size(); i++) {
        for (const double f : xs[i].f)
            w.put<double>(f);
        w.put<double>(ys[i]);
    }
}

void
TrainingSet::load(BinaryReader &r)
{
    xs.clear();
    ys.clear();
    r.readHeader(kPredictorMagic, kPredictorVersion, kPredictorVersion,
                 "predictor training set");
    const auto kcount = r.get<uint32_t>();
    MLGS_REQUIRE(kcount == PredictorFeatures::kCount,
                 "predictor training set in ", r.name(), " has ", kcount,
                 " features per row; this build uses ",
                 PredictorFeatures::kCount);
    const auto n = r.get<uint64_t>();
    for (uint64_t i = 0; i < n; i++) {
        PredictorFeatures x;
        for (auto &f : x.f)
            f = r.get<double>();
        append(x, r.get<double>());
    }
}

void
TrainingSet::saveFile(const std::string &path) const
{
    BinaryWriter w;
    save(w);
    w.writeFile(path);
}

TrainingSet
TrainingSet::loadFile(const std::string &path)
{
    BinaryReader r = BinaryReader::fromFile(path);
    TrainingSet set;
    set.load(r);
    return set;
}

bool
CyclePredictor::inEnvelope(const PredictorFeatures &x) const
{
    for (size_t i = 0; i < kN; i++) {
        const double mn = env_min_[i], mx = env_max_[i];
        const double range = mx - mn;
        const double margin =
            opts_.predictor_envelope_slack *
            (range > 0.0 ? range : std::max(1.0, std::fabs(mn)));
        if (x.f[i] < mn - margin || x.f[i] > mx + margin)
            return false;
    }
    return true;
}

bool
CyclePredictor::fitIfNeeded()
{
    if (!dirty_)
        return fit_ok_;
    dirty_ = false;
    fit_ok_ = false;
    status_.trained = false;
    status_.n_train = xs_.size();
    if (xs_.size() < std::max<size_t>(opts_.predictor_min_train, kN + 1))
        return false;

    // Normal equations accumulated once; leave-one-out below downdates them
    // per held-out row instead of rebuilding from scratch.
    Mat xtx{};
    Vec xty{};
    for (size_t s = 0; s < xs_.size(); s++) {
        for (size_t i = 0; i < kN; i++) {
            xty[i] += xs_[s].f[i] * ys_[s];
            for (size_t j = 0; j < kN; j++)
                xtx[i][j] += xs_[s].f[i] * xs_[s].f[j];
        }
    }
    const double lambda = opts_.predictor_lambda;
    Mat ridge = xtx;
    for (size_t i = 0; i < kN; i++)
        ridge[i][i] += lambda;
    if (!solve(ridge, xty, w_))
        return false;

    // Leave-one-out cross-validation in the cycles domain.
    double err_sum = 0.0;
    size_t err_n = 0;
    for (size_t s = 0; s < xs_.size(); s++) {
        Mat a = xtx;
        Vec b = xty;
        for (size_t i = 0; i < kN; i++) {
            b[i] -= xs_[s].f[i] * ys_[s];
            for (size_t j = 0; j < kN; j++)
                a[i][j] -= xs_[s].f[i] * xs_[s].f[j];
            a[i][i] += lambda;
        }
        Vec w_loo{};
        if (!solve(a, b, w_loo))
            continue;
        err_sum += std::fabs(std::exp(dot(w_loo, xs_[s]) - ys_[s]) - 1.0);
        err_n++;
    }
    if (err_n == 0)
        return false;
    status_.cv_rel_err = err_sum / double(err_n);
    if (status_.cv_rel_err > opts_.predictor_max_cv_rel_err)
        return false;

    for (size_t i = 0; i < kN; i++) {
        env_min_[i] = env_max_[i] = xs_[0].f[i];
        for (const auto &x : xs_) {
            env_min_[i] = std::min(env_min_[i], x.f[i]);
            env_max_[i] = std::max(env_max_[i], x.f[i]);
        }
    }
    fit_ok_ = true;
    status_.trained = true;
    return true;
}

std::optional<double>
CyclePredictor::predictCpi(const PredictorFeatures &x)
{
    const bool had_enough = xs_.size() >=
                            std::max<size_t>(opts_.predictor_min_train, kN + 1);
    if (!fitIfNeeded()) {
        if (!had_enough)
            status_.declined_untrained++;
        else
            status_.declined_cv++;
        return std::nullopt;
    }
    if (!inEnvelope(x)) {
        status_.declined_envelope++;
        return std::nullopt;
    }
    return std::exp(dot(w_, x));
}

} // namespace mlgs::sample
