/**
 * @file
 * GPUWattch-lite: event-energy power model producing the paper's six-way
 * average-power breakdown (Core, L1, L2, NOC, DRAM, Idle — Fig 8).
 */
#ifndef MLGS_POWER_POWER_MODEL_H
#define MLGS_POWER_POWER_MODEL_H

#include <string>

#include "timing/gpu.h"

namespace mlgs::power
{

/** Average power per component in watts. */
struct PowerBreakdown
{
    double core_w = 0;
    double l1_w = 0;
    double l2_w = 0;
    double noc_w = 0;
    double dram_w = 0;
    double idle_w = 0;

    double
    total() const
    {
        return core_w + l1_w + l2_w + noc_w + dram_w + idle_w;
    }

    std::string str() const;
};

/** Per-event energies (nJ) and static powers (W). */
struct PowerParams
{
    // Dynamic energy per event, in nanojoules.
    double alu_thread_nj = 0.06;    ///< per thread ALU op
    double sfu_thread_nj = 0.24;    ///< per thread SFU op
    double shared_access_nj = 0.05; ///< per lane shared access
    double l1_access_nj = 0.08;     ///< per L1 line access
    double l2_access_nj = 0.25;     ///< per L2 line access
    double noc_flit_nj = 0.05;      ///< per 32B flit
    double dram_access_nj = 12.0;   ///< per 128B DRAM burst
    double dram_row_act_nj = 4.0;   ///< extra per row activation

    // Static power, in watts.
    double base_static_w = 6.5;     ///< always-on (PLLs, IO, fans share)
    double core_static_w = 1.6;     ///< per core, split active/idle
    double dram_static_w = 1.5;     ///< DRAM background

    // Active-core overhead beyond per-instruction energy (clock tree etc.).
    double core_active_w = 4.5;     ///< per actively-running core
};

/** Computes the average-power breakdown of a timing run. */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params = PowerParams{}) : params_(params) {}

    /**
     * @param totals counters accumulated over the run
     * @param clock_ghz core clock used to turn cycles into seconds
     */
    PowerBreakdown compute(const timing::TimingTotals &totals,
                           double clock_ghz) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace mlgs::power

#endif // MLGS_POWER_POWER_MODEL_H
