#include "power/power_model.h"

#include <sstream>

#include "common/log.h"

namespace mlgs::power
{

std::string
PowerBreakdown::str() const
{
    std::ostringstream os;
    os.precision(3);
    os << "core " << core_w << " W, L1 " << l1_w << " W, L2 " << l2_w
       << " W, NOC " << noc_w << " W, DRAM " << dram_w << " W, idle " << idle_w
       << " W (total " << total() << " W)";
    return os.str();
}

PowerBreakdown
PowerModel::compute(const timing::TimingTotals &t, double clock_ghz) const
{
    MLGS_REQUIRE(clock_ghz > 0, "clock must be positive");
    PowerBreakdown pb;
    if (t.cycles == 0)
        return pb;
    const double secs = double(t.cycles) / (clock_ghz * 1e9);
    const double nj = 1e-9;

    // Thread-level ALU/SFU mix: apportion thread instructions by the warp
    // instruction mix.
    const double warp_total = double(t.alu + t.sfu + t.mem_insts);
    const double alu_frac = warp_total ? double(t.alu) / warp_total : 1.0;
    const double sfu_frac = warp_total ? double(t.sfu) / warp_total : 0.0;
    const double alu_threads = double(t.thread_instructions) * alu_frac;
    const double sfu_threads = double(t.thread_instructions) * sfu_frac;

    const double total_cycles_all_cores =
        double(t.core_active_cycles + t.core_idle_cycles);
    const double active_frac =
        total_cycles_all_cores
            ? double(t.core_active_cycles) / total_cycles_all_cores
            : 0.0;
    const double num_cores =
        t.cycles ? total_cycles_all_cores / double(t.cycles) : 0.0;

    // Core: dynamic instruction energy + active-core static share.
    pb.core_w = (alu_threads * params_.alu_thread_nj +
                 sfu_threads * params_.sfu_thread_nj +
                 double(t.shared_accesses) * params_.shared_access_nj) *
                    nj / secs +
                params_.core_active_w * num_cores * active_frac +
                params_.core_static_w * num_cores * active_frac;

    pb.l1_w = double(t.l1_hits + t.l1_misses) * params_.l1_access_nj * nj / secs;
    pb.l2_w = double(t.l2_hits + t.l2_misses) * params_.l2_access_nj * nj / secs;
    pb.noc_w = double(t.icnt_flits) * params_.noc_flit_nj * nj / secs;
    pb.dram_w = (double(t.dram_reads + t.dram_writes) * params_.dram_access_nj +
                 double(t.dram_row_misses) * params_.dram_row_act_nj) *
                    nj / secs +
                params_.dram_static_w;

    // Idle: baseline static plus the idle share of core static power.
    pb.idle_w = params_.base_static_w +
                params_.core_static_w * num_cores * (1.0 - active_frac);
    return pb;
}

} // namespace mlgs::power
