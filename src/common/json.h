/**
 * @file
 * Byte-deterministic JSON number formatting. Stats JSON is a cache value in
 * the serve subsystem (a cache hit must byte-match the cold run that produced
 * it) and a CI diff artifact (live vs replayed runs are compared with cmp),
 * so doubles must render identically across runs, compilers, and standard
 * libraries. std::to_chars with no precision argument is specified to emit
 * the shortest string that round-trips the exact value — a pure function of
 * the bits, unlike ostream formatting (locale, precision state) or printf
 * %.Nf (rounded, so distinct values can collide and trailing digits depend
 * on the libc's rounding of inexact decimals).
 */
#ifndef MLGS_COMMON_JSON_H
#define MLGS_COMMON_JSON_H

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>

namespace mlgs
{

/**
 * Shortest round-trip decimal rendering of a double, valid as a JSON number.
 * Non-finite values (JSON has no spelling for them) render as 0 with a
 * distinguishing sign: "-0" for -inf/nan, "0" for +inf — callers that can
 * produce them should gate on std::isfinite themselves.
 */
inline std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return std::signbit(v) ? "-0" : "0";
    char buf[64];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    std::string s(buf, res.ptr);
#else
    // %.17g also round-trips doubles, just with more digits than needed.
    std::snprintf(buf, sizeof buf, "%.17g", v);
    std::string s(buf);
#endif
    // to_chars may emit "1e+05" style exponents; that is valid JSON. But a
    // bare integer mantissa like "42" is also valid, so nothing to fix up.
    return s;
}

} // namespace mlgs

#endif // MLGS_COMMON_JSON_H
