/**
 * @file
 * Minimal binary serializer used by the checkpointing and trace subsystems.
 * Streams are tagged with a magic/version header and are byte-order-naive
 * (checkpoints and traces are machine-local artifacts, matching GPGPU-Sim's
 * checkpoint files).
 *
 * Every get*() bounds-checks against the remaining bytes — a truncated or
 * corrupt file fails with a clear FatalError naming the stream instead of
 * reading garbage. Length prefixes are validated overflow-safely: a corrupt
 * 64-bit count can not wrap the cursor past the end of the buffer.
 */
#ifndef MLGS_COMMON_SERIALIZE_H
#define MLGS_COMMON_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/log.h"

namespace mlgs
{

/** Append-only byte sink with typed put() helpers. */
class BinaryWriter
{
  public:
    template <typename T>
    void
    put(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const uint8_t *>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    /** Magic + format-version prefix; pair with BinaryReader::readHeader. */
    void
    putHeader(uint64_t magic, uint32_t version)
    {
        put<uint64_t>(magic);
        put<uint32_t>(version);
    }

    void
    putString(const std::string &s)
    {
        put<uint64_t>(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        put<uint64_t>(v.size());
        if (v.empty())
            return; // empty vector has no storage; nullptr range is UB
        const auto *p = reinterpret_cast<const uint8_t *>(v.data());
        buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }

    void
    putBytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<uint8_t> &bytes() const { return buf_; }

    /** Write the accumulated bytes to a file; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<uint8_t> buf_;
};

/** Sequential reader over a byte buffer with typed get() helpers. */
class BinaryReader
{
  public:
    explicit BinaryReader(std::vector<uint8_t> bytes,
                          std::string name = "stream")
        : buf_(std::move(bytes)), name_(std::move(name))
    {
    }

    /** Load a whole file; fatal() if it cannot be read. */
    static BinaryReader fromFile(const std::string &path);

    /**
     * Validate a putHeader() prefix: the magic must match and the version
     * must lie in [min_version, max_version]. Returns the stored version.
     * `what` names the expected artifact kind in error messages
     * ("checkpoint", "trace", ...).
     */
    uint32_t
    readHeader(uint64_t magic, uint32_t min_version, uint32_t max_version,
               const char *what)
    {
        MLGS_REQUIRE(remaining() >= sizeof(uint64_t) + sizeof(uint32_t),
                     "not a ", what, " file: ", name_,
                     " is too short to hold a header");
        const auto got = get<uint64_t>();
        MLGS_REQUIRE(got == magic, "not a ", what, " file: ", name_,
                     " has magic ", got, ", expected ", magic);
        const auto version = get<uint32_t>();
        MLGS_REQUIRE(version >= min_version && version <= max_version,
                     "unsupported ", what, " version ", version, " in ", name_,
                     " (this build reads versions ", min_version, "..",
                     max_version, ")");
        return version;
    }

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        need(sizeof(T), "value");
        T v;
        std::memcpy(&v, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::string
    getString()
    {
        const auto n = get<uint64_t>();
        need(n, "string payload");
        std::string s(reinterpret_cast<const char *>(buf_.data() + pos_), n);
        pos_ += n;
        return s;
    }

    template <typename T>
    std::vector<T>
    getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto n = get<uint64_t>();
        // Divide instead of multiplying: n * sizeof(T) could wrap and pass a
        // naive comparison, making a corrupt count look satisfiable.
        MLGS_REQUIRE(n <= remaining() / sizeof(T), "corrupt or truncated ",
                     name_, ": vector of ", n, " x ", sizeof(T),
                     " bytes exceeds the ", remaining(), " bytes remaining");
        std::vector<T> v(n);
        if (n) // empty vector has no storage; memcpy(nullptr, ..) is UB
            std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
        pos_ += n * sizeof(T);
        return v;
    }

    void
    getBytes(void *out, size_t n)
    {
        need(n, "raw bytes");
        std::memcpy(out, buf_.data() + pos_, n);
        pos_ += n;
    }

    /** Bytes not yet consumed. */
    size_t remaining() const { return buf_.size() - pos_; }

    bool atEnd() const { return pos_ == buf_.size(); }

    const std::string &name() const { return name_; }

  private:
    void
    need(uint64_t n, const char *what)
    {
        MLGS_REQUIRE(n <= remaining(), "corrupt or truncated ", name_,
                     ": reading ", what, " of ", n, " bytes with only ",
                     remaining(), " remaining");
    }

    std::vector<uint8_t> buf_;
    std::string name_;
    size_t pos_ = 0;
};

} // namespace mlgs

#endif // MLGS_COMMON_SERIALIZE_H
