/**
 * @file
 * Minimal binary serializer used by the checkpointing subsystem. Streams are
 * tagged with a magic/version header and are byte-order-naive (checkpoints
 * are machine-local artifacts, matching GPGPU-Sim's checkpoint files).
 */
#ifndef MLGS_COMMON_SERIALIZE_H
#define MLGS_COMMON_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/log.h"

namespace mlgs
{

/** Append-only byte sink with typed put() helpers. */
class BinaryWriter
{
  public:
    template <typename T>
    void
    put(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const uint8_t *>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    void
    putString(const std::string &s)
    {
        put<uint64_t>(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        put<uint64_t>(v.size());
        const auto *p = reinterpret_cast<const uint8_t *>(v.data());
        buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }

    void
    putBytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<uint8_t> &bytes() const { return buf_; }

    /** Write the accumulated bytes to a file; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<uint8_t> buf_;
};

/** Sequential reader over a byte buffer with typed get() helpers. */
class BinaryReader
{
  public:
    explicit BinaryReader(std::vector<uint8_t> bytes) : buf_(std::move(bytes)) {}

    /** Load a whole file; fatal() if it cannot be read. */
    static BinaryReader fromFile(const std::string &path);

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        MLGS_REQUIRE(pos_ + sizeof(T) <= buf_.size(), "checkpoint truncated");
        T v;
        std::memcpy(&v, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::string
    getString()
    {
        const auto n = get<uint64_t>();
        MLGS_REQUIRE(pos_ + n <= buf_.size(), "checkpoint truncated");
        std::string s(reinterpret_cast<const char *>(buf_.data() + pos_), n);
        pos_ += n;
        return s;
    }

    template <typename T>
    std::vector<T>
    getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto n = get<uint64_t>();
        MLGS_REQUIRE(pos_ + n * sizeof(T) <= buf_.size(), "checkpoint truncated");
        std::vector<T> v(n);
        std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
        pos_ += n * sizeof(T);
        return v;
    }

    void
    getBytes(void *out, size_t n)
    {
        MLGS_REQUIRE(pos_ + n <= buf_.size(), "checkpoint truncated");
        std::memcpy(out, buf_.data() + pos_, n);
        pos_ += n;
    }

    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
};

} // namespace mlgs

#endif // MLGS_COMMON_SERIALIZE_H
