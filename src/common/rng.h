/**
 * @file
 * Deterministic pseudo-random generator (splitmix64 + xoshiro256**) used for
 * synthetic workload/data generation. std::mt19937 is avoided so streams are
 * stable across library implementations.
 */
#ifndef MLGS_COMMON_RNG_H
#define MLGS_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace mlgs
{

/** Small deterministic RNG with uniform/normal helpers. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Reset the stream from a seed via splitmix64 expansion. */
    void
    reseed(uint64_t seed)
    {
        for (auto &w : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            w = z ^ (z >> 31);
        }
        has_gauss_ = false;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return double(next() >> 11) * (1.0 / 9007199254740992.0); }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + float(uniform()) * (hi - lo);
    }

    /** Uniform integer in [0, n). */
    uint64_t
    below(uint64_t n)
    {
        return n ? next() % n : 0;
    }

    /** Standard normal via Marsaglia polar method. */
    double
    gauss()
    {
        if (has_gauss_) {
            has_gauss_ = false;
            return gauss_;
        }
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        gauss_ = v * m;
        has_gauss_ = true;
        return u * m;
    }

  private:
    static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    uint64_t state_[4] = {};
    bool has_gauss_ = false;
    double gauss_ = 0.0;
};

} // namespace mlgs

#endif // MLGS_COMMON_RNG_H
