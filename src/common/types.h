/**
 * @file
 * Fundamental value types shared by every MLGPUSim subsystem.
 */
#ifndef MLGS_COMMON_TYPES_H
#define MLGS_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace mlgs
{

/** Device (GPU) virtual address. */
using addr_t = uint64_t;

/** Simulation cycle count. */
using cycle_t = uint64_t;

/** CUDA-style 3-component extent/index. */
struct Dim3
{
    uint32_t x = 1;
    uint32_t y = 1;
    uint32_t z = 1;

    Dim3() = default;
    Dim3(uint32_t xx, uint32_t yy = 1, uint32_t zz = 1) : x(xx), y(yy), z(zz) {}

    /** Total number of elements covered by this extent. */
    uint64_t count() const { return uint64_t(x) * y * z; }

    bool operator==(const Dim3 &o) const { return x == o.x && y == o.y && z == o.z; }

    std::string str() const
    {
        return "(" + std::to_string(x) + "," + std::to_string(y) + "," +
               std::to_string(z) + ")";
    }
};

/** Linearize a 3D index within an extent (x fastest). */
inline uint64_t
flatten(const Dim3 &idx, const Dim3 &extent)
{
    return uint64_t(idx.z) * extent.y * extent.x + uint64_t(idx.y) * extent.x + idx.x;
}

/** Inverse of flatten(). */
inline Dim3
unflatten(uint64_t flat, const Dim3 &extent)
{
    Dim3 idx;
    idx.x = uint32_t(flat % extent.x);
    idx.y = uint32_t((flat / extent.x) % extent.y);
    idx.z = uint32_t(flat / (uint64_t(extent.x) * extent.y));
    return idx;
}

/** Warp width used throughout the simulator (NVIDIA-style). */
constexpr unsigned kWarpSize = 32;

/** Bit mask with one bit per lane in a warp. */
using warp_mask_t = uint32_t;

constexpr warp_mask_t kFullWarpMask = 0xffffffffu;

} // namespace mlgs

#endif // MLGS_COMMON_TYPES_H
