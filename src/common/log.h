/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */
#ifndef MLGS_COMMON_LOG_H
#define MLGS_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mlgs
{

/** Thrown by fatal(): the simulated program / user configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/** Abort simulation: condition that is the user's/workload's fault. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::concat("fatal: ", args...));
}

/** Abort simulation: condition that indicates a simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::concat("panic: ", args...));
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n", detail::concat(args...).c_str());
}

/** Status message to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n", detail::concat(args...).c_str());
}

/** fatal() unless cond holds. */
#define MLGS_REQUIRE(cond, ...)                                               \
    do {                                                                      \
        if (!(cond))                                                          \
            ::mlgs::fatal(__VA_ARGS__);                                       \
    } while (0)

/** panic() unless cond holds. */
#define MLGS_ASSERT(cond, ...)                                                \
    do {                                                                      \
        if (!(cond))                                                          \
            ::mlgs::panic(__VA_ARGS__);                                       \
    } while (0)

} // namespace mlgs

#endif // MLGS_COMMON_LOG_H
