#include "common/thread_pool.h"

#include <cstdlib>
#include <string>

namespace mlgs
{

namespace
{

// Spin this many epoch checks before a worker goes to sleep on the condvar.
// The timing model issues one job per simulated cycle, so between jobs the
// gap is typically far shorter than a sleep/wake round trip.
constexpr unsigned kSpinLimit = 1u << 14;

// Safety cap: more threads than this is never useful for this simulator.
constexpr unsigned kMaxThreads = 256;

} // namespace

unsigned
ThreadPool::resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return std::min(requested, kMaxThreads);
    if (const char *env = std::getenv("MLGS_SIM_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return unsigned(std::min<unsigned long>(v, kMaxThreads));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? std::min(hw, kMaxThreads) : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads > kMaxThreads)
        threads = kMaxThreads;
    for (unsigned w = 1; w < std::max(threads, 1u); w++)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true);
    {
        std::lock_guard<std::mutex> lk(mu_);
        cv_.notify_all();
    }
    // Wake spinners too: the epoch bump makes them re-check stop_.
    epoch_.fetch_add(1);
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::runShard(unsigned worker)
{
    const auto &body = *body_;
    const uint64_t n = total_;
    while (!failed_.load(std::memory_order_relaxed)) {
        const uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        try {
            body(i, worker);
        } catch (...) {
            if (!failed_.exchange(true))
                first_error_ = std::current_exception();
            break;
        }
    }
}

void
ThreadPool::workerLoop(unsigned worker)
{
    uint64_t seen = 0;
    while (true) {
        unsigned spins = 0;
        while (true) {
            const uint64_t e = epoch_.load();
            if (stop_.load())
                return;
            if (e != seen) {
                seen = e;
                break;
            }
            if (++spins < kSpinLimit) {
                continue;
            }
            std::unique_lock<std::mutex> lk(mu_);
            sleepers_.fetch_add(1);
            cv_.wait(lk, [&] {
                return stop_.load() || epoch_.load() != seen;
            });
            sleepers_.fetch_sub(1);
            spins = 0;
        }
        if (stop_.load())
            return;
        runShard(worker);
        pending_.fetch_sub(1, std::memory_order_release);
    }
}

void
ThreadPool::parallelFor(uint64_t n,
                        const std::function<void(uint64_t, unsigned)> &body)
{
    if (workers_.empty() || n <= 1) {
        for (uint64_t i = 0; i < n; i++)
            body(i, 0);
        return;
    }

    body_ = &body;
    total_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    pending_.store(unsigned(workers_.size()), std::memory_order_relaxed);
    epoch_.fetch_add(1); // publish (seq_cst pairs with the sleepers_ check)
    if (sleepers_.load() > 0) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_.notify_all();
    }

    runShard(0);

    // Workers still draining indices; help by just waiting (each remaining
    // index is claimed exactly once via next_).
    unsigned spins = 0;
    while (pending_.load(std::memory_order_acquire) > 0) {
        if (++spins >= kSpinLimit) {
            std::this_thread::yield();
            spins = 0;
        }
    }
    body_ = nullptr;

    if (first_error_)
        std::rethrow_exception(first_error_);
}

} // namespace mlgs
