/**
 * @file
 * Software IEEE-754 binary16 conversion, used by the FP16 PTX path
 * (cvt.f16.f32 / cvt.f32.f16 and f16 arithmetic emulated through f32).
 */
#ifndef MLGS_COMMON_FP16_H
#define MLGS_COMMON_FP16_H

#include <cstdint>

namespace mlgs
{

/** Convert an IEEE binary32 value to binary16 bits (round-to-nearest-even). */
uint16_t fp32ToFp16(float f);

/** Convert binary16 bits to an IEEE binary32 value. */
float fp16ToFp32(uint16_t h);

} // namespace mlgs

#endif // MLGS_COMMON_FP16_H
