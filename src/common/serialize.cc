#include "common/serialize.h"

#include <cstdio>

namespace mlgs
{

void
BinaryWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    MLGS_REQUIRE(f, "cannot open ", path, " for writing");
    const size_t n = std::fwrite(buf_.data(), 1, buf_.size(), f);
    std::fclose(f);
    MLGS_REQUIRE(n == buf_.size(), "short write to ", path);
}

BinaryReader
BinaryReader::fromFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    MLGS_REQUIRE(f, "cannot open ", path, " for reading");
    std::fseek(f, 0, SEEK_END);
    const size_t sz = size_t(std::ftell(f));
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(sz, 0);
    const size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    MLGS_REQUIRE(n == bytes.size(), "short read from ", path);
    return BinaryReader(std::move(bytes), path);
}

} // namespace mlgs
