#include "common/fp16.h"

#include <cmath>
#include <cstring>

namespace mlgs
{

uint16_t
fp32ToFp16(float f)
{
    uint32_t x;
    std::memcpy(&x, &f, sizeof(x));

    const uint32_t sign = (x >> 16) & 0x8000u;
    const int32_t exp = int32_t((x >> 23) & 0xffu) - 127 + 15;
    uint32_t mant = x & 0x7fffffu;

    if (((x >> 23) & 0xffu) == 0xffu) {
        // Inf / NaN.
        if (mant != 0)
            return uint16_t(sign | 0x7e00u); // quiet NaN
        return uint16_t(sign | 0x7c00u);
    }

    if (exp >= 0x1f) {
        // Overflow -> infinity.
        return uint16_t(sign | 0x7c00u);
    }

    if (exp <= 0) {
        // Subnormal or zero in fp16.
        if (exp < -10)
            return uint16_t(sign);
        mant |= 0x800000u; // implicit leading one
        const int shift = 14 - exp; // bits to drop to reach 10-bit mantissa
        uint32_t half = mant >> shift;
        const uint32_t rem = mant & ((1u << shift) - 1);
        const uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            half++;
        return uint16_t(sign | half);
    }

    // Normal case: round 23-bit mantissa to 10 bits, round-to-nearest-even.
    uint32_t half = (uint32_t(exp) << 10) | (mant >> 13);
    const uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
        half++; // may carry into exponent; that is correct behaviour
    return uint16_t(sign | half);
}

float
fp16ToFp32(uint16_t h)
{
    const uint32_t sign = uint32_t(h & 0x8000u) << 16;
    const uint32_t exp = (h >> 10) & 0x1fu;
    const uint32_t mant = h & 0x3ffu;

    uint32_t x;
    if (exp == 0) {
        if (mant == 0) {
            x = sign; // signed zero
        } else {
            // Subnormal: normalize.
            int e = -1;
            uint32_t m = mant;
            do {
                e++;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            x = sign | (uint32_t(127 - 15 - e) << 23) | ((m & 0x3ffu) << 13);
        }
    } else if (exp == 0x1f) {
        x = sign | 0x7f800000u | (mant << 13);
    } else {
        x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }

    float f;
    std::memcpy(&f, &x, sizeof(f));
    return f;
}

} // namespace mlgs
