/**
 * @file
 * Fixed-size worker pool with a parallelFor primitive, shared by the
 * functional engine (CTA fan-out) and the timing model (per-cycle core
 * sharding). Designed for very frequent, very short parallel regions: the
 * timing model invokes parallelFor once per simulated cycle, so workers
 * spin briefly on an epoch counter before falling back to a condition
 * variable, and the calling thread participates as worker 0.
 *
 * parallelFor is a plain fork-join: indices are handed out with an atomic
 * counter (dynamic chunking, chunk size 1) and the call returns only after
 * every index has been processed. Determinism is the caller's problem —
 * the pool guarantees each index runs exactly once and reports a stable
 * worker id in [0, threadCount()) so callers can shard side effects and
 * merge them in a fixed order afterwards.
 */
#ifndef MLGS_COMMON_THREAD_POOL_H
#define MLGS_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlgs
{

/** Fixed pool of worker threads executing parallelFor bodies. */
class ThreadPool
{
  public:
    /**
     * Resolve a requested thread count: a nonzero request wins; 0 means
     * "auto" — the MLGS_SIM_THREADS environment variable if set, otherwise
     * the hardware concurrency. Always returns at least 1.
     */
    static unsigned resolveThreadCount(unsigned requested);

    /** threads = total workers including the calling thread (min 1). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers including the caller. 1 = everything runs inline. */
    unsigned threadCount() const { return unsigned(workers_.size()) + 1; }

    /**
     * Run body(index, worker) for every index in [0, n), potentially in
     * parallel, and return once all indices completed. worker is a stable
     * id in [0, threadCount()); the calling thread is worker 0. If any
     * body throws, remaining indices are skipped and the first exception
     * is rethrown on the calling thread. Not reentrant.
     */
    void parallelFor(uint64_t n, const std::function<void(uint64_t, unsigned)> &body);

  private:
    void workerLoop(unsigned worker);
    void runShard(unsigned worker);

    std::vector<std::thread> workers_;

    // Job descriptor for the current parallelFor invocation.
    const std::function<void(uint64_t, unsigned)> *body_ = nullptr;
    uint64_t total_ = 0;
    std::atomic<uint64_t> next_{0};    ///< next index to hand out
    std::atomic<unsigned> pending_{0}; ///< workers still inside the job
    std::atomic<uint64_t> epoch_{0};   ///< bumped to publish a new job
    std::atomic<bool> stop_{false};

    std::atomic<bool> failed_{false};  ///< a body threw; drain remaining
    std::exception_ptr first_error_;

    // Sleep path for workers that spun too long between jobs.
    std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<unsigned> sleepers_{0};
};

} // namespace mlgs

#endif // MLGS_COMMON_THREAD_POOL_H
