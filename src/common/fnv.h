/**
 * @file
 * FNV-1a hashing shared by the trace blob store (payload deduplication), the
 * trace content hash, and the serve result cache (content-addressed keys).
 * 64-bit, byte-order-naive like the serializers that use it: hashes are
 * machine-local identities, not portable digests.
 */
#ifndef MLGS_COMMON_FNV_H
#define MLGS_COMMON_FNV_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace mlgs
{

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Incremental FNV-1a accumulator. */
class Fnv1a
{
  public:
    Fnv1a &
    addBytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; i++) {
            h_ ^= p[i];
            h_ *= kFnvPrime;
        }
        return *this;
    }

    /** Hash a trivially-copyable value's object representation. */
    template <typename T>
    Fnv1a &
    add(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return addBytes(&v, sizeof(T));
    }

    /** Length-prefixed string hash (so "ab","c" != "a","bc"). */
    Fnv1a &
    addString(const std::string &s)
    {
        add<uint64_t>(s.size());
        return addBytes(s.data(), s.size());
    }

    uint64_t hash() const { return h_; }

  private:
    uint64_t h_ = kFnvOffsetBasis;
};

/** One-shot FNV-1a over a byte range. */
inline uint64_t
fnv1a(const void *data, size_t n)
{
    return Fnv1a().addBytes(data, n).hash();
}

} // namespace mlgs

#endif // MLGS_COMMON_FNV_H
