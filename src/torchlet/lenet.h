/**
 * @file
 * LeNet for MNIST on the simulated GPU — the paper's headline workload
 * (NVIDIA's cuDNN MNIST sample trained LeNet, Section IV). Architecture:
 * conv1(1->20,5x5) -> pool -> LRN -> conv2(20->50,5x5) -> pool ->
 * fc1(800->500) -> ReLU -> fc2(500->10) -> softmax, covering the kernel mix
 * of Fig 7 (FFT kernels, CGEMM, Winograd, GEMV2T, LRN).
 */
#ifndef MLGS_TORCHLET_LENET_H
#define MLGS_TORCHLET_LENET_H

#include "torchlet/modules.h"

namespace mlgs::torchlet
{

/** Host-side weight snapshot. */
struct LeNetWeights
{
    std::vector<float> conv1_w, conv1_b;
    std::vector<float> conv2_w, conv2_b;
    std::vector<float> fc1_w, fc1_b;
    std::vector<float> fc2_w, fc2_b;
};

/** Per-layer algorithm selection (the MNIST runs sweep these). */
struct LeNetAlgos
{
    cudnn::ConvFwdAlgo conv1 = cudnn::ConvFwdAlgo::Fft;
    cudnn::ConvFwdAlgo conv2 = cudnn::ConvFwdAlgo::WinogradNonfused;
    cudnn::ConvBwdDataAlgo bwd_data = cudnn::ConvBwdDataAlgo::Algo1;
    cudnn::ConvBwdFilterAlgo bwd_filter = cudnn::ConvBwdFilterAlgo::Algo1;
    bool fc2_gemv2t = true; ///< use the GEMV2T kernel for batch-1 inference
};

/** The network, instantiated for a fixed batch size. */
class LeNet
{
  public:
    LeNet(cudnn::CudnnHandle &h, int batch, const LeNetAlgos &algos,
          uint64_t seed = 1);

    int batch() const { return batch_; }

    /** Forward pass; returns softmax probabilities (batch x 10, host). */
    std::vector<float> forward(const float *images);

    /** Argmax predictions for a batch. */
    std::vector<int> predict(const float *images);

    /** One SGD step (forward + backward + update); returns the mean loss. */
    float trainStep(const float *images, const uint32_t *labels, float lr);

    void setWeights(const LeNetWeights &w);
    LeNetWeights getWeights() const;

  private:
    cudnn::CudnnHandle *h_;
    int batch_;

    Conv2d conv1_;
    MaxPool2d pool1_;
    Lrn lrn1_;
    Conv2d conv2_;
    MaxPool2d pool2_;
    Linear fc1_;
    Activation relu_;
    Linear fc2_;

    Tensor x_, c1_, p1_, l1_, c2_, p2_, f1_, r1_, f2_, probs_;
    addr_t labels_dev_ = 0;
    addr_t loss_dev_ = 0;
    cuda::Stream *upload_stream_ = nullptr; ///< label uploads overlap forward
};

} // namespace mlgs::torchlet

#endif // MLGS_TORCHLET_LENET_H
