/**
 * @file
 * LeNet for MNIST on the simulated GPU — the paper's headline workload
 * (NVIDIA's cuDNN MNIST sample trained LeNet, Section IV). Architecture:
 * conv1(1->20,5x5) -> pool -> LRN -> conv2(20->50,5x5) -> pool ->
 * fc1(800->500) -> ReLU -> fc2(500->10) -> softmax, covering the kernel mix
 * of Fig 7 (FFT kernels, CGEMM, Winograd, GEMV2T, LRN).
 */
#ifndef MLGS_TORCHLET_LENET_H
#define MLGS_TORCHLET_LENET_H

#include "torchlet/modules.h"

namespace mlgs::torchlet
{

/** Host-side weight snapshot. */
struct LeNetWeights
{
    std::vector<float> conv1_w, conv1_b;
    std::vector<float> conv2_w, conv2_b;
    std::vector<float> fc1_w, fc1_b;
    std::vector<float> fc2_w, fc2_b;
};

/** Flat device view of one learnable parameter block. */
struct ParamView
{
    addr_t data = 0;
    addr_t grad = 0;
    size_t count = 0;
};

/** Per-layer algorithm selection (the MNIST runs sweep these). */
struct LeNetAlgos
{
    cudnn::ConvFwdAlgo conv1 = cudnn::ConvFwdAlgo::Fft;
    cudnn::ConvFwdAlgo conv2 = cudnn::ConvFwdAlgo::WinogradNonfused;
    cudnn::ConvBwdDataAlgo bwd_data = cudnn::ConvBwdDataAlgo::Algo1;
    cudnn::ConvBwdFilterAlgo bwd_filter = cudnn::ConvBwdFilterAlgo::Algo1;
    bool fc2_gemv2t = true; ///< use the GEMV2T kernel for batch-1 inference
};

/** The network, instantiated for a fixed batch size. */
class LeNet
{
  public:
    LeNet(cudnn::CudnnHandle &h, int batch, const LeNetAlgos &algos,
          uint64_t seed = 1);

    int batch() const { return batch_; }

    /** Forward pass; returns softmax probabilities (batch x 10, host). */
    std::vector<float> forward(const float *images);

    /** Argmax predictions for a batch. */
    std::vector<int> predict(const float *images);

    /** One SGD step (forward + backward + update); returns the mean loss. */
    float trainStep(const float *images, const uint32_t *labels, float lr);

    /**
     * The three phases of trainStep(), split so a data-parallel driver can
     * interleave an all-reduce between gradient computation and the update.
     * trainStep() is exactly forwardBackward(images, labels, 1/batch) +
     * applyStep(lr) + lossSum()/batch — the op stream is byte-identical.
     * `loss_scale` is the factor applied to the softmax/NLL gradient
     * (1/global_batch for a data-parallel shard).
     */
    void forwardBackward(const float *images, const uint32_t *labels,
                         float loss_scale);
    void applyStep(float lr);
    /** Syncs the device and returns the summed (not mean) per-sample loss. */
    float lossSum();

    /**
     * The 8 learnable parameter blocks in fixed order (conv1 w/b, conv2 w/b,
     * fc1 w/b, fc2 w/b) — the all-reduce unit of data-parallel training.
     */
    std::vector<ParamView> params() const;

    /**
     * Single-GPU reference for `shards`-way data-parallel training: one full
     * forward/backward-data pass, then per-shard weight gradients combined
     * in rank order with the nccl_add_f32 kernel (the exact float nesting a
     * chain all-reduce over per-replica gradients produces), then the SGD
     * update. Bitwise equal — weights and returned mean loss — to
     * DataParallelLeNet::trainStep on `shards` devices. Requires batch %
     * shards == 0 and bwd_filter == Algo1 on both conv layers.
     */
    float trainStepSharded(const float *images, const uint32_t *labels,
                           float lr, int shards);

    void setWeights(const LeNetWeights &w);
    LeNetWeights getWeights() const;

  private:
    cudnn::CudnnHandle *h_;
    int batch_;

    Conv2d conv1_;
    MaxPool2d pool1_;
    Lrn lrn1_;
    Conv2d conv2_;
    MaxPool2d pool2_;
    Linear fc1_;
    Activation relu_;
    Linear fc2_;

    /** dst[i] += src[i] via nccl_add_f32 (lazy-loads the nccl module). */
    void accumulate(addr_t dst, addr_t src, size_t count);

    Tensor x_, c1_, p1_, l1_, c2_, p2_, f1_, r1_, f2_, probs_;
    addr_t labels_dev_ = 0;
    addr_t loss_dev_ = 0;
    cuda::Stream *upload_stream_ = nullptr; ///< label uploads overlap forward
    const ptx::KernelDef *add_kernel_ = nullptr; ///< nccl_add_f32, lazy
    addr_t shard_dw_ = 0; ///< scratch for per-shard weight gradients
    addr_t shard_db_ = 0;
};

} // namespace mlgs::torchlet

#endif // MLGS_TORCHLET_LENET_H
