#include "torchlet/lenet_cpu.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "cudnn/reference.h"

namespace mlgs::torchlet
{

namespace
{

using cudnn::ref::ConvShape;

std::vector<float>
gaussVec(size_t n, uint64_t seed, float scale)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = float(rng.gauss()) * scale;
    return v;
}

/** conv -> bias -> pool -> lrn -> conv -> bias -> pool: the 800-d features. */
std::vector<float>
features(const LeNetWeights &w, const float *image)
{
    ConvShape c1{1, 1, 28, 28, 20, 5, 5, 0, 1};
    std::vector<float> x(image, image + kMnistPixels);
    auto a1 = cudnn::ref::convForward(c1, x, w.conv1_w);
    for (int k = 0; k < 20; k++)
        for (int i = 0; i < 24 * 24; i++)
            a1[size_t(k) * 576 + i] += w.conv1_b[size_t(k)];

    std::vector<float> p1;
    std::vector<uint32_t> m1;
    cudnn::ref::maxPoolForward(20, 24, 24, 2, a1, p1, m1);

    std::vector<float> l1, scale;
    cudnn::ref::lrnForward(1, 20, 12 * 12, 5, 1e-2f, 0.75f, 2.0f, p1, l1,
                           scale);

    ConvShape c2{1, 20, 12, 12, 50, 5, 5, 0, 1};
    auto a2 = cudnn::ref::convForward(c2, l1, w.conv2_w);
    for (int k = 0; k < 50; k++)
        for (int i = 0; i < 8 * 8; i++)
            a2[size_t(k) * 64 + i] += w.conv2_b[size_t(k)];

    std::vector<float> p2;
    std::vector<uint32_t> m2;
    cudnn::ref::maxPoolForward(50, 8, 8, 2, a2, p2, m2);
    return p2; // 50*4*4 = 800
}

/** Head forward: f1 = relu(W1 f + b1), probs = softmax(W2 f1 + b2). */
void
headForward(const LeNetWeights &w, const std::vector<float> &feat,
            std::vector<float> &f1, std::vector<float> &probs)
{
    f1.assign(500, 0.0f);
    for (int o = 0; o < 500; o++) {
        double acc = w.fc1_b[size_t(o)];
        for (int i = 0; i < 800; i++)
            acc += double(w.fc1_w[size_t(o) * 800 + i]) * feat[size_t(i)];
        f1[size_t(o)] = std::max(0.0f, float(acc));
    }
    std::vector<float> logits(10, 0.0f);
    for (int o = 0; o < 10; o++) {
        double acc = w.fc2_b[size_t(o)];
        for (int i = 0; i < 500; i++)
            acc += double(w.fc2_w[size_t(o) * 500 + i]) * f1[size_t(i)];
        logits[size_t(o)] = float(acc);
    }
    probs = cudnn::ref::softmaxForward(1, 10, logits);
}

} // namespace

LeNetWeights
makeLeNetWeights(uint64_t seed)
{
    LeNetWeights w;
    w.conv1_w = gaussVec(20 * 1 * 5 * 5, seed + 1, std::sqrt(2.0f / 25.0f));
    w.conv1_b.assign(20, 0.0f);
    w.conv2_w = gaussVec(50 * 20 * 5 * 5, seed + 2, std::sqrt(2.0f / 500.0f));
    w.conv2_b.assign(50, 0.0f);
    w.fc1_w = gaussVec(500 * 800, seed + 3, std::sqrt(2.0f / 800.0f));
    w.fc1_b.assign(500, 0.0f);
    w.fc2_w = gaussVec(10 * 500, seed + 4, std::sqrt(2.0f / 500.0f));
    w.fc2_b.assign(10, 0.0f);
    return w;
}

std::vector<float>
cpuForward(const LeNetWeights &w, const float *image)
{
    const auto feat = features(w, image);
    std::vector<float> f1, probs;
    headForward(w, feat, f1, probs);
    return probs;
}

int
cpuPredict(const LeNetWeights &w, const float *image)
{
    const auto probs = cpuForward(w, image);
    return int(std::max_element(probs.begin(), probs.end()) - probs.begin());
}

LeNetWeights
trainLeNetOnHost(const MnistData &data, uint64_t seed, int steps, int batch,
                 float lr)
{
    LeNetWeights w = makeLeNetWeights(seed);

    // Cache the (fixed) convolutional features per training image.
    std::vector<std::vector<float>> feats(data.count());
    for (size_t i = 0; i < data.count(); i++)
        feats[i] = features(w, data.image(i));

    Rng rng(seed * 31 + 7);
    for (int step = 0; step < steps; step++) {
        // Accumulate gradients over the minibatch.
        std::vector<float> g1w(w.fc1_w.size(), 0.0f), g1b(500, 0.0f);
        std::vector<float> g2w(w.fc2_w.size(), 0.0f), g2b(10, 0.0f);
        for (int b = 0; b < batch; b++) {
            const size_t idx = size_t(rng.below(data.count()));
            const auto &feat = feats[idx];
            std::vector<float> f1, probs;
            headForward(w, feat, f1, probs);

            std::vector<float> dlogits(10);
            for (int o = 0; o < 10; o++)
                dlogits[size_t(o)] =
                    probs[size_t(o)] -
                    (uint32_t(o) == data.labels[idx] ? 1.0f : 0.0f);

            std::vector<float> df1(500, 0.0f);
            for (int o = 0; o < 10; o++) {
                g2b[size_t(o)] += dlogits[size_t(o)];
                for (int i = 0; i < 500; i++) {
                    g2w[size_t(o) * 500 + i] +=
                        dlogits[size_t(o)] * f1[size_t(i)];
                    df1[size_t(i)] +=
                        dlogits[size_t(o)] * w.fc2_w[size_t(o) * 500 + i];
                }
            }
            for (int o = 0; o < 500; o++) {
                if (f1[size_t(o)] <= 0.0f)
                    continue; // relu gate
                g1b[size_t(o)] += df1[size_t(o)];
                for (int i = 0; i < 800; i++)
                    g1w[size_t(o) * 800 + i] +=
                        df1[size_t(o)] * feat[size_t(i)];
            }
        }
        const float s = lr / float(batch);
        for (size_t i = 0; i < w.fc1_w.size(); i++)
            w.fc1_w[i] -= s * g1w[i];
        for (size_t i = 0; i < w.fc1_b.size(); i++)
            w.fc1_b[i] -= s * g1b[i];
        for (size_t i = 0; i < w.fc2_w.size(); i++)
            w.fc2_w[i] -= s * g2w[i];
        for (size_t i = 0; i < w.fc2_b.size(); i++)
            w.fc2_b[i] -= s * g2b[i];
    }
    return w;
}

double
cpuAccuracy(const LeNetWeights &w, const MnistData &data)
{
    size_t correct = 0;
    for (size_t i = 0; i < data.count(); i++)
        if (uint32_t(cpuPredict(w, data.image(i))) == data.labels[i])
            correct++;
    return data.count() ? double(correct) / double(data.count()) : 0.0;
}

} // namespace mlgs::torchlet
