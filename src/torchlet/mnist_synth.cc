#include "torchlet/mnist_synth.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mlgs::torchlet
{

namespace
{

struct Pt
{
    float x, y;
};

/** Polyline stroke definitions per digit, in unit coordinates. */
const std::vector<std::vector<Pt>> &
digitStrokes()
{
    static const std::vector<std::vector<Pt>> strokes = {
        // 0: octagonal loop
        {{0.5f, 0.1f}, {0.78f, 0.25f}, {0.8f, 0.5f}, {0.78f, 0.75f},
         {0.5f, 0.9f}, {0.22f, 0.75f}, {0.2f, 0.5f}, {0.22f, 0.25f},
         {0.5f, 0.1f}},
        // 1: flag + vertical
        {{0.35f, 0.25f}, {0.55f, 0.1f}, {0.55f, 0.9f}},
        // 2: top arc, diagonal, base
        {{0.25f, 0.25f}, {0.45f, 0.1f}, {0.7f, 0.2f}, {0.75f, 0.4f},
         {0.3f, 0.9f}, {0.8f, 0.9f}},
        // 3: double bump
        {{0.25f, 0.15f}, {0.65f, 0.1f}, {0.75f, 0.3f}, {0.5f, 0.48f},
         {0.78f, 0.65f}, {0.65f, 0.9f}, {0.25f, 0.85f}},
        // 4: diagonal, crossbar, vertical
        {{0.6f, 0.1f}, {0.2f, 0.6f}, {0.8f, 0.6f}},
        // 5: top bar, descender, bowl
        {{0.75f, 0.1f}, {0.3f, 0.1f}, {0.28f, 0.45f}, {0.65f, 0.45f},
         {0.78f, 0.68f}, {0.6f, 0.9f}, {0.25f, 0.85f}},
        // 6: hook + loop
        {{0.7f, 0.12f}, {0.35f, 0.3f}, {0.25f, 0.6f}, {0.4f, 0.9f},
         {0.7f, 0.82f}, {0.72f, 0.6f}, {0.3f, 0.55f}},
        // 7: top bar + diagonal
        {{0.2f, 0.12f}, {0.8f, 0.12f}, {0.45f, 0.9f}},
        // 8: two stacked loops
        {{0.5f, 0.1f}, {0.75f, 0.25f}, {0.5f, 0.45f}, {0.25f, 0.25f},
         {0.5f, 0.1f}},
        // 9: loop + tail (second stroke of 8 appended below)
        {{0.72f, 0.35f}, {0.5f, 0.5f}, {0.28f, 0.32f}, {0.4f, 0.12f},
         {0.68f, 0.15f}, {0.72f, 0.35f}, {0.68f, 0.9f}},
    };
    return strokes;
}

/** Second stroke of '4' (vertical) and lower loop of '8'. */
const std::vector<std::vector<Pt>> &
digitStrokes2()
{
    static const std::vector<std::vector<Pt>> strokes = {
        {},                                          // 0
        {},                                          // 1
        {},                                          // 2
        {},                                          // 3
        {{0.6f, 0.1f}, {0.6f, 0.9f}},                // 4
        {},                                          // 5
        {},                                          // 6
        {},                                          // 7
        {{0.5f, 0.45f}, {0.78f, 0.68f}, {0.5f, 0.9f},
         {0.22f, 0.68f}, {0.5f, 0.45f}},             // 8
        {},                                          // 9
    };
    return strokes;
}

float
segmentDistance(float px, float py, Pt a, Pt b)
{
    const float vx = b.x - a.x, vy = b.y - a.y;
    const float wx = px - a.x, wy = py - a.y;
    const float len2 = vx * vx + vy * vy;
    float t = len2 > 0 ? (wx * vx + wy * vy) / len2 : 0.0f;
    t = std::clamp(t, 0.0f, 1.0f);
    const float dx = px - (a.x + t * vx), dy = py - (a.y + t * vy);
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace

std::vector<float>
renderDigit(unsigned digit, uint64_t seed)
{
    digit %= 10;
    Rng rng(seed * 1000003ull + digit);
    const float tx = rng.uniform(-0.07f, 0.07f);
    const float ty = rng.uniform(-0.07f, 0.07f);
    const float scale = rng.uniform(0.85f, 1.1f);
    const float rot = rng.uniform(-0.15f, 0.15f);
    const float thickness = rng.uniform(0.05f, 0.075f);
    const float cr = std::cos(rot), sr = std::sin(rot);

    auto jitter = [&](Pt p) {
        // Center, scale, rotate, translate.
        const float cx = (p.x - 0.5f) * scale;
        const float cy = (p.y - 0.5f) * scale;
        return Pt{0.5f + cr * cx - sr * cy + tx, 0.5f + sr * cx + cr * cy + ty};
    };

    std::vector<std::pair<Pt, Pt>> segs;
    auto addStrokes = [&](const std::vector<Pt> &pts) {
        for (size_t i = 0; i + 1 < pts.size(); i++)
            segs.emplace_back(jitter(pts[i]), jitter(pts[i + 1]));
    };
    addStrokes(digitStrokes()[digit]);
    addStrokes(digitStrokes2()[digit]);

    std::vector<float> img(kMnistPixels, 0.0f);
    for (unsigned y = 0; y < kMnistSide; y++)
        for (unsigned x = 0; x < kMnistSide; x++) {
            const float px = (float(x) + 0.5f) / kMnistSide;
            const float py = (float(y) + 0.5f) / kMnistSide;
            float d = 1e9f;
            for (const auto &[a, b] : segs)
                d = std::min(d, segmentDistance(px, py, a, b));
            float v = 1.0f - (d - thickness) / 0.03f;
            v = std::clamp(v, 0.0f, 1.0f);
            // Light pixel noise.
            v += float(rng.gauss()) * 0.02f;
            img[y * kMnistSide + x] = std::clamp(v, 0.0f, 1.0f);
        }
    return img;
}

MnistData
makeMnist(size_t count, uint64_t seed)
{
    MnistData data;
    data.images.reserve(count * kMnistPixels);
    data.labels.reserve(count);
    Rng rng(seed);
    for (size_t i = 0; i < count; i++) {
        const unsigned digit = unsigned(i % 10);
        const auto img = renderDigit(digit, seed * 77 + i);
        data.images.insert(data.images.end(), img.begin(), img.end());
        data.labels.push_back(digit);
    }
    return data;
}

} // namespace mlgs::torchlet
