/**
 * @file
 * torchlet: a deliberately small PyTorch-like layer on top of cudnn-lite —
 * device tensors plus stateful modules with forward/backward. It plays the
 * role PyTorch plays in the paper: a Python-level framework whose every
 * numeric operation lands in cuDNN/cuBLAS kernels on the simulated GPU.
 */
#ifndef MLGS_TORCHLET_MODULES_H
#define MLGS_TORCHLET_MODULES_H

#include "cudnn/cudnn.h"

namespace mlgs::torchlet
{

/** Device tensor with an optional gradient buffer. */
class Tensor
{
  public:
    Tensor() = default;

    Tensor(cuda::Context &ctx, const cudnn::TensorDesc &desc, bool with_grad)
        : ctx_(&ctx), desc_(desc)
    {
        data_ = ctx.malloc(desc.bytes());
        if (with_grad)
            grad_ = ctx.malloc(desc.bytes());
    }

    const cudnn::TensorDesc &desc() const { return desc_; }
    addr_t data() const { return data_; }
    addr_t grad() const { return grad_; }
    size_t count() const { return desc_.count(); }

    void
    upload(const float *src)
    {
        ctx_->memcpyH2D(data_, src, desc_.bytes());
    }

    std::vector<float>
    download() const
    {
        std::vector<float> v(count());
        ctx_->memcpyD2H(v.data(), data_, desc_.bytes());
        return v;
    }

    std::vector<float>
    downloadGrad() const
    {
        std::vector<float> v(count());
        ctx_->memcpyD2H(v.data(), grad_, desc_.bytes());
        return v;
    }

  private:
    cuda::Context *ctx_ = nullptr;
    cudnn::TensorDesc desc_;
    addr_t data_ = 0;
    addr_t grad_ = 0;
};

/** Learnable parameter block (flat). */
struct Param
{
    addr_t data = 0;
    addr_t grad = 0;
    size_t count = 0;
};

/** Convolution module with selectable cudnn algorithms. */
class Conv2d
{
  public:
    Conv2d(cudnn::CudnnHandle &h, int in_c, int out_c, int ksize, int pad,
           uint64_t seed);

    cudnn::TensorDesc outputDesc(const cudnn::TensorDesc &x) const;

    void forward(const Tensor &x, Tensor &y);
    /** Computes dx (into x.grad) and parameter gradients. */
    void backward(const Tensor &x, const Tensor &y, bool need_dx);
    /** Just dx (into x.grad); parameter gradients are left untouched. */
    void backwardData(const Tensor &x, const Tensor &y);
    /**
     * Parameter gradients over samples [lo, hi) only, written to `dw` / `db`
     * (device buffers of weight.count / bias.count floats). Always uses the
     * ALGO_1 filter kernel; bitwise equal to what a data-parallel replica
     * holding exactly those samples computes with bwd_filter Algo1.
     */
    void weightGradRange(const Tensor &x, const Tensor &y, int lo, int hi,
                         addr_t dw, addr_t db);
    void step(float lr);

    cudnn::ConvFwdAlgo fwd_algo = cudnn::ConvFwdAlgo::ImplicitGemm;
    cudnn::ConvBwdDataAlgo bwd_data_algo = cudnn::ConvBwdDataAlgo::Algo1;
    cudnn::ConvBwdFilterAlgo bwd_filter_algo = cudnn::ConvBwdFilterAlgo::Algo1;

    Param weight;
    Param bias;
    cudnn::FilterDesc filterDesc() const { return wd_; }

    /** Host access for weight IO. */
    void setWeights(const std::vector<float> &w, const std::vector<float> &b);
    std::vector<float> getWeight() const;
    std::vector<float> getBias() const;

  private:
    cudnn::CudnnHandle *h_;
    cudnn::FilterDesc wd_;
    cudnn::ConvDesc conv_;
};

/** Fully connected layer (row-major weights [out, in]). */
class Linear
{
  public:
    Linear(cudnn::CudnnHandle &h, int in_f, int out_f, uint64_t seed);

    /**
     * Forward; when batch == 1 and use_gemv2t is set the transposed-GEMV
     * kernel is used (the paper's GEMV2T), else SGEMM.
     */
    void forward(const Tensor &x, Tensor &y);
    void backward(const Tensor &x, const Tensor &y, bool need_dx);
    /** Just dx (into x.grad); parameter gradients are left untouched. */
    void backwardData(const Tensor &x, const Tensor &y);
    /** Parameter gradients over samples [lo, hi) into `dw` / `db`. */
    void weightGradRange(const Tensor &x, const Tensor &y, int lo, int hi,
                         addr_t dw, addr_t db);
    void step(float lr);

    bool use_gemv2t = false;

    Param weight; ///< [out, in] row-major; gemv2t path reads [in, out] copy
    Param bias;
    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }

    void setWeights(const std::vector<float> &w, const std::vector<float> &b);

  private:
    void syncTransposed();

    cudnn::CudnnHandle *h_;
    int in_, out_;
    addr_t weight_t_ = 0; ///< [in, out] copy for the GEMV2T kernel
    bool weight_t_dirty_ = true;
};

/** ReLU / Sigmoid / Tanh. */
class Activation
{
  public:
    Activation(cudnn::CudnnHandle &h, cudnn::ActivationMode mode)
        : h_(&h), mode_(mode)
    {
    }

    void forward(const Tensor &x, Tensor &y);
    void backward(const Tensor &x, const Tensor &y);

  private:
    cudnn::CudnnHandle *h_;
    cudnn::ActivationMode mode_;
};

/** 2x2 (or win x win) max pooling, stride == window. */
class MaxPool2d
{
  public:
    MaxPool2d(cudnn::CudnnHandle &h, int win) : h_(&h), win_(win) {}

    cudnn::TensorDesc
    outputDesc(const cudnn::TensorDesc &x) const
    {
        return cudnn::TensorDesc(x.n, x.c, x.h / win_, x.w / win_);
    }

    void forward(const Tensor &x, Tensor &y);
    void backward(const Tensor &x, const Tensor &y);

  private:
    cudnn::CudnnHandle *h_;
    int win_;
    addr_t mask_ = 0;
    size_t mask_capacity = 0;
};

/** Cross-channel LRN. */
class Lrn
{
  public:
    Lrn(cudnn::CudnnHandle &h, int win, float alpha, float beta, float k)
        : h_(&h), win_(win), alpha_(alpha), beta_(beta), k_(k)
    {
    }

    void forward(const Tensor &x, Tensor &y);
    void backward(const Tensor &x, const Tensor &y);

  private:
    cudnn::CudnnHandle *h_;
    int win_;
    float alpha_, beta_, k_;
    addr_t scale_ = 0;
    size_t scale_capacity = 0;
};

} // namespace mlgs::torchlet

#endif // MLGS_TORCHLET_MODULES_H
