#include "torchlet/data_parallel.h"

namespace mlgs::torchlet
{

DataParallelLeNet::DataParallelLeNet(cuda::Context &ctx, int global_batch,
                                     const LeNetAlgos &algos, uint64_t seed)
    : ctx_(&ctx),
      n_(ctx.deviceCount()),
      global_batch_(global_batch),
      shard_(global_batch / std::max(n_, 1))
{
    MLGS_REQUIRE(global_batch % n_ == 0, "global batch ", global_batch,
                 " does not divide across ", n_, " devices");
    MLGS_REQUIRE(algos.bwd_filter == cudnn::ConvBwdFilterAlgo::Algo1,
                 "data-parallel training requires the Algo1 filter gradient");
    for (int r = 0; r < n_; r++) {
        ctx_->setDevice(r);
        handles_.push_back(std::make_unique<cudnn::CudnnHandle>(ctx));
        nets_.push_back(
            std::make_unique<LeNet>(*handles_.back(), shard_, algos, seed));
    }
    comm_ = std::make_unique<nccl::Communicator>(ctx);
}

float
DataParallelLeNet::trainStep(const float *images, const uint32_t *labels,
                             float lr)
{
    const float scale = 1.0f / float(global_batch_);
    const size_t img = 28 * 28;
    for (int r = 0; r < n_; r++) {
        ctx_->setDevice(r);
        nets_[size_t(r)]->forwardBackward(images + size_t(r) * shard_ * img,
                                          labels + size_t(r) * shard_, scale);
    }

    // One chain all-reduce per parameter block: rank-ordered folding so the
    // summed gradient is bitwise reproducible against the single-GPU
    // sharded reference.
    const size_t nparams = nets_[0]->params().size();
    for (size_t p = 0; p < nparams; p++) {
        std::vector<addr_t> bufs;
        size_t count = 0;
        for (int r = 0; r < n_; r++) {
            const auto view = nets_[size_t(r)]->params()[p];
            bufs.push_back(view.grad);
            count = view.count;
        }
        comm_->allReduceSum(bufs, count, nccl::AllReduceAlgo::Chain);
    }

    for (int r = 0; r < n_; r++) {
        ctx_->setDevice(r);
        nets_[size_t(r)]->applyStep(lr);
    }

    std::vector<float> partial;
    for (int r = 0; r < n_; r++) {
        ctx_->setDevice(r);
        partial.push_back(nets_[size_t(r)]->lossSum());
    }
    float total = partial[0];
    for (int r = 1; r < n_; r++)
        total += partial[size_t(r)];
    return total / float(global_batch_);
}

LeNetWeights
DataParallelLeNet::getWeights(int rank)
{
    ctx_->setDevice(rank);
    return nets_[size_t(rank)]->getWeights();
}

void
DataParallelLeNet::setWeights(const LeNetWeights &w)
{
    for (int r = 0; r < n_; r++) {
        ctx_->setDevice(r);
        nets_[size_t(r)]->setWeights(w);
    }
}

} // namespace mlgs::torchlet
