/**
 * @file
 * Data-parallel LeNet training across the simulated GPUs of one Context —
 * the multi-GPU workload of this repo's scaling study. Each device holds a
 * full replica (identical seed, so identical initial weights) and trains on
 * a contiguous shard of the global batch; gradients are combined with a
 * nccl-lite chain all-reduce whose rank-ordered float nesting makes the
 * summed gradient — and therefore every weight after the SGD step — bitwise
 * equal to LeNet::trainStepSharded on a single GPU.
 */
#ifndef MLGS_TORCHLET_DATA_PARALLEL_H
#define MLGS_TORCHLET_DATA_PARALLEL_H

#include <memory>

#include "nccl/nccl_lite.h"
#include "torchlet/lenet.h"

namespace mlgs::torchlet
{

class DataParallelLeNet
{
  public:
    /**
     * One replica per device of `ctx`, each with batch `global_batch /
     * deviceCount` (must divide evenly). Requires bwd_filter Algo1 — the
     * only filter-gradient algorithm whose accumulation is per-sample
     * separable, which the bitwise single-GPU equivalence depends on.
     */
    DataParallelLeNet(cuda::Context &ctx, int global_batch,
                      const LeNetAlgos &algos, uint64_t seed = 1);

    int devices() const { return n_; }
    int globalBatch() const { return global_batch_; }
    LeNet &replica(int rank) { return *nets_[size_t(rank)]; }

    /**
     * One synchronous data-parallel SGD step over the global batch
     * (`global_batch` images / labels); returns the mean loss. Loss partials
     * are folded in rank order so the result is bitwise equal to
     * trainStepSharded's.
     */
    float trainStep(const float *images, const uint32_t *labels, float lr);

    /** Weight snapshot of one replica (they are identical after a step). */
    LeNetWeights getWeights(int rank);
    void setWeights(const LeNetWeights &w); ///< all replicas

  private:
    cuda::Context *ctx_;
    int n_;
    int global_batch_;
    int shard_;
    std::vector<std::unique_ptr<cudnn::CudnnHandle>> handles_;
    std::vector<std::unique_ptr<LeNet>> nets_;
    std::unique_ptr<nccl::Communicator> comm_;
};

} // namespace mlgs::torchlet

#endif // MLGS_TORCHLET_DATA_PARALLEL_H
