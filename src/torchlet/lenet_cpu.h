/**
 * @file
 * CPU mirror of LeNet, built on the cudnn CPU reference ops. Serves two
 * roles: (i) the trusted "hardware" result the paper compares against, and
 * (ii) a fast host-side trainer that produces the pretrained weights the
 * simulated inference self-checks against (the convolutional features stay
 * at their seeded random initialization; only the MLP head is fitted, which
 * is ample for the synthetic digit set).
 */
#ifndef MLGS_TORCHLET_LENET_CPU_H
#define MLGS_TORCHLET_LENET_CPU_H

#include "torchlet/lenet.h"
#include "torchlet/mnist_synth.h"

namespace mlgs::torchlet
{

/** Randomly initialized weights with the same seeding as the device net. */
LeNetWeights makeLeNetWeights(uint64_t seed);

/** Full CPU forward pass; returns softmax probabilities (10). */
std::vector<float> cpuForward(const LeNetWeights &w, const float *image);

/** CPU argmax prediction. */
int cpuPredict(const LeNetWeights &w, const float *image);

/**
 * Train the MLP head on host against the dataset; conv weights remain at
 * their seeded values. Returns the complete weight set.
 */
LeNetWeights trainLeNetOnHost(const MnistData &data, uint64_t seed,
                              int steps = 400, int batch = 16,
                              float lr = 0.05f);

/** Accuracy of the CPU model over a dataset. */
double cpuAccuracy(const LeNetWeights &w, const MnistData &data);

} // namespace mlgs::torchlet

#endif // MLGS_TORCHLET_LENET_CPU_H
