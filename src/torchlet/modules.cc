#include "torchlet/modules.h"

#include <cmath>

#include "common/rng.h"

namespace mlgs::torchlet
{

namespace
{

Param
makeParam(cuda::Context &ctx, size_t count)
{
    Param p;
    p.count = count;
    p.data = ctx.malloc(count * 4);
    p.grad = ctx.malloc(count * 4);
    return p;
}

void
fillRandom(cuda::Context &ctx, const Param &p, uint64_t seed, float scale)
{
    Rng rng(seed);
    std::vector<float> v(p.count);
    for (auto &x : v)
        x = float(rng.gauss()) * scale;
    ctx.memcpyH2D(p.data, v.data(), v.size() * 4);
}

} // namespace

// ---- Conv2d ----

Conv2d::Conv2d(cudnn::CudnnHandle &h, int in_c, int out_c, int ksize, int pad,
               uint64_t seed)
    : h_(&h), wd_(out_c, in_c, ksize, ksize)
{
    conv_.pad = pad;
    conv_.stride = 1;
    auto &ctx = h.context();
    weight = makeParam(ctx, wd_.count());
    bias = makeParam(ctx, size_t(out_c));
    const float scale = std::sqrt(2.0f / float(in_c * ksize * ksize));
    fillRandom(ctx, weight, seed, scale);
    ctx.memsetD(bias.data, 0, bias.count * 4);
}

cudnn::TensorDesc
Conv2d::outputDesc(const cudnn::TensorDesc &x) const
{
    return conv_.outputDim(x, wd_);
}

void
Conv2d::forward(const Tensor &x, Tensor &y)
{
    h_->convolutionForward(x.desc(), x.data(), wd_, weight.data, conv_,
                           fwd_algo, y.desc(), y.data());
    h_->addTensorBias(y.desc(), y.data(), bias.data);
}

void
Conv2d::backward(const Tensor &x, const Tensor &y, bool need_dx)
{
    h_->biasBackward(y.desc(), y.grad(), bias.grad);
    h_->convolutionBackwardFilter(x.desc(), x.data(), y.desc(), y.grad(),
                                  conv_, bwd_filter_algo, wd_, weight.grad);
    if (need_dx)
        h_->convolutionBackwardData(wd_, weight.data, y.desc(), y.grad(),
                                    conv_, bwd_data_algo, x.desc(), x.grad());
}

void
Conv2d::backwardData(const Tensor &x, const Tensor &y)
{
    h_->convolutionBackwardData(wd_, weight.data, y.desc(), y.grad(), conv_,
                                bwd_data_algo, x.desc(), x.grad());
}

void
Conv2d::weightGradRange(const Tensor &x, const Tensor &y, int lo, int hi,
                        addr_t dw, addr_t db)
{
    const cudnn::TensorDesc &yd = y.desc();
    const size_t chw = size_t(yd.c) * yd.h * yd.w;
    h_->biasBackward(cudnn::TensorDesc(hi - lo, yd.c, yd.h, yd.w),
                     y.grad() + size_t(lo) * chw * 4, db);
    h_->convolutionBackwardFilterRanged(x.desc(), x.data(), yd, y.grad(),
                                        conv_, wd_, dw, lo, hi);
}

void
Conv2d::step(float lr)
{
    h_->sgdStep(weight.data, weight.grad, weight.count, lr);
    h_->sgdStep(bias.data, bias.grad, bias.count, lr);
}

void
Conv2d::setWeights(const std::vector<float> &w, const std::vector<float> &b)
{
    MLGS_REQUIRE(w.size() == weight.count && b.size() == bias.count,
                 "conv weight shape mismatch");
    h_->context().memcpyH2D(weight.data, w.data(), w.size() * 4);
    h_->context().memcpyH2D(bias.data, b.data(), b.size() * 4);
}

std::vector<float>
Conv2d::getWeight() const
{
    std::vector<float> v(weight.count);
    h_->context().memcpyD2H(v.data(), weight.data, v.size() * 4);
    return v;
}

std::vector<float>
Conv2d::getBias() const
{
    std::vector<float> v(bias.count);
    h_->context().memcpyD2H(v.data(), bias.data, v.size() * 4);
    return v;
}

// ---- Linear ----

Linear::Linear(cudnn::CudnnHandle &h, int in_f, int out_f, uint64_t seed)
    : h_(&h), in_(in_f), out_(out_f)
{
    auto &ctx = h.context();
    weight = makeParam(ctx, size_t(in_f) * out_f);
    bias = makeParam(ctx, size_t(out_f));
    fillRandom(ctx, weight, seed, std::sqrt(2.0f / float(in_f)));
    ctx.memsetD(bias.data, 0, bias.count * 4);
    weight_t_ = ctx.malloc(weight.count * 4);
}

void
Linear::syncTransposed()
{
    if (!weight_t_dirty_)
        return;
    // Host-side transpose (weights change rarely relative to inference use).
    auto &ctx = h_->context();
    std::vector<float> w(weight.count), wt(weight.count);
    ctx.memcpyD2H(w.data(), weight.data, w.size() * 4);
    for (int o = 0; o < out_; o++)
        for (int i = 0; i < in_; i++)
            wt[size_t(i) * out_ + o] = w[size_t(o) * in_ + i];
    ctx.memcpyH2D(weight_t_, wt.data(), wt.size() * 4);
    weight_t_dirty_ = false;
}

void
Linear::forward(const Tensor &x, Tensor &y)
{
    const int batch = x.desc().n;
    if (batch == 1 && use_gemv2t) {
        syncTransposed();
        h_->blas().gemv2T(unsigned(out_), unsigned(in_), 1.0f, weight_t_,
                          x.data(), y.data());
    } else {
        // y[batch, out] = x[batch, in] * W^T
        h_->blas().sgemm(blas::Op::N, blas::Op::T, unsigned(batch),
                         unsigned(out_), unsigned(in_), 1.0f, x.data(),
                         weight.data, 0.0f, y.data());
    }
    h_->addTensorBias(cudnn::TensorDesc(batch, out_, 1, 1), y.data(),
                      bias.data);
}

void
Linear::backward(const Tensor &x, const Tensor &y, bool need_dx)
{
    const int batch = x.desc().n;
    // db = column sums of dy.
    h_->biasBackward(cudnn::TensorDesc(batch, out_, 1, 1), y.grad(),
                     bias.grad);
    // dW[out, in] = dy^T[out, batch] * x[batch, in]
    h_->blas().sgemm(blas::Op::T, blas::Op::N, unsigned(out_), unsigned(in_),
                     unsigned(batch), 1.0f, y.grad(), x.data(), 0.0f,
                     weight.grad);
    if (need_dx) {
        // dx[batch, in] = dy[batch, out] * W[out, in]
        h_->blas().sgemm(blas::Op::N, blas::Op::N, unsigned(batch),
                         unsigned(in_), unsigned(out_), 1.0f, y.grad(),
                         weight.data, 0.0f, x.grad());
    }
    weight_t_dirty_ = true;
}

void
Linear::backwardData(const Tensor &x, const Tensor &y)
{
    const int batch = x.desc().n;
    // dx[batch, in] = dy[batch, out] * W[out, in]
    h_->blas().sgemm(blas::Op::N, blas::Op::N, unsigned(batch), unsigned(in_),
                     unsigned(out_), 1.0f, y.grad(), weight.data, 0.0f,
                     x.grad());
}

void
Linear::weightGradRange(const Tensor &x, const Tensor &y, int lo, int hi,
                        addr_t dw, addr_t db)
{
    const int n = hi - lo;
    h_->biasBackward(cudnn::TensorDesc(n, out_, 1, 1),
                     y.grad() + size_t(lo) * out_ * 4, db);
    // dW[out, in] = dy[lo:hi]^T * x[lo:hi]; row offsets shift the k origin.
    h_->blas().sgemm(blas::Op::T, blas::Op::N, unsigned(out_), unsigned(in_),
                     unsigned(n), 1.0f, y.grad() + size_t(lo) * out_ * 4,
                     x.data() + size_t(lo) * in_ * 4, 0.0f, dw);
    weight_t_dirty_ = true;
}

void
Linear::step(float lr)
{
    h_->sgdStep(weight.data, weight.grad, weight.count, lr);
    h_->sgdStep(bias.data, bias.grad, bias.count, lr);
    weight_t_dirty_ = true;
}

void
Linear::setWeights(const std::vector<float> &w, const std::vector<float> &b)
{
    MLGS_REQUIRE(w.size() == weight.count && b.size() == bias.count,
                 "linear weight shape mismatch");
    h_->context().memcpyH2D(weight.data, w.data(), w.size() * 4);
    h_->context().memcpyH2D(bias.data, b.data(), b.size() * 4);
    weight_t_dirty_ = true;
}

// ---- Activation ----

void
Activation::forward(const Tensor &x, Tensor &y)
{
    h_->activationForward(mode_, x.count(), x.data(), y.data());
}

void
Activation::backward(const Tensor &x, const Tensor &y)
{
    h_->activationBackward(mode_, x.count(), y.data(), y.grad(), x.grad());
}

// ---- MaxPool2d ----

void
MaxPool2d::forward(const Tensor &x, Tensor &y)
{
    if (mask_capacity < y.count()) {
        mask_ = h_->context().malloc(y.count() * 4);
        mask_capacity = y.count();
    }
    h_->poolingForward(x.desc(), x.data(), win_, y.data(), mask_);
}

void
MaxPool2d::backward(const Tensor &x, const Tensor &y)
{
    (void)y;
    h_->poolingBackward(x.desc(), win_, y.grad(), mask_, x.grad());
}

// ---- Lrn ----

void
Lrn::forward(const Tensor &x, Tensor &y)
{
    if (scale_capacity < x.count()) {
        scale_ = h_->context().malloc(x.count() * 4);
        scale_capacity = x.count();
    }
    h_->lrnForward(x.desc(), x.data(), y.data(), scale_, win_, alpha_, beta_,
                   k_);
}

void
Lrn::backward(const Tensor &x, const Tensor &y)
{
    h_->lrnBackward(x.desc(), x.data(), y.data(), scale_, y.grad(), x.grad(),
                    win_, alpha_, beta_);
}

} // namespace mlgs::torchlet
