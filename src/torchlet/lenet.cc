#include "torchlet/lenet.h"

#include <algorithm>

#include "nccl/nccl_lite.h"

namespace mlgs::torchlet
{

LeNet::LeNet(cudnn::CudnnHandle &h, int batch, const LeNetAlgos &algos,
             uint64_t seed)
    : h_(&h),
      batch_(batch),
      conv1_(h, 1, 20, 5, 0, seed + 1),
      pool1_(h, 2),
      lrn1_(h, 5, 1e-2f, 0.75f, 2.0f),
      conv2_(h, 20, 50, 5, 0, seed + 2),
      pool2_(h, 2),
      fc1_(h, 800, 500, seed + 3),
      relu_(h, cudnn::ActivationMode::Relu),
      fc2_(h, 500, 10, seed + 4)
{
    conv1_.fwd_algo = algos.conv1;
    conv2_.fwd_algo = algos.conv2;
    conv1_.bwd_data_algo = algos.bwd_data;
    conv2_.bwd_data_algo = algos.bwd_data;
    conv1_.bwd_filter_algo = algos.bwd_filter;
    conv2_.bwd_filter_algo = algos.bwd_filter;
    fc2_.use_gemv2t = algos.fc2_gemv2t;

    auto &ctx = h.context();
    const cudnn::TensorDesc xd(batch, 1, 28, 28);
    x_ = Tensor(ctx, xd, true);
    c1_ = Tensor(ctx, conv1_.outputDesc(xd), true);            // 20x24x24
    p1_ = Tensor(ctx, pool1_.outputDesc(c1_.desc()), true);    // 20x12x12
    l1_ = Tensor(ctx, p1_.desc(), true);
    c2_ = Tensor(ctx, conv2_.outputDesc(l1_.desc()), true);    // 50x8x8
    p2_ = Tensor(ctx, pool2_.outputDesc(c2_.desc()), true);    // 50x4x4
    f1_ = Tensor(ctx, cudnn::TensorDesc(batch, 500, 1, 1), true);
    r1_ = Tensor(ctx, f1_.desc(), true);
    f2_ = Tensor(ctx, cudnn::TensorDesc(batch, 10, 1, 1), true);
    probs_ = Tensor(ctx, f2_.desc(), true);
    labels_dev_ = ctx.malloc(size_t(batch) * 4);
    loss_dev_ = ctx.malloc(size_t(batch) * 4);
}

std::vector<float>
LeNet::forward(const float *images)
{
    x_.upload(images);
    conv1_.forward(x_, c1_);
    pool1_.forward(c1_, p1_);
    lrn1_.forward(p1_, l1_);
    conv2_.forward(l1_, c2_);
    pool2_.forward(c2_, p2_);
    fc1_.forward(p2_, f1_);
    relu_.forward(f1_, r1_);
    fc2_.forward(r1_, f2_);
    h_->softmaxForward(batch_, 10, f2_.data(), probs_.data());
    h_->context().deviceSynchronize();
    return probs_.download();
}

std::vector<int>
LeNet::predict(const float *images)
{
    const auto probs = forward(images);
    std::vector<int> out(size_t(batch_), 0);
    for (int b = 0; b < batch_; b++) {
        const auto *row = probs.data() + size_t(b) * 10;
        out[size_t(b)] =
            int(std::max_element(row, row + 10) - row);
    }
    return out;
}

float
LeNet::trainStep(const float *images, const uint32_t *labels, float lr)
{
    forwardBackward(images, labels, 1.0f / float(batch_));
    applyStep(lr);
    return lossSum() / float(batch_);
}

void
LeNet::forwardBackward(const float *images, const uint32_t *labels,
                       float loss_scale)
{
    // Labels are only consumed after the forward pass: upload them on a
    // dedicated stream so the copy overlaps forward compute in device time.
    auto &ctx = h_->context();
    if (!upload_stream_)
        upload_stream_ = ctx.createStream();
    ctx.memcpyH2D(labels_dev_, labels, size_t(batch_) * 4, upload_stream_);
    cuda::Event *labels_ready = ctx.createEvent();
    ctx.recordEvent(labels_ready, upload_stream_);

    const auto probs = forward(images);
    (void)probs;

    ctx.streamWaitEvent(nullptr, labels_ready);
    h_->nllLoss(batch_, 10, probs_.data(), labels_dev_, loss_dev_);
    h_->softmaxNllBackward(batch_, 10, probs_.data(), labels_dev_, f2_.grad(),
                           loss_scale);

    fc2_.backward(r1_, f2_, true);
    relu_.backward(f1_, r1_);
    fc1_.backward(p2_, f1_, true);
    pool2_.backward(c2_, p2_);
    conv2_.backward(l1_, c2_, true);
    lrn1_.backward(p1_, l1_);
    pool1_.backward(c1_, p1_);
    conv1_.backward(x_, c1_, false);
}

void
LeNet::applyStep(float lr)
{
    conv1_.step(lr);
    conv2_.step(lr);
    fc1_.step(lr);
    fc2_.step(lr);
}

float
LeNet::lossSum()
{
    auto &ctx = h_->context();
    ctx.deviceSynchronize();
    std::vector<float> losses(size_t(batch_), 0.0f);
    ctx.memcpyD2H(losses.data(), loss_dev_, size_t(batch_) * 4);
    float sum = 0;
    for (const float l : losses)
        sum += l;
    return sum;
}

std::vector<ParamView>
LeNet::params() const
{
    auto view = [](const Param &p) {
        return ParamView{p.data, p.grad, p.count};
    };
    return {view(conv1_.weight), view(conv1_.bias),
            view(conv2_.weight), view(conv2_.bias),
            view(fc1_.weight),   view(fc1_.bias),
            view(fc2_.weight),   view(fc2_.bias)};
}

void
LeNet::accumulate(addr_t dst, addr_t src, size_t count)
{
    auto &ctx = h_->context();
    if (!add_kernel_) {
        const int mod = ctx.loadModule(nccl::kNcclPtx, "libnccl_lite.ptx");
        add_kernel_ = ctx.getFunction(mod, "nccl_add_f32");
    }
    cuda::KernelArgs a;
    a.ptr(dst).ptr(src).u32(unsigned(count));
    ctx.cuLaunchKernel(add_kernel_,
                       Dim3(unsigned((count + 127) / 128)), Dim3(128), a,
                       nullptr);
}

float
LeNet::trainStepSharded(const float *images, const uint32_t *labels, float lr,
                        int shards)
{
    MLGS_REQUIRE(shards >= 1 && batch_ % shards == 0,
                 "batch ", batch_, " does not divide into ", shards,
                 " shards");
    MLGS_REQUIRE(conv1_.bwd_filter_algo == cudnn::ConvBwdFilterAlgo::Algo1 &&
                     conv2_.bwd_filter_algo == cudnn::ConvBwdFilterAlgo::Algo1,
                 "sharded training requires the Algo1 filter gradient");
    const int shard = batch_ / shards;
    auto &ctx = h_->context();

    if (!upload_stream_)
        upload_stream_ = ctx.createStream();
    ctx.memcpyH2D(labels_dev_, labels, size_t(batch_) * 4, upload_stream_);
    cuda::Event *labels_ready = ctx.createEvent();
    ctx.recordEvent(labels_ready, upload_stream_);

    const auto probs = forward(images);
    (void)probs;

    ctx.streamWaitEvent(nullptr, labels_ready);
    h_->nllLoss(batch_, 10, probs_.data(), labels_dev_, loss_dev_);
    h_->softmaxNllBackward(batch_, 10, probs_.data(), labels_dev_, f2_.grad(),
                           1.0f / float(batch_));

    // Activation gradients only; every sample's dx is independent of the
    // rest of the batch, so these buffers are bitwise what each shard's
    // replica computes for its slice.
    fc2_.backwardData(r1_, f2_);
    relu_.backward(f1_, r1_);
    fc1_.backwardData(p2_, f1_);
    pool2_.backward(c2_, p2_);
    conv2_.backwardData(l1_, c2_);
    lrn1_.backward(p1_, l1_);
    pool1_.backward(c1_, p1_);
    // conv1 produces no dx (input gradient is never used).

    // Per-shard weight gradients, combined in rank order with the same
    // nccl_add_f32 kernel a chain all-reduce applies: shard 0's gradient is
    // computed in place, every later shard lands in scratch and is folded in
    // as fl(acc + g_r).
    if (!shard_dw_) {
        const auto views = params();
        size_t max_w = 0, max_b = 0;
        for (size_t i = 0; i < views.size(); i += 2) { // w, b interleaved
            max_w = std::max(max_w, views[i].count);
            max_b = std::max(max_b, views[i + 1].count);
        }
        shard_dw_ = ctx.malloc(max_w * 4);
        shard_db_ = ctx.malloc(max_b * 4);
    }
    struct Item
    {
        Conv2d *conv;
        Linear *lin;
        const Tensor *x;
        const Tensor *y;
    };
    const Item items[] = {{&conv1_, nullptr, &x_, &c1_},
                          {&conv2_, nullptr, &l1_, &c2_},
                          {nullptr, &fc1_, &p2_, &f1_},
                          {nullptr, &fc2_, &r1_, &f2_}};
    for (const Item &it : items) {
        Param &w = it.conv ? it.conv->weight : it.lin->weight;
        Param &b = it.conv ? it.conv->bias : it.lin->bias;
        auto range = [&](int lo, int hi, addr_t dw, addr_t db) {
            if (it.conv)
                it.conv->weightGradRange(*it.x, *it.y, lo, hi, dw, db);
            else
                it.lin->weightGradRange(*it.x, *it.y, lo, hi, dw, db);
        };
        range(0, shard, w.grad, b.grad);
        for (int r = 1; r < shards; r++) {
            range(r * shard, (r + 1) * shard, shard_dw_, shard_db_);
            accumulate(w.grad, shard_dw_, w.count);
            accumulate(b.grad, shard_db_, b.count);
        }
    }

    applyStep(lr);

    ctx.deviceSynchronize();
    std::vector<float> losses(size_t(batch_), 0.0f);
    ctx.memcpyD2H(losses.data(), loss_dev_, size_t(batch_) * 4);
    // Rank-ordered loss combine, mirroring how the data-parallel driver
    // folds per-replica shard sums together.
    std::vector<float> partial(size_t(shards), 0.0f);
    for (int r = 0; r < shards; r++)
        for (int i = r * shard; i < (r + 1) * shard; i++)
            partial[size_t(r)] += losses[size_t(i)];
    float total = partial[0];
    for (int r = 1; r < shards; r++)
        total += partial[size_t(r)];
    return total / float(batch_);
}

void
LeNet::setWeights(const LeNetWeights &w)
{
    conv1_.setWeights(w.conv1_w, w.conv1_b);
    conv2_.setWeights(w.conv2_w, w.conv2_b);
    fc1_.setWeights(w.fc1_w, w.fc1_b);
    fc2_.setWeights(w.fc2_w, w.fc2_b);
}

LeNetWeights
LeNet::getWeights() const
{
    LeNetWeights w;
    w.conv1_w = conv1_.getWeight();
    w.conv1_b = conv1_.getBias();
    w.conv2_w = conv2_.getWeight();
    w.conv2_b = conv2_.getBias();
    auto &ctx = h_->context();
    auto dl = [&](const Param &p) {
        std::vector<float> v(p.count);
        ctx.memcpyD2H(v.data(), p.data, v.size() * 4);
        return v;
    };
    w.fc1_w = dl(fc1_.weight);
    w.fc1_b = dl(fc1_.bias);
    w.fc2_w = dl(fc2_.weight);
    w.fc2_b = dl(fc2_.bias);
    return w;
}

} // namespace mlgs::torchlet
