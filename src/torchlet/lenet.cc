#include "torchlet/lenet.h"

#include <algorithm>

namespace mlgs::torchlet
{

LeNet::LeNet(cudnn::CudnnHandle &h, int batch, const LeNetAlgos &algos,
             uint64_t seed)
    : h_(&h),
      batch_(batch),
      conv1_(h, 1, 20, 5, 0, seed + 1),
      pool1_(h, 2),
      lrn1_(h, 5, 1e-2f, 0.75f, 2.0f),
      conv2_(h, 20, 50, 5, 0, seed + 2),
      pool2_(h, 2),
      fc1_(h, 800, 500, seed + 3),
      relu_(h, cudnn::ActivationMode::Relu),
      fc2_(h, 500, 10, seed + 4)
{
    conv1_.fwd_algo = algos.conv1;
    conv2_.fwd_algo = algos.conv2;
    conv1_.bwd_data_algo = algos.bwd_data;
    conv2_.bwd_data_algo = algos.bwd_data;
    conv1_.bwd_filter_algo = algos.bwd_filter;
    conv2_.bwd_filter_algo = algos.bwd_filter;
    fc2_.use_gemv2t = algos.fc2_gemv2t;

    auto &ctx = h.context();
    const cudnn::TensorDesc xd(batch, 1, 28, 28);
    x_ = Tensor(ctx, xd, true);
    c1_ = Tensor(ctx, conv1_.outputDesc(xd), true);            // 20x24x24
    p1_ = Tensor(ctx, pool1_.outputDesc(c1_.desc()), true);    // 20x12x12
    l1_ = Tensor(ctx, p1_.desc(), true);
    c2_ = Tensor(ctx, conv2_.outputDesc(l1_.desc()), true);    // 50x8x8
    p2_ = Tensor(ctx, pool2_.outputDesc(c2_.desc()), true);    // 50x4x4
    f1_ = Tensor(ctx, cudnn::TensorDesc(batch, 500, 1, 1), true);
    r1_ = Tensor(ctx, f1_.desc(), true);
    f2_ = Tensor(ctx, cudnn::TensorDesc(batch, 10, 1, 1), true);
    probs_ = Tensor(ctx, f2_.desc(), true);
    labels_dev_ = ctx.malloc(size_t(batch) * 4);
    loss_dev_ = ctx.malloc(size_t(batch) * 4);
}

std::vector<float>
LeNet::forward(const float *images)
{
    x_.upload(images);
    conv1_.forward(x_, c1_);
    pool1_.forward(c1_, p1_);
    lrn1_.forward(p1_, l1_);
    conv2_.forward(l1_, c2_);
    pool2_.forward(c2_, p2_);
    fc1_.forward(p2_, f1_);
    relu_.forward(f1_, r1_);
    fc2_.forward(r1_, f2_);
    h_->softmaxForward(batch_, 10, f2_.data(), probs_.data());
    h_->context().deviceSynchronize();
    return probs_.download();
}

std::vector<int>
LeNet::predict(const float *images)
{
    const auto probs = forward(images);
    std::vector<int> out(size_t(batch_), 0);
    for (int b = 0; b < batch_; b++) {
        const auto *row = probs.data() + size_t(b) * 10;
        out[size_t(b)] =
            int(std::max_element(row, row + 10) - row);
    }
    return out;
}

float
LeNet::trainStep(const float *images, const uint32_t *labels, float lr)
{
    // Labels are only consumed after the forward pass: upload them on a
    // dedicated stream so the copy overlaps forward compute in device time.
    auto &ctx = h_->context();
    if (!upload_stream_)
        upload_stream_ = ctx.createStream();
    ctx.memcpyH2D(labels_dev_, labels, size_t(batch_) * 4, upload_stream_);
    cuda::Event *labels_ready = ctx.createEvent();
    ctx.recordEvent(labels_ready, upload_stream_);

    const auto probs = forward(images);
    (void)probs;

    ctx.streamWaitEvent(nullptr, labels_ready);
    h_->nllLoss(batch_, 10, probs_.data(), labels_dev_, loss_dev_);
    h_->softmaxNllBackward(batch_, 10, probs_.data(), labels_dev_, f2_.grad(),
                           1.0f / float(batch_));

    fc2_.backward(r1_, f2_, true);
    relu_.backward(f1_, r1_);
    fc1_.backward(p2_, f1_, true);
    pool2_.backward(c2_, p2_);
    conv2_.backward(l1_, c2_, true);
    lrn1_.backward(p1_, l1_);
    pool1_.backward(c1_, p1_);
    conv1_.backward(x_, c1_, false);

    conv1_.step(lr);
    conv2_.step(lr);
    fc1_.step(lr);
    fc2_.step(lr);
    ctx.deviceSynchronize();

    std::vector<float> losses(size_t(batch_), 0.0f);
    ctx.memcpyD2H(losses.data(), loss_dev_, size_t(batch_) * 4);
    float sum = 0;
    for (const float l : losses)
        sum += l;
    return sum / float(batch_);
}

void
LeNet::setWeights(const LeNetWeights &w)
{
    conv1_.setWeights(w.conv1_w, w.conv1_b);
    conv2_.setWeights(w.conv2_w, w.conv2_b);
    fc1_.setWeights(w.fc1_w, w.fc1_b);
    fc2_.setWeights(w.fc2_w, w.fc2_b);
}

LeNetWeights
LeNet::getWeights() const
{
    LeNetWeights w;
    w.conv1_w = conv1_.getWeight();
    w.conv1_b = conv1_.getBias();
    w.conv2_w = conv2_.getWeight();
    w.conv2_b = conv2_.getBias();
    auto &ctx = h_->context();
    auto dl = [&](const Param &p) {
        std::vector<float> v(p.count);
        ctx.memcpyD2H(v.data(), p.data, v.size() * 4);
        return v;
    };
    w.fc1_w = dl(fc1_.weight);
    w.fc1_b = dl(fc1_.bias);
    w.fc2_w = dl(fc2_.weight);
    w.fc2_b = dl(fc2_.bias);
    return w;
}

} // namespace mlgs::torchlet
