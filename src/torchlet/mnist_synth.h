/**
 * @file
 * Synthetic MNIST substitute: deterministic procedural renderings of the
 * digits 0-9 on a 28x28 grid with per-sample jitter (translation, scale,
 * rotation, stroke noise). The real dataset is unavailable offline; the
 * paper's workload only needs a 10-class digit problem with the same tensor
 * shapes (documented in DESIGN.md).
 */
#ifndef MLGS_TORCHLET_MNIST_SYNTH_H
#define MLGS_TORCHLET_MNIST_SYNTH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlgs::torchlet
{

constexpr unsigned kMnistSide = 28;
constexpr unsigned kMnistPixels = kMnistSide * kMnistSide;

/** A labelled image set, pixel values in [0, 1]. */
struct MnistData
{
    std::vector<float> images; ///< count * 28*28
    std::vector<uint32_t> labels;

    size_t count() const { return labels.size(); }
    const float *image(size_t i) const { return images.data() + i * kMnistPixels; }
};

/** Render one digit with jitter drawn from the given seed. */
std::vector<float> renderDigit(unsigned digit, uint64_t seed);

/** Generate a balanced dataset of `count` samples. */
MnistData makeMnist(size_t count, uint64_t seed);

} // namespace mlgs::torchlet

#endif // MLGS_TORCHLET_MNIST_SYNTH_H
