#include "trace/trace_format.h"

#include <cstring>

#include "common/fnv.h"

namespace mlgs::trace
{

namespace
{

constexpr uint64_t kEndMarker = 0x444e455343524c4dull; // "MLRCSEND"

} // namespace

const char *
opCodeName(OpCode c)
{
    switch (c) {
      case OpCode::LoadModule: return "load_module";
      case OpCode::Malloc: return "malloc";
      case OpCode::Free: return "free";
      case OpCode::MemcpyH2D: return "memcpy_h2d";
      case OpCode::MemcpyD2H: return "memcpy_d2h";
      case OpCode::MemcpyD2D: return "memcpy_d2d";
      case OpCode::Memset: return "memset";
      case OpCode::MemcpyToSymbol: return "memcpy_to_symbol";
      case OpCode::Launch: return "launch";
      case OpCode::CreateStream: return "create_stream";
      case OpCode::DestroyStream: return "destroy_stream";
      case OpCode::CreateEvent: return "create_event";
      case OpCode::RecordEvent: return "record_event";
      case OpCode::WaitEvent: return "wait_event";
      case OpCode::StreamSync: return "stream_sync";
      case OpCode::DeviceSync: return "device_sync";
      case OpCode::RegisterTexture: return "register_texture";
      case OpCode::MallocArray: return "malloc_array";
      case OpCode::FreeArray: return "free_array";
      case OpCode::MemcpyToArray: return "memcpy_to_array";
      case OpCode::BindTextureToArray: return "bind_texture_array";
      case OpCode::BindTextureLinear: return "bind_texture_linear";
      case OpCode::UnbindTexture: return "unbind_texture";
      case OpCode::PeerSend: return "peer_send";
      case OpCode::PeerRecv: return "peer_recv";
    }
    return "unknown";
}

// ---- BlobStore ----

uint32_t
BlobStore::put(const void *data, size_t n)
{
    offered_bytes_ += n;
    const uint64_t h = fnv1a(data, n);
    const auto [lo, hi] = by_hash_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
        const auto &candidate = blobs_[it->second];
        if (candidate.size() == n &&
            (n == 0 || std::memcmp(candidate.data(), data, n) == 0))
            return it->second;
    }
    const auto bid = uint32_t(blobs_.size());
    const auto *p = static_cast<const uint8_t *>(data);
    blobs_.emplace_back(p, p + n);
    by_hash_.emplace(h, bid);
    stored_bytes_ += n;
    return bid;
}

void
BlobStore::save(BinaryWriter &w) const
{
    w.put<uint32_t>(size());
    for (const auto &b : blobs_)
        w.putVector(b);
}

void
BlobStore::load(BinaryReader &r)
{
    blobs_.clear();
    by_hash_.clear();
    stored_bytes_ = 0;
    offered_bytes_ = 0;
    const auto n = r.get<uint32_t>();
    for (uint32_t i = 0; i < n; i++) {
        auto bytes = r.getVector<uint8_t>();
        // Re-intern so a loaded store can keep deduplicating if appended to.
        const auto bid = put(bytes.data(), bytes.size());
        MLGS_REQUIRE(bid == i, "corrupt ", r.name(),
                     ": duplicate blob in stored table");
    }
}

// ---- TraceOptions ----

namespace
{

void
saveCache(BinaryWriter &w, const timing::CacheConfig &c)
{
    w.put<uint32_t>(c.size_bytes);
    w.put<uint32_t>(c.line_bytes);
    w.put<uint32_t>(c.assoc);
    w.put<uint32_t>(c.mshr_entries);
    w.put<uint32_t>(c.hit_latency);
}

void
loadCache(BinaryReader &r, timing::CacheConfig &c)
{
    c.size_bytes = r.get<uint32_t>();
    c.line_bytes = r.get<uint32_t>();
    c.assoc = r.get<uint32_t>();
    c.mshr_entries = r.get<uint32_t>();
    c.hit_latency = r.get<uint32_t>();
}

} // namespace

void
TraceOptions::save(BinaryWriter &w) const
{
    w.put<uint8_t>(mode);
    w.put<uint8_t>(legacy_texture_name_map);
    w.put<double>(memcpy_bytes_per_cycle);
    w.put<uint32_t>(device_id);
    w.put<uint32_t>(device_count);
    w.put<uint8_t>(bugs.legacy_rem);
    w.put<uint8_t>(bugs.legacy_bfe);
    w.put<uint8_t>(bugs.split_fma);

    w.putString(gpu.name);
    w.put<uint32_t>(gpu.num_cores);
    w.put<uint32_t>(gpu.max_warps_per_core);
    w.put<uint32_t>(gpu.max_ctas_per_core);
    w.put<uint32_t>(gpu.max_threads_per_core);
    w.put<uint32_t>(gpu.shared_mem_per_core);
    w.put<uint32_t>(gpu.schedulers_per_core);
    w.put<uint8_t>(uint8_t(gpu.sched_policy));
    w.put<uint32_t>(gpu.alu_latency);
    w.put<uint32_t>(gpu.sfu_latency);
    w.put<uint32_t>(gpu.shared_latency);
    w.put<uint32_t>(gpu.max_pending_loads_per_warp);
    saveCache(w, gpu.l1);
    w.put<uint32_t>(gpu.max_resident_kernels);
    w.put<uint32_t>(gpu.icnt_latency);
    w.put<uint32_t>(gpu.num_partitions);
    saveCache(w, gpu.l2);
    w.put<uint32_t>(gpu.dram_banks);
    w.put<uint32_t>(gpu.dram_row_bytes);
    w.put<uint32_t>(gpu.dram_cas);
    w.put<uint32_t>(gpu.dram_row_cycle);
    w.put<uint32_t>(gpu.dram_burst_cycles);
    w.put<uint32_t>(gpu.dram_sched_window);
    w.put<uint8_t>(gpu.dram_frfcfs);
    w.put<double>(gpu.core_clock_ghz);
}

void
TraceOptions::load(BinaryReader &r)
{
    mode = r.get<uint8_t>();
    legacy_texture_name_map = r.get<uint8_t>();
    memcpy_bytes_per_cycle = r.get<double>();
    device_id = r.get<uint32_t>();
    device_count = r.get<uint32_t>();
    MLGS_REQUIRE(device_count >= 1 && device_id < device_count, "corrupt ",
                 r.name(), ": recording device ", device_id,
                 " out of range for device count ", device_count);
    bugs.legacy_rem = r.get<uint8_t>();
    bugs.legacy_bfe = r.get<uint8_t>();
    bugs.split_fma = r.get<uint8_t>();

    gpu.name = r.getString();
    gpu.num_cores = r.get<uint32_t>();
    gpu.max_warps_per_core = r.get<uint32_t>();
    gpu.max_ctas_per_core = r.get<uint32_t>();
    gpu.max_threads_per_core = r.get<uint32_t>();
    gpu.shared_mem_per_core = r.get<uint32_t>();
    gpu.schedulers_per_core = r.get<uint32_t>();
    gpu.sched_policy = timing::SchedPolicy(r.get<uint8_t>());
    gpu.alu_latency = r.get<uint32_t>();
    gpu.sfu_latency = r.get<uint32_t>();
    gpu.shared_latency = r.get<uint32_t>();
    gpu.max_pending_loads_per_warp = r.get<uint32_t>();
    loadCache(r, gpu.l1);
    gpu.max_resident_kernels = r.get<uint32_t>();
    gpu.icnt_latency = r.get<uint32_t>();
    gpu.num_partitions = r.get<uint32_t>();
    loadCache(r, gpu.l2);
    gpu.dram_banks = r.get<uint32_t>();
    gpu.dram_row_bytes = r.get<uint32_t>();
    gpu.dram_cas = r.get<uint32_t>();
    gpu.dram_row_cycle = r.get<uint32_t>();
    gpu.dram_burst_cycles = r.get<uint32_t>();
    gpu.dram_sched_window = r.get<uint32_t>();
    gpu.dram_frfcfs = r.get<uint8_t>();
    gpu.core_clock_ghz = r.get<double>();
}

// ---- TraceFile ----

uint64_t
TraceFile::contentHash() const
{
    // Per-blob and per-string content hashes, so references can be replaced
    // by content: the result is invariant under table reordering.
    std::vector<uint64_t> blob_hash(blobs.size());
    for (uint32_t i = 0; i < blobs.size(); i++) {
        const auto &b = blobs.blob(i);
        blob_hash[i] = Fnv1a()
                           .add<uint64_t>(b.size())
                           .addBytes(b.data(), b.size())
                           .hash();
    }

    Fnv1a h;
    h.add<uint64_t>(modules.size());
    for (const auto &m : modules) {
        h.addString(strings.str(m.name_sid));
        h.add<uint8_t>(m.source_blob != kNoBlob);
        if (m.source_blob != kNoBlob)
            h.add<uint64_t>(blob_hash[m.source_blob]);
        h.add<uint64_t>(m.global_allocs.size());
        for (const auto &[bytes, align] : m.global_allocs) {
            h.add<uint64_t>(bytes);
            h.add<uint64_t>(align);
        }
    }

    h.add<uint64_t>(ops.size());
    for (const auto &op : ops) {
        h.add<uint8_t>(uint8_t(op.code));
        h.add<uint64_t>(op.a);
        h.add<uint64_t>(op.b);
        h.add<uint64_t>(op.c);
        h.add<uint64_t>(op.d);
        h.add<uint32_t>(op.id);
        h.add<uint32_t>(op.stream);
        h.add<uint32_t>(op.grid.x).add<uint32_t>(op.grid.y);
        h.add<uint32_t>(op.grid.z);
        h.add<uint32_t>(op.block.x).add<uint32_t>(op.block.y);
        h.add<uint32_t>(op.block.z);
        h.add<uint8_t>(op.u8);
        // Only the opcodes that use sid/blob contribute them — and they
        // contribute content, not table index, so insertion order of the
        // intern tables cannot perturb the hash.
        const bool uses_sid = op.code == OpCode::MemcpyToSymbol ||
                              op.code == OpCode::Launch ||
                              op.code == OpCode::RegisterTexture;
        h.add<uint8_t>(uses_sid);
        if (uses_sid)
            h.addString(strings.str(op.sid));
        h.add<uint8_t>(op.blob != kNoBlob);
        if (op.blob != kNoBlob)
            h.add<uint64_t>(blob_hash[op.blob]);
    }
    return h.hash();
}

void
TraceFile::write(BinaryWriter &w) const
{
    w.putHeader(kTraceMagic, kTraceVersion);
    w.put<uint64_t>(contentHash());
    options.save(w);
    strings.save(w);
    blobs.save(w);

    w.put<uint32_t>(uint32_t(modules.size()));
    for (const auto &m : modules) {
        w.put<uint32_t>(m.name_sid);
        w.put<uint32_t>(m.source_blob);
        w.put<uint32_t>(uint32_t(m.global_allocs.size()));
        for (const auto &[bytes, align] : m.global_allocs) {
            w.put<uint64_t>(bytes);
            w.put<uint64_t>(align);
        }
    }

    w.put<uint64_t>(ops.size());
    for (const auto &op : ops) {
        w.put<uint8_t>(uint8_t(op.code));
        w.put<uint64_t>(op.a);
        w.put<uint64_t>(op.b);
        w.put<uint64_t>(op.c);
        w.put<uint64_t>(op.d);
        w.put<uint32_t>(op.id);
        w.put<uint32_t>(op.sid);
        w.put<uint32_t>(op.blob);
        w.put<uint32_t>(op.stream);
        w.put<uint32_t>(op.grid.x);
        w.put<uint32_t>(op.grid.y);
        w.put<uint32_t>(op.grid.z);
        w.put<uint32_t>(op.block.x);
        w.put<uint32_t>(op.block.y);
        w.put<uint32_t>(op.block.z);
        w.put<uint8_t>(op.u8);
    }
    w.put<uint64_t>(kEndMarker);
}

TraceFile
TraceFile::read(BinaryReader &r)
{
    TraceFile t;
    r.readHeader(kTraceMagic, kTraceVersion, kTraceVersion, "trace");
    const auto stored_hash = r.get<uint64_t>();
    t.options.load(r);
    t.strings.load(r);
    t.blobs.load(r);

    const auto nmodules = r.get<uint32_t>();
    for (uint32_t i = 0; i < nmodules; i++) {
        TraceModule m;
        m.name_sid = r.get<uint32_t>();
        m.source_blob = r.get<uint32_t>();
        const auto nglobals = r.get<uint32_t>();
        for (uint32_t g = 0; g < nglobals; g++) {
            const auto bytes = r.get<uint64_t>();
            const auto align = r.get<uint64_t>();
            m.global_allocs.emplace_back(bytes, align);
        }
        t.strings.str(m.name_sid); // bounds validation
        MLGS_REQUIRE(m.source_blob == kNoBlob ||
                         m.source_blob < t.blobs.size(),
                     "corrupt ", r.name(), ": module ", i,
                     " references missing source blob");
        t.modules.push_back(std::move(m));
    }

    const auto nops = r.get<uint64_t>();
    for (uint64_t i = 0; i < nops; i++) {
        TraceOp op;
        const auto code = r.get<uint8_t>();
        MLGS_REQUIRE(code >= 1 && code <= uint8_t(OpCode::kMaxOp),
                     "corrupt ", r.name(), ": unknown trace opcode ",
                     unsigned(code), " at op ", i,
                     " (trace written by a newer build?)");
        op.code = OpCode(code);
        op.a = r.get<uint64_t>();
        op.b = r.get<uint64_t>();
        op.c = r.get<uint64_t>();
        op.d = r.get<uint64_t>();
        op.id = r.get<uint32_t>();
        op.sid = r.get<uint32_t>();
        op.blob = r.get<uint32_t>();
        op.stream = r.get<uint32_t>();
        op.grid.x = r.get<uint32_t>();
        op.grid.y = r.get<uint32_t>();
        op.grid.z = r.get<uint32_t>();
        op.block.x = r.get<uint32_t>();
        op.block.y = r.get<uint32_t>();
        op.block.z = r.get<uint32_t>();
        op.u8 = r.get<uint8_t>();
        MLGS_REQUIRE(op.blob == kNoBlob || op.blob < t.blobs.size(),
                     "corrupt ", r.name(), ": op ", i,
                     " references missing blob ", op.blob);
        if (op.code == OpCode::PeerSend || op.code == OpCode::PeerRecv) {
            MLGS_REQUIRE(op.id < t.options.device_count &&
                             op.id != t.options.device_id,
                         "corrupt ", r.name(), ": op ", i, " (",
                         opCodeName(op.code), ") references peer device ",
                         op.id, ", but this trace was recorded on device ",
                         t.options.device_id, " of ",
                         t.options.device_count);
            if (op.code == OpCode::PeerRecv) {
                MLGS_REQUIRE(op.blob != kNoBlob, "corrupt ", r.name(),
                             ": op ", i, " peer-recv carries no payload");
                MLGS_REQUIRE(t.blobs.blob(op.blob).size() == op.b,
                             "corrupt ", r.name(), ": op ", i,
                             " peer-recv payload size mismatch");
            }
        }
        t.ops.push_back(op);
    }

    MLGS_REQUIRE(r.get<uint64_t>() == kEndMarker, "corrupt or truncated ",
                 r.name(), ": end marker missing");
    const uint64_t computed = t.contentHash();
    MLGS_REQUIRE(computed == stored_hash, "corrupt ", r.name(),
                 ": content hash mismatch (stored ", stored_hash,
                 ", recomputed ", computed,
                 ") — the workload bytes were altered after recording");
    return t;
}

void
TraceFile::save(const std::string &path) const
{
    BinaryWriter w;
    write(w);
    w.writeFile(path);
}

TraceFile
TraceFile::load(const std::string &path)
{
    BinaryReader r = BinaryReader::fromFile(path);
    return read(r);
}

} // namespace mlgs::trace
