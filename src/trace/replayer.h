/**
 * @file
 * TraceReplayer: re-drives a Context straight from a .mlgstrace file, with no
 * frontend (blas/cudnn/torchlet) code in the loop. Replay reproduces the
 * recorded run bit for bit: the deterministic first-fit allocator means the
 * replayed alloc/free sequence yields identical device addresses (asserted
 * op by op), so raw pointers inside recorded kernel parameter blocks stay
 * valid, and timing totals / DRAM bank statistics / AerialVision samples
 * match the live run exactly.
 */
#ifndef MLGS_TRACE_REPLAYER_H
#define MLGS_TRACE_REPLAYER_H

#include <string>

#include "func/warp_stream.h"
#include "runtime/context.h"
#include "trace/trace_format.h"

namespace mlgs::trace
{

/** Outcome counters of one replay pass. */
struct ReplayResult
{
    uint64_t ops = 0;
    uint64_t launches = 0;
    /** D2H bytes compared against the recorded payloads (all matched). */
    uint64_t verified_bytes = 0;
    /** Modules replayed as allocator effects only (source elided). */
    uint64_t modules_elided = 0;
};

class TraceReplayer
{
  public:
    explicit TraceReplayer(TraceFile trace) : trace_(std::move(trace)) {}

    static TraceReplayer
    fromFile(const std::string &path)
    {
        return TraceReplayer(TraceFile::load(path));
    }

    /**
     * ContextOptions reconstructed from the trace so a replay context is
     * configured exactly like the recorded one. sim_threads is left at 0
     * (auto) — results are bitwise identical at any thread count.
     */
    cuda::ContextOptions options() const;

    /**
     * Replay every op into `ctx` (which must be freshly constructed with
     * options() and have had no API activity). Recorded D2H payloads are
     * verified against replayed device contents; any divergence — address,
     * payload, or id mismatch — fails fatally with the offending op.
     */
    ReplayResult replay(cuda::Context &ctx) const;

    /**
     * Full-fidelity replay that additionally captures the run's warp
     * instruction streams into `capture` for later replayTimingOnly calls.
     */
    ReplayResult replayCapturing(cuda::Context &ctx,
                                 func::WarpStreamCache &capture) const;

    /**
     * Trace-driven timing replay: re-drives only the timing model from
     * previously captured warp streams — no functional interpretation, no
     * register or device-memory updates. Timing totals, DRAM bank stats and
     * AerialVision samples still match the live run bitwise; recorded D2H
     * payloads are NOT re-verified (verified_bytes stays 0). This is the
     * cheap path for replaying the same trace many times.
     */
    ReplayResult replayTimingOnly(cuda::Context &ctx,
                                  const func::WarpStreamCache &streams) const;

    const TraceFile &trace() const { return trace_; }

  private:
    ReplayResult replayImpl(cuda::Context &ctx,
                            func::WarpStreamCache *record,
                            const func::WarpStreamCache *streams) const;

    TraceFile trace_;
};

/**
 * Canonical end-of-run statistics as deterministic JSON: timing totals,
 * elapsed cycles, and per-bank DRAM row hits/misses. Byte-stable across
 * runs and builds, so CI can diff live vs replayed output bitwise.
 */
std::string statsJson(cuda::Context &ctx);

} // namespace mlgs::trace

#endif // MLGS_TRACE_REPLAYER_H
