/**
 * @file
 * TraceRecorder: an ApiObserver that serializes the complete device-visible
 * workload of a Context into a .mlgstrace file. Attach it before the
 * frontend (cudnn/blas/torchlet handles) is constructed so module loads are
 * captured; run the workload; call write(). The resulting trace replays
 * through TraceReplayer with bitwise-identical timing totals, DRAM bank
 * statistics and AerialVision samples — and without any frontend code.
 */
#ifndef MLGS_TRACE_RECORDER_H
#define MLGS_TRACE_RECORDER_H

#include <memory>

#include "func/warp_stream.h"
#include "runtime/api_observer.h"
#include "runtime/context.h"
#include "trace/trace_format.h"

namespace mlgs::trace
{

class TraceRecorder final : public cuda::ApiObserver
{
  public:
    /**
     * Attaches itself to `ctx` and snapshots its options. Requires a
     * single-device context — use MultiTraceRecorder to capture one trace
     * per device of a multi-GPU context.
     */
    explicit TraceRecorder(cuda::Context &ctx);
    ~TraceRecorder() override;

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Stop observing (write() may still be called afterwards). */
    void detach();

    /**
     * Also capture the run's warp instruction streams (performance mode
     * only; call before the workload runs). The captured streams feed
     * TraceReplayer::replayTimingOnly for cheap repeated replays in the
     * same process; they are not part of the .mlgstrace file.
     */
    void captureWarpStreams();

    /** Captured streams (null unless captureWarpStreams() was enabled). */
    std::shared_ptr<const func::WarpStreamCache>
    warpStreams() const
    {
        return warp_streams_;
    }

    /**
     * Finalize and serialize. Module sources are elided for modules no
     * launch referenced; everything else is written verbatim.
     */
    void write(const std::string &path) const;

    /** Finalized in-memory image (same elision as write()). */
    TraceFile finalize() const;

    uint64_t opCount() const { return trace_.ops.size(); }
    uint64_t launchCount() const { return launches_; }

    // ---- ApiObserver ----
    void onModuleLoaded(int handle, const std::string &ptx_source,
                        const std::string &name) override;
    void onMalloc(addr_t addr, size_t bytes, size_t align) override;
    void onFree(addr_t addr) override;
    void onMemcpyH2D(addr_t dst, const void *src, size_t bytes,
                     unsigned stream_id) override;
    void onMemcpyD2H(const void *result, addr_t src, size_t bytes,
                     unsigned stream_id) override;
    void onMemcpyD2D(addr_t dst, addr_t src, size_t bytes,
                     unsigned stream_id) override;
    void onMemset(addr_t dst, uint8_t value, size_t bytes,
                  unsigned stream_id) override;
    void onMemcpyToSymbol(const std::string &name, addr_t addr,
                          const void *src, size_t bytes) override;
    void onLaunch(int module_handle, const std::string &kernel,
                  const Dim3 &grid, const Dim3 &block,
                  const std::vector<uint8_t> &params,
                  unsigned stream_id) override;
    void onCreateStream(unsigned stream_id) override;
    void onDestroyStream(unsigned stream_id) override;
    void onCreateEvent(unsigned event_id) override;
    void onRecordEvent(unsigned event_id, unsigned stream_id) override;
    void onWaitEvent(unsigned stream_id, unsigned event_id) override;
    void onStreamSynchronize(unsigned stream_id) override;
    void onDeviceSynchronize() override;
    void onRegisterTexture(const std::string &name, int texref) override;
    void onMallocArray(unsigned array_id, unsigned width, unsigned height,
                       unsigned channels, addr_t addr) override;
    void onFreeArray(unsigned array_id) override;
    void onMemcpyToArray(unsigned array_id, const float *src,
                         size_t count) override;
    void onBindTextureToArray(int texref, unsigned array_id,
                              func::TexAddressMode mode) override;
    void onBindTextureLinear(int texref, addr_t ptr, unsigned width,
                             unsigned channels,
                             func::TexAddressMode mode) override;
    void onUnbindTexture(int texref) override;

  private:
    friend class MultiTraceRecorder;
    /**
     * Managed mode (MultiTraceRecorder): record `device`'s slice of a
     * multi-GPU context. Does NOT attach as the context's observer — the
     * owning MultiTraceRecorder is attached and forwards routed calls.
     */
    TraceRecorder(cuda::Context &ctx, int device);

    TraceOp &push(OpCode code);

    cuda::Context *ctx_;
    TraceFile trace_;
    /** PTX sources by module handle; interned into blobs at finalize(). */
    std::vector<std::string> module_sources_;
    std::vector<bool> module_used_;
    uint64_t launches_ = 0;
    std::shared_ptr<func::WarpStreamCache> warp_streams_;
};

} // namespace mlgs::trace

#endif // MLGS_TRACE_RECORDER_H
