/**
 * @file
 * MultiTraceRecorder: records a multi-GPU Context as one standalone
 * .mlgstrace per device. Every device-scoped API call is routed to the
 * recorder of the context's current device — so frontends must follow the
 * cudaSetDevice discipline of making each call with its target device
 * current (as CudnnHandle, nccl::Communicator and torchlet do).
 *
 * Cross-device traffic (cudaMemcpyPeer) splits into a PeerSend op in the
 * source device's trace and a PeerRecv op in the destination's. Both are
 * back-patched when the op actually executes on its engine: the resolved
 * completion cycle, and for receives the transferred payload, are written
 * into the op so each device's trace replays standalone — no live peer, no
 * link fabric — with bitwise-identical timing totals and memory effects.
 *
 * Event ids are renumbered per device (Context event ids are global
 * creation-order); streams are already per-device. Cross-device event waits
 * are rejected: they cannot be represented in a standalone per-device trace.
 */
#ifndef MLGS_TRACE_MULTI_RECORDER_H
#define MLGS_TRACE_MULTI_RECORDER_H

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "trace/recorder.h"

namespace mlgs::trace
{

class MultiTraceRecorder final : public cuda::ApiObserver
{
  public:
    /** Attaches itself to `ctx`; one per-device recorder is created up
     *  front, so attach before any module loads. */
    explicit MultiTraceRecorder(cuda::Context &ctx);
    ~MultiTraceRecorder() override;

    MultiTraceRecorder(const MultiTraceRecorder &) = delete;
    MultiTraceRecorder &operator=(const MultiTraceRecorder &) = delete;

    /** Stop observing (finalize() may still be called afterwards). */
    void detach();

    int deviceCount() const { return int(recorders_.size()); }

    /**
     * Finalized standalone trace of one device. Requires every recorded
     * peer op to have executed — synchronize all devices first.
     */
    TraceFile finalize(int device) const;

    /** finalize(device) serialized to `path`. */
    void write(int device, const std::string &path) const;

    // ---- ApiObserver (routed to the current device's recorder) ----
    void onModuleLoaded(int handle, const std::string &ptx_source,
                        const std::string &name) override;
    void onMalloc(addr_t addr, size_t bytes, size_t align) override;
    void onFree(addr_t addr) override;
    void onMemcpyH2D(addr_t dst, const void *src, size_t bytes,
                     unsigned stream_id) override;
    void onMemcpyD2H(const void *result, addr_t src, size_t bytes,
                     unsigned stream_id) override;
    void onMemcpyD2D(addr_t dst, addr_t src, size_t bytes,
                     unsigned stream_id) override;
    void onMemset(addr_t dst, uint8_t value, size_t bytes,
                  unsigned stream_id) override;
    void onMemcpyToSymbol(const std::string &name, addr_t addr,
                          const void *src, size_t bytes) override;
    void onLaunch(int module_handle, const std::string &kernel,
                  const Dim3 &grid, const Dim3 &block,
                  const std::vector<uint8_t> &params,
                  unsigned stream_id) override;
    void onCreateStream(unsigned stream_id) override;
    void onDestroyStream(unsigned stream_id) override;
    void onCreateEvent(unsigned event_id) override;
    void onRecordEvent(unsigned event_id, unsigned stream_id) override;
    void onWaitEvent(unsigned stream_id, unsigned event_id) override;
    void onStreamSynchronize(unsigned stream_id) override;
    void onDeviceSynchronize() override;
    void onSetDevice(int device) override;
    void onMemcpyPeer(addr_t dst, int dst_device, unsigned dst_stream,
                      addr_t src, int src_device, unsigned src_stream,
                      size_t bytes, uint64_t send_seq,
                      uint64_t recv_seq) override;
    void onPeerOpExecuted(uint64_t seq, cycle_t complete_cycle,
                          const std::vector<uint8_t> *payload) override;
    void onRegisterTexture(const std::string &name, int texref) override;
    void onMallocArray(unsigned array_id, unsigned width, unsigned height,
                       unsigned channels, addr_t addr) override;
    void onFreeArray(unsigned array_id) override;
    void onMemcpyToArray(unsigned array_id, const float *src,
                         size_t count) override;
    void onBindTextureToArray(int texref, unsigned array_id,
                              func::TexAddressMode mode) override;
    void onBindTextureLinear(int texref, addr_t ptr, unsigned width,
                             unsigned channels,
                             func::TexAddressMode mode) override;
    void onUnbindTexture(int texref) override;

  private:
    TraceRecorder &cur() { return *recorders_[size_t(current_)]; }

    cuda::Context *ctx_;
    std::vector<std::unique_ptr<TraceRecorder>> recorders_;
    int current_ = 0;
    /** Global event id -> (creating device, dense per-device id). */
    std::vector<std::pair<int, unsigned>> event_map_;
    std::vector<unsigned> events_per_device_;
    /** Peer-op api_seq -> (device, op index) awaiting execution patch. */
    std::map<uint64_t, std::pair<int, size_t>> pending_peer_;
};

} // namespace mlgs::trace

#endif // MLGS_TRACE_MULTI_RECORDER_H
