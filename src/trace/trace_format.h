/**
 * @file
 * The .mlgstrace container: a versioned, self-contained serialization of a
 * device-visible workload — everything that crossed the simulated CUDA API
 * boundary — sufficient to re-drive either execution backend with no
 * frontend (cudnn/blas/torchlet) code in the loop.
 *
 * Layout (version 3, all little-endian-naive like checkpoints):
 *
 *   header   : u64 magic "MLGSTRCE", u32 version
 *   hash     : u64 canonical FNV-1a content hash of the workload (modules +
 *              op list with blob/string references replaced by their
 *              *contents*, so the hash is independent of table insertion
 *              order; options are excluded — they hash separately as the
 *              cache key's config half). Verified on load.
 *   options  : SimMode + functional/timing knobs + full GpuConfig, so a
 *              replayed Context reproduces the recorded run bitwise; since
 *              version 3 also the recording device's id and the device count
 *              of the recorded context, so multi-GPU runs serialize as one
 *              standalone trace per device (see MultiTraceRecorder)
 *   strings  : interned string table (kernel / module / texture / symbol
 *              names); ops reference strings by dense id
 *   blobs    : content-deduplicated byte payloads (H2D uploads, expected D2H
 *              results, kernel parameter blocks, PTX sources). Identical
 *              payloads — re-uploaded weights, repeated parameter blocks —
 *              are stored once and referenced by id (content-hash interning)
 *   modules  : module table. Modules referenced by a launch carry their PTX
 *              source (a blob id); unused modules elide the source and store
 *              only their allocator effects (the (bytes, align) requests
 *              their module-scope globals made), so replay preserves every
 *              device address without parsing PTX nobody runs
 *   ops      : the API-call stream, in exact call order
 *   footer   : u64 end marker (cheap truncation detection)
 *
 * Versioning policy: readers accept exactly the versions they know how to
 * decode; any format change — field added, opcode added, section reordered —
 * bumps kTraceVersion. There is no in-place migration: traces are cheap to
 * re-record, so old files fail with a clear "unsupported version" error
 * instead of being silently misread. The checkpoint subsystem (src/chkpt)
 * shares this file's StringIntern for kernel/module identity.
 */
#ifndef MLGS_TRACE_TRACE_FORMAT_H
#define MLGS_TRACE_TRACE_FORMAT_H

#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "func/bug_model.h"
#include "timing/config.h"

namespace mlgs::cuda
{
enum class SimMode;
} // namespace mlgs::cuda

namespace mlgs::trace
{

constexpr uint64_t kTraceMagic = 0x4543525453474c4dull; // "MLGSTRCE"
constexpr uint32_t kTraceVersion = 3;

/** Sentinel blob id: no payload attached. */
constexpr uint32_t kNoBlob = 0xffffffffu;

/**
 * Dense string-interning table. Used by traces for every name an op
 * references and reused by src/chkpt for checkpoint kernel/module identity,
 * so both formats serialize names the same way.
 */
class StringIntern
{
  public:
    /** Intern a string, returning its dense id (stable for this table). */
    uint32_t
    id(const std::string &s)
    {
        const auto it = ids_.find(s);
        if (it != ids_.end())
            return it->second;
        const auto nid = uint32_t(strings_.size());
        strings_.push_back(s);
        ids_.emplace(s, nid);
        return nid;
    }

    /** Bounds-checked lookup. */
    const std::string &
    str(uint32_t sid) const
    {
        MLGS_REQUIRE(sid < strings_.size(), "corrupt stream: string id ", sid,
                     " out of range (table has ", strings_.size(), ")");
        return strings_[sid];
    }

    uint32_t size() const { return uint32_t(strings_.size()); }

    void
    save(BinaryWriter &w) const
    {
        w.put<uint32_t>(size());
        for (const auto &s : strings_)
            w.putString(s);
    }

    void
    load(BinaryReader &r)
    {
        strings_.clear();
        ids_.clear();
        const auto n = r.get<uint32_t>();
        for (uint32_t i = 0; i < n; i++)
            id(r.getString());
    }

  private:
    std::vector<std::string> strings_;
    std::unordered_map<std::string, uint32_t> ids_;
};

/** Content-deduplicated payload store (hash + full compare, no collisions). */
class BlobStore
{
  public:
    /** Intern a payload; identical contents return the same id. */
    uint32_t put(const void *data, size_t n);

    uint32_t
    put(const std::vector<uint8_t> &v)
    {
        return put(v.data(), v.size());
    }

    const std::vector<uint8_t> &
    blob(uint32_t bid) const
    {
        MLGS_REQUIRE(bid < blobs_.size(), "corrupt stream: blob id ", bid,
                     " out of range (store has ", blobs_.size(), ")");
        return blobs_[bid];
    }

    uint32_t size() const { return uint32_t(blobs_.size()); }
    uint64_t storedBytes() const { return stored_bytes_; }
    /** Bytes presented to put(), before deduplication. */
    uint64_t offeredBytes() const { return offered_bytes_; }

    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);

  private:
    std::vector<std::vector<uint8_t>> blobs_;
    std::unordered_multimap<uint64_t, uint32_t> by_hash_;
    uint64_t stored_bytes_ = 0;
    uint64_t offered_bytes_ = 0;
};

/** One module in the trace's module table. */
struct TraceModule
{
    uint32_t name_sid = 0;
    /** PTX source blob; kNoBlob when no launch references the module. */
    uint32_t source_blob = kNoBlob;
    /** (bytes, align) allocator requests made for module-scope globals. */
    std::vector<std::pair<uint64_t, uint64_t>> global_allocs;
};

/** Opcodes of the trace op stream. Append-only; renumbering bumps version. */
enum class OpCode : uint8_t
{
    LoadModule = 1,
    Malloc,
    Free,
    MemcpyH2D,
    MemcpyD2H,
    MemcpyD2D,
    Memset,
    MemcpyToSymbol,
    Launch,
    CreateStream,
    DestroyStream,
    CreateEvent,
    RecordEvent,
    WaitEvent,
    StreamSync,
    DeviceSync,
    RegisterTexture,
    MallocArray,
    FreeArray,
    MemcpyToArray,
    BindTextureToArray,
    BindTextureLinear,
    UnbindTexture,
    PeerSend, ///< since v3: one device's half of a cudaMemcpyPeer (source)
    PeerRecv, ///< since v3: the destination half, payload carried as a blob
    kMaxOp = PeerRecv,
};

const char *opCodeName(OpCode c);

/**
 * One recorded API call. A deliberately uniform record: every op serializes
 * the same field set, trading a few bytes per op for a trivially robust
 * decoder. Field use by opcode:
 *
 *   LoadModule        id=module index
 *   Malloc            a=bytes b=align c=resulting addr
 *   Free              a=addr
 *   MemcpyH2D         a=dst blob=payload stream
 *   MemcpyD2H         a=src b=bytes blob=expected payload stream
 *   MemcpyD2D         a=dst b=src c=bytes stream
 *   Memset            a=dst b=bytes u8=fill stream
 *   MemcpyToSymbol    sid=symbol a=addr blob=payload
 *   Launch            id=module sid=kernel grid block blob=params stream
 *   CreateStream      id=expected stream id
 *   DestroyStream     id
 *   CreateEvent       id=expected event id
 *   RecordEvent       id=event stream
 *   WaitEvent         id=event stream
 *   StreamSync        stream
 *   DeviceSync        —
 *   RegisterTexture   sid=name id=expected texref
 *   MallocArray       id=array index a=addr b=width c=height d=channels
 *   FreeArray         id=array index
 *   MemcpyToArray     id=array index blob=payload (count = bytes / 4)
 *   BindTextureToArray id=texref b=array index u8=address mode
 *   BindTextureLinear id=texref a=ptr b=width c=channels u8=address mode
 *   UnbindTexture     id=texref
 *   PeerSend          a=src b=bytes c=completion cycle id=peer device stream
 *   PeerRecv          a=dst b=bytes c=completion cycle id=peer device
 *                     blob=transferred payload stream
 *
 * Peer ops record one device's half of a cudaMemcpyPeer with its *resolved*
 * completion cycle on that device's timeline (and, for receives, the bytes
 * that crossed the link), so a single device's trace replays standalone —
 * timing and memory effects intact — with no live peer in the process.
 */
struct TraceOp
{
    OpCode code = OpCode::DeviceSync;
    uint64_t a = 0, b = 0, c = 0, d = 0;
    uint32_t id = 0;
    uint32_t sid = 0;
    uint32_t blob = kNoBlob;
    uint32_t stream = 0;
    Dim3 grid, block;
    uint8_t u8 = 0;
};

/** Serializable mirror of the ContextOptions fields that shape execution. */
struct TraceOptions
{
    uint8_t mode = 0; ///< cuda::SimMode
    uint8_t legacy_texture_name_map = 0;
    double memcpy_bytes_per_cycle = 8.0;
    /** Which device of the recorded context this trace captured (v3). */
    uint32_t device_id = 0;
    /** Device count of the recorded context; peer ops must reference a
     *  device in [0, device_count) other than device_id. */
    uint32_t device_count = 1;
    func::BugModel bugs;
    timing::GpuConfig gpu;

    void save(BinaryWriter &w) const;
    void load(BinaryReader &r);
};

/** A complete in-memory trace (what .mlgstrace files serialize). */
struct TraceFile
{
    TraceOptions options;
    StringIntern strings;
    BlobStore blobs;
    std::vector<TraceModule> modules;
    std::vector<TraceOp> ops;

    void save(const std::string &path) const;
    static TraceFile load(const std::string &path);

    /**
     * Deserialize from bytes (`name` labels errors). The stored content
     * hash is recomputed and verified — a trace whose workload bytes were
     * altered (or whose stored hash was) fails with a clear FatalError.
     */
    static TraceFile read(BinaryReader &r);
    void write(BinaryWriter &w) const;

    /**
     * Canonical FNV-1a hash of the workload content: the module table and
     * the op list, with every blob reference replaced by the blob's content
     * hash and every string reference by the string's bytes. Two traces of
     * the same workload hash identically even if their intern tables were
     * populated in different orders; options (GpuConfig et al.) are
     * deliberately excluded so the hash can serve as the workload half of a
     * (workload, config) cache key.
     */
    uint64_t contentHash() const;
};

} // namespace mlgs::trace

#endif // MLGS_TRACE_TRACE_FORMAT_H
