#include "trace/multi_recorder.h"

#include "common/log.h"

namespace mlgs::trace
{

MultiTraceRecorder::MultiTraceRecorder(cuda::Context &ctx)
    : ctx_(&ctx),
      current_(ctx.currentDevice()),
      events_per_device_(size_t(ctx.deviceCount()), 0u)
{
    for (int d = 0; d < ctx.deviceCount(); d++)
        recorders_.emplace_back(new TraceRecorder(ctx, d));
    MLGS_REQUIRE(!ctx.apiObserver(),
                 "context already has an API observer attached");
    ctx.setApiObserver(this);
}

MultiTraceRecorder::~MultiTraceRecorder()
{
    detach();
}

void
MultiTraceRecorder::detach()
{
    if (ctx_ && ctx_->apiObserver() == this)
        ctx_->setApiObserver(nullptr);
    ctx_ = nullptr;
}

TraceFile
MultiTraceRecorder::finalize(int device) const
{
    MLGS_REQUIRE(device >= 0 && size_t(device) < recorders_.size(),
                 "finalize of unknown device ", device);
    MLGS_REQUIRE(pending_peer_.empty(), "cannot finalize: ",
                 pending_peer_.size(), " peer op(s) have not executed yet — "
                 "synchronize every device before finalizing");
    return recorders_[size_t(device)]->finalize();
}

void
MultiTraceRecorder::write(int device, const std::string &path) const
{
    finalize(device).save(path);
}

// ---- routed observer calls ----

void
MultiTraceRecorder::onModuleLoaded(int handle, const std::string &ptx_source,
                                   const std::string &name)
{
    cur().onModuleLoaded(handle, ptx_source, name);
}

void
MultiTraceRecorder::onMalloc(addr_t addr, size_t bytes, size_t align)
{
    cur().onMalloc(addr, bytes, align);
}

void
MultiTraceRecorder::onFree(addr_t addr)
{
    cur().onFree(addr);
}

void
MultiTraceRecorder::onMemcpyH2D(addr_t dst, const void *src, size_t bytes,
                                unsigned stream_id)
{
    cur().onMemcpyH2D(dst, src, bytes, stream_id);
}

void
MultiTraceRecorder::onMemcpyD2H(const void *result, addr_t src, size_t bytes,
                                unsigned stream_id)
{
    cur().onMemcpyD2H(result, src, bytes, stream_id);
}

void
MultiTraceRecorder::onMemcpyD2D(addr_t dst, addr_t src, size_t bytes,
                                unsigned stream_id)
{
    cur().onMemcpyD2D(dst, src, bytes, stream_id);
}

void
MultiTraceRecorder::onMemset(addr_t dst, uint8_t value, size_t bytes,
                             unsigned stream_id)
{
    cur().onMemset(dst, value, bytes, stream_id);
}

void
MultiTraceRecorder::onMemcpyToSymbol(const std::string &name, addr_t addr,
                                     const void *src, size_t bytes)
{
    cur().onMemcpyToSymbol(name, addr, src, bytes);
}

void
MultiTraceRecorder::onLaunch(int module_handle, const std::string &kernel,
                             const Dim3 &grid, const Dim3 &block,
                             const std::vector<uint8_t> &params,
                             unsigned stream_id)
{
    cur().onLaunch(module_handle, kernel, grid, block, params, stream_id);
}

void
MultiTraceRecorder::onCreateStream(unsigned stream_id)
{
    cur().onCreateStream(stream_id);
}

void
MultiTraceRecorder::onDestroyStream(unsigned stream_id)
{
    cur().onDestroyStream(stream_id);
}

void
MultiTraceRecorder::onCreateEvent(unsigned event_id)
{
    // Context event ids are global creation-order; a standalone per-device
    // trace needs them dense per device, so renumber on the way in.
    MLGS_ASSERT(event_id == event_map_.size(),
                "event ids must be observed in creation order");
    const unsigned local = events_per_device_[size_t(current_)]++;
    event_map_.emplace_back(current_, local);
    cur().onCreateEvent(local);
}

void
MultiTraceRecorder::onRecordEvent(unsigned event_id, unsigned stream_id)
{
    MLGS_REQUIRE(event_id < event_map_.size(), "record of unknown event ",
                 event_id);
    const auto [device, local] = event_map_[event_id];
    MLGS_REQUIRE(device == current_, "event ", event_id, " belongs to device ",
                 device, " but is recorded on device ", current_,
                 " — cross-device event use is not representable in "
                 "per-device traces");
    cur().onRecordEvent(local, stream_id);
}

void
MultiTraceRecorder::onWaitEvent(unsigned stream_id, unsigned event_id)
{
    MLGS_REQUIRE(event_id < event_map_.size(), "wait on unknown event ",
                 event_id);
    const auto [device, local] = event_map_[event_id];
    MLGS_REQUIRE(device == current_, "event ", event_id, " belongs to device ",
                 device, " but is waited on from device ", current_,
                 " — cross-device event use is not representable in "
                 "per-device traces");
    cur().onWaitEvent(stream_id, local);
}

void
MultiTraceRecorder::onStreamSynchronize(unsigned stream_id)
{
    cur().onStreamSynchronize(stream_id);
}

void
MultiTraceRecorder::onDeviceSynchronize()
{
    cur().onDeviceSynchronize();
}

void
MultiTraceRecorder::onSetDevice(int device)
{
    // Routing state only: per-device traces are standalone single-device
    // workloads, so no op is recorded.
    current_ = device;
}

void
MultiTraceRecorder::onMemcpyPeer(addr_t dst, int dst_device,
                                 unsigned dst_stream, addr_t src,
                                 int src_device, unsigned src_stream,
                                 size_t bytes, uint64_t send_seq,
                                 uint64_t recv_seq)
{
    TraceRecorder &sr = *recorders_[size_t(src_device)];
    auto &send = sr.push(OpCode::PeerSend);
    send.a = src;
    send.b = bytes;
    send.id = uint32_t(dst_device);
    send.stream = src_stream;
    pending_peer_.emplace(send_seq,
                          std::make_pair(src_device, sr.trace_.ops.size() - 1));

    TraceRecorder &dr = *recorders_[size_t(dst_device)];
    auto &recv = dr.push(OpCode::PeerRecv);
    recv.a = dst;
    recv.b = bytes;
    recv.id = uint32_t(src_device);
    recv.stream = dst_stream;
    pending_peer_.emplace(recv_seq,
                          std::make_pair(dst_device, dr.trace_.ops.size() - 1));
}

void
MultiTraceRecorder::onPeerOpExecuted(uint64_t seq, cycle_t complete_cycle,
                                     const std::vector<uint8_t> *payload)
{
    const auto it = pending_peer_.find(seq);
    MLGS_REQUIRE(it != pending_peer_.end(),
                 "peer op ", seq, " executed but was never recorded");
    const auto [device, index] = it->second;
    pending_peer_.erase(it);

    TraceRecorder &r = *recorders_[size_t(device)];
    TraceOp &op = r.trace_.ops[index];
    op.c = complete_cycle;
    if (payload) {
        MLGS_ASSERT(op.code == OpCode::PeerRecv,
                    "payload delivered for a non-receive peer op");
        op.blob = r.trace_.blobs.put(payload->data(), payload->size());
    }
}

void
MultiTraceRecorder::onRegisterTexture(const std::string &name, int texref)
{
    cur().onRegisterTexture(name, texref);
}

void
MultiTraceRecorder::onMallocArray(unsigned array_id, unsigned width,
                                  unsigned height, unsigned channels,
                                  addr_t addr)
{
    cur().onMallocArray(array_id, width, height, channels, addr);
}

void
MultiTraceRecorder::onFreeArray(unsigned array_id)
{
    cur().onFreeArray(array_id);
}

void
MultiTraceRecorder::onMemcpyToArray(unsigned array_id, const float *src,
                                    size_t count)
{
    cur().onMemcpyToArray(array_id, src, count);
}

void
MultiTraceRecorder::onBindTextureToArray(int texref, unsigned array_id,
                                         func::TexAddressMode mode)
{
    cur().onBindTextureToArray(texref, array_id, mode);
}

void
MultiTraceRecorder::onBindTextureLinear(int texref, addr_t ptr, unsigned width,
                                        unsigned channels,
                                        func::TexAddressMode mode)
{
    cur().onBindTextureLinear(texref, ptr, width, channels, mode);
}

void
MultiTraceRecorder::onUnbindTexture(int texref)
{
    cur().onUnbindTexture(texref);
}

} // namespace mlgs::trace
