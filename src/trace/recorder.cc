#include "trace/recorder.h"

#include "common/log.h"

namespace mlgs::trace
{

TraceRecorder::TraceRecorder(cuda::Context &ctx) : ctx_(&ctx)
{
    const auto &o = ctx.options();
    trace_.options.mode = uint8_t(o.mode);
    trace_.options.legacy_texture_name_map = o.legacy_texture_name_map;
    trace_.options.memcpy_bytes_per_cycle = o.memcpy_bytes_per_cycle;
    trace_.options.bugs = o.bugs;
    trace_.options.gpu = o.gpu;

    MLGS_REQUIRE(ctx.deviceCount() == 1,
                 "TraceRecorder records single-device contexts; use "
                 "MultiTraceRecorder for a ", ctx.deviceCount(),
                 "-device context");
    MLGS_REQUIRE(!ctx.apiObserver(),
                 "context already has an API observer attached");
    ctx.setApiObserver(this);
}

TraceRecorder::TraceRecorder(cuda::Context &ctx, int device) : ctx_(&ctx)
{
    const auto &o = ctx.options();
    trace_.options.mode = uint8_t(o.mode);
    trace_.options.legacy_texture_name_map = o.legacy_texture_name_map;
    trace_.options.memcpy_bytes_per_cycle = o.memcpy_bytes_per_cycle;
    trace_.options.device_id = uint32_t(device);
    trace_.options.device_count = uint32_t(ctx.deviceCount());
    trace_.options.bugs = o.bugs;
    trace_.options.gpu = o.gpu;
}

TraceRecorder::~TraceRecorder()
{
    detach();
}

void
TraceRecorder::detach()
{
    if (ctx_) {
        if (ctx_->apiObserver() == this)
            ctx_->setApiObserver(nullptr);
        if (warp_streams_)
            ctx_->interpreter().setWarpStreamRecord(nullptr);
    }
    ctx_ = nullptr;
}

void
TraceRecorder::captureWarpStreams()
{
    MLGS_REQUIRE(ctx_, "captureWarpStreams after detach");
    MLGS_REQUIRE(ctx_->options().mode == cuda::SimMode::Performance,
                 "warp-stream capture requires performance mode");
    if (!warp_streams_) {
        warp_streams_ = std::make_shared<func::WarpStreamCache>();
        ctx_->interpreter().setWarpStreamRecord(warp_streams_.get());
    }
}

TraceOp &
TraceRecorder::push(OpCode code)
{
    trace_.ops.emplace_back();
    trace_.ops.back().code = code;
    return trace_.ops.back();
}

TraceFile
TraceRecorder::finalize() const
{
    TraceFile out = trace_;
    for (size_t m = 0; m < out.modules.size(); m++) {
        if (m < module_used_.size() && module_used_[m]) {
            const auto &src = module_sources_[m];
            out.modules[m].source_blob = out.blobs.put(src.data(), src.size());
        }
    }
    return out;
}

void
TraceRecorder::write(const std::string &path) const
{
    finalize().save(path);
}

void
TraceRecorder::onModuleLoaded(int handle, const std::string &ptx_source,
                              const std::string &name)
{
    MLGS_ASSERT(handle == int(trace_.modules.size()),
                "module handles must be observed in order");
    TraceModule m;
    m.name_sid = trace_.strings.id(name);
    for (const auto &g : ctx_->module(handle).globals) {
        const auto [bytes, align] = cuda::Context::globalAllocShape(g);
        m.global_allocs.emplace_back(bytes, align);
    }
    trace_.modules.push_back(std::move(m));
    module_sources_.push_back(ptx_source);
    module_used_.push_back(false);

    push(OpCode::LoadModule).id = uint32_t(handle);
}

void
TraceRecorder::onMalloc(addr_t addr, size_t bytes, size_t align)
{
    auto &op = push(OpCode::Malloc);
    op.a = bytes;
    op.b = align;
    op.c = addr;
}

void
TraceRecorder::onFree(addr_t addr)
{
    push(OpCode::Free).a = addr;
}

void
TraceRecorder::onMemcpyH2D(addr_t dst, const void *src, size_t bytes,
                           unsigned stream_id)
{
    auto &op = push(OpCode::MemcpyH2D);
    op.a = dst;
    op.blob = trace_.blobs.put(src, bytes);
    op.stream = stream_id;
}

void
TraceRecorder::onMemcpyD2H(const void *result, addr_t src, size_t bytes,
                           unsigned stream_id)
{
    auto &op = push(OpCode::MemcpyD2H);
    op.a = src;
    op.b = bytes;
    op.blob = trace_.blobs.put(result, bytes);
    op.stream = stream_id;
}

void
TraceRecorder::onMemcpyD2D(addr_t dst, addr_t src, size_t bytes,
                           unsigned stream_id)
{
    auto &op = push(OpCode::MemcpyD2D);
    op.a = dst;
    op.b = src;
    op.c = bytes;
    op.stream = stream_id;
}

void
TraceRecorder::onMemset(addr_t dst, uint8_t value, size_t bytes,
                        unsigned stream_id)
{
    auto &op = push(OpCode::Memset);
    op.a = dst;
    op.b = bytes;
    op.u8 = value;
    op.stream = stream_id;
}

void
TraceRecorder::onMemcpyToSymbol(const std::string &name, addr_t addr,
                                const void *src, size_t bytes)
{
    auto &op = push(OpCode::MemcpyToSymbol);
    op.sid = trace_.strings.id(name);
    op.a = addr;
    op.blob = trace_.blobs.put(src, bytes);
}

void
TraceRecorder::onLaunch(int module_handle, const std::string &kernel,
                        const Dim3 &grid, const Dim3 &block,
                        const std::vector<uint8_t> &params, unsigned stream_id)
{
    MLGS_REQUIRE(module_handle >= 0 &&
                     size_t(module_handle) < module_used_.size(),
                 "launch of '", kernel, "' from unknown module");
    module_used_[module_handle] = true;
    launches_++;

    auto &op = push(OpCode::Launch);
    op.id = uint32_t(module_handle);
    op.sid = trace_.strings.id(kernel);
    op.grid = grid;
    op.block = block;
    op.blob = trace_.blobs.put(params);
    op.stream = stream_id;
}

void
TraceRecorder::onCreateStream(unsigned stream_id)
{
    push(OpCode::CreateStream).id = stream_id;
}

void
TraceRecorder::onDestroyStream(unsigned stream_id)
{
    push(OpCode::DestroyStream).id = stream_id;
}

void
TraceRecorder::onCreateEvent(unsigned event_id)
{
    push(OpCode::CreateEvent).id = event_id;
}

void
TraceRecorder::onRecordEvent(unsigned event_id, unsigned stream_id)
{
    auto &op = push(OpCode::RecordEvent);
    op.id = event_id;
    op.stream = stream_id;
}

void
TraceRecorder::onWaitEvent(unsigned stream_id, unsigned event_id)
{
    auto &op = push(OpCode::WaitEvent);
    op.id = event_id;
    op.stream = stream_id;
}

void
TraceRecorder::onStreamSynchronize(unsigned stream_id)
{
    push(OpCode::StreamSync).stream = stream_id;
}

void
TraceRecorder::onDeviceSynchronize()
{
    push(OpCode::DeviceSync);
}

void
TraceRecorder::onRegisterTexture(const std::string &name, int texref)
{
    auto &op = push(OpCode::RegisterTexture);
    op.sid = trace_.strings.id(name);
    op.id = uint32_t(texref);
}

void
TraceRecorder::onMallocArray(unsigned array_id, unsigned width,
                             unsigned height, unsigned channels, addr_t addr)
{
    auto &op = push(OpCode::MallocArray);
    op.id = array_id;
    op.a = addr;
    op.b = width;
    op.c = height;
    op.d = channels;
}

void
TraceRecorder::onFreeArray(unsigned array_id)
{
    push(OpCode::FreeArray).id = array_id;
}

void
TraceRecorder::onMemcpyToArray(unsigned array_id, const float *src,
                               size_t count)
{
    auto &op = push(OpCode::MemcpyToArray);
    op.id = array_id;
    op.blob = trace_.blobs.put(src, count * sizeof(float));
}

void
TraceRecorder::onBindTextureToArray(int texref, unsigned array_id,
                                    func::TexAddressMode mode)
{
    auto &op = push(OpCode::BindTextureToArray);
    op.id = uint32_t(texref);
    op.b = array_id;
    op.u8 = uint8_t(mode);
}

void
TraceRecorder::onBindTextureLinear(int texref, addr_t ptr, unsigned width,
                                   unsigned channels, func::TexAddressMode mode)
{
    auto &op = push(OpCode::BindTextureLinear);
    op.id = uint32_t(texref);
    op.a = ptr;
    op.b = width;
    op.c = channels;
    op.u8 = uint8_t(mode);
}

void
TraceRecorder::onUnbindTexture(int texref)
{
    push(OpCode::UnbindTexture).id = uint32_t(texref);
}

} // namespace mlgs::trace
