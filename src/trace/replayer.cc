#include "trace/replayer.h"

#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/log.h"
#include "sample/sampled_backend.h"

namespace mlgs::trace
{

cuda::ContextOptions
TraceReplayer::options() const
{
    cuda::ContextOptions o;
    o.mode = cuda::SimMode(trace_.options.mode);
    o.bugs = trace_.options.bugs;
    o.gpu = trace_.options.gpu;
    o.legacy_texture_name_map = trace_.options.legacy_texture_name_map;
    o.memcpy_bytes_per_cycle = trace_.options.memcpy_bytes_per_cycle;
    // Replay is the golden-stats path: pin the detailed cycle model so a
    // stray MLGS_TIMING in the environment can't perturb replayed stats.
    // Callers comparing timing modes override this explicitly.
    o.timing_mode = sample::TimingMode::Detailed;
    return o;
}

ReplayResult
TraceReplayer::replay(cuda::Context &ctx) const
{
    return replayImpl(ctx, nullptr, nullptr);
}

ReplayResult
TraceReplayer::replayCapturing(cuda::Context &ctx,
                               func::WarpStreamCache &capture) const
{
    MLGS_REQUIRE(ctx.options().mode == cuda::SimMode::Performance,
                 "warp-stream capture requires performance mode");
    return replayImpl(ctx, &capture, nullptr);
}

ReplayResult
TraceReplayer::replayTimingOnly(cuda::Context &ctx,
                                const func::WarpStreamCache &streams) const
{
    MLGS_REQUIRE(ctx.options().mode == cuda::SimMode::Performance,
                 "warp-stream replay requires performance mode");
    return replayImpl(ctx, nullptr, &streams);
}

ReplayResult
TraceReplayer::replayImpl(cuda::Context &ctx, func::WarpStreamCache *record,
                          const func::WarpStreamCache *replay_streams) const
{
    ReplayResult res;

    // Attach the warp-stream hooks for the duration of the replay.
    MLGS_REQUIRE(!(record && replay_streams),
                 "cannot capture and replay warp streams at once");
    ctx.interpreter().setWarpStreamRecord(record);
    ctx.interpreter().setWarpStreamReplay(replay_streams);
    struct HookGuard
    {
        cuda::Context *ctx;
        ~HookGuard()
        {
            ctx->interpreter().setWarpStreamRecord(nullptr);
            ctx->interpreter().setWarpStreamReplay(nullptr);
        }
    } guard{&ctx};

    // Trace module index -> context module handle (-1 when source elided).
    std::vector<int> module_handles;
    std::unordered_map<unsigned, cuda::Stream *> streams;
    streams.emplace(0u, ctx.defaultStream());
    std::vector<cuda::Event *> events;
    std::vector<cuda::TexArray *> arrays;
    std::vector<uint8_t> scratch;

    const auto stream_of = [&](unsigned id) {
        const auto it = streams.find(id);
        MLGS_REQUIRE(it != streams.end(), "trace replay: op references stream ",
                     id, " which does not exist at this point");
        return it->second;
    };

    for (size_t i = 0; i < trace_.ops.size(); i++) {
        const TraceOp &op = trace_.ops[i];
        res.ops++;
        switch (op.code) {
          case OpCode::LoadModule: {
            MLGS_REQUIRE(op.id < trace_.modules.size(),
                         "trace replay: op ", i, " loads unknown module ",
                         op.id);
            const TraceModule &m = trace_.modules[op.id];
            if (m.source_blob != kNoBlob) {
                const auto &src = trace_.blobs.blob(m.source_blob);
                const int handle = ctx.loadModule(
                    std::string(src.begin(), src.end()),
                    trace_.strings.str(m.name_sid));
                module_handles.push_back(handle);
            } else {
                // Source elided: no launch references this module, so only
                // its allocator effects matter for address fidelity.
                for (const auto &[bytes, align] : m.global_allocs)
                    ctx.allocator().alloc(bytes, align);
                module_handles.push_back(-1);
                res.modules_elided++;
            }
            break;
          }
          case OpCode::Malloc: {
            const addr_t addr = ctx.malloc(op.a, op.b);
            MLGS_REQUIRE(addr == op.c, "trace replay diverged at op ", i,
                         ": malloc(", op.a, ", ", op.b, ") returned ", addr,
                         ", trace recorded ", op.c);
            break;
          }
          case OpCode::Free:
            ctx.free(op.a);
            break;
          case OpCode::MemcpyH2D: {
            const auto &payload = trace_.blobs.blob(op.blob);
            ctx.memcpyH2D(op.a, payload.data(), payload.size(),
                          stream_of(op.stream));
            break;
          }
          case OpCode::MemcpyD2H: {
            const auto &expect = trace_.blobs.blob(op.blob);
            MLGS_REQUIRE(expect.size() == op.b, "corrupt trace: op ", i,
                         " D2H size mismatch");
            scratch.resize(op.b);
            ctx.memcpyD2H(scratch.data(), op.a, op.b, stream_of(op.stream));
            // Timing-only replay never executes functional stores, so the
            // copied-back bytes are meaningless; the copy itself still runs
            // for its timing effect, but verification is skipped.
            if (!replay_streams) {
                MLGS_REQUIRE(
                    op.b == 0 || std::memcmp(scratch.data(), expect.data(),
                                             op.b) == 0,
                    "trace replay diverged at op ", i, ": D2H of ", op.b,
                    " bytes from 0x", std::hex, op.a, std::dec,
                    " does not match the recorded payload");
                res.verified_bytes += op.b;
            }
            break;
          }
          case OpCode::MemcpyD2D:
            ctx.memcpyD2D(op.a, op.b, op.c, stream_of(op.stream));
            break;
          case OpCode::Memset:
            ctx.memsetD(op.a, op.u8, op.b, stream_of(op.stream));
            break;
          case OpCode::MemcpyToSymbol: {
            // Write at the recorded address: works even when the owning
            // module's source (and thus its symbol table) was elided.
            const auto &payload = trace_.blobs.blob(op.blob);
            ctx.memory().write(op.a, payload.data(), payload.size());
            break;
          }
          case OpCode::Launch: {
            MLGS_REQUIRE(op.id < module_handles.size(),
                         "trace replay: op ", i, " launches from unloaded "
                         "module ", op.id);
            const int handle = module_handles[op.id];
            MLGS_REQUIRE(handle >= 0, "corrupt trace: op ", i,
                         " launches from a module whose source was elided");
            const auto &name = trace_.strings.str(op.sid);
            const ptx::KernelDef *kernel = ctx.getFunction(handle, name);
            MLGS_REQUIRE(kernel, "trace replay: kernel '", name,
                         "' not found in its recorded module");
            cuda::KernelArgs args;
            args.raw(trace_.blobs.blob(op.blob));
            ctx.cuLaunchKernel(kernel, op.grid, op.block, args,
                               stream_of(op.stream));
            res.launches++;
            break;
          }
          case OpCode::CreateStream: {
            cuda::Stream *s = ctx.createStream();
            MLGS_REQUIRE(s->id() == op.id, "trace replay diverged at op ", i,
                         ": createStream returned id ", s->id(),
                         ", trace recorded ", op.id);
            streams.emplace(op.id, s);
            break;
          }
          case OpCode::DestroyStream:
            ctx.destroyStream(stream_of(op.id));
            streams.erase(op.id);
            break;
          case OpCode::CreateEvent: {
            MLGS_REQUIRE(op.id == events.size(),
                         "trace replay diverged at op ", i,
                         ": event ids out of order");
            events.push_back(ctx.createEvent());
            break;
          }
          case OpCode::RecordEvent:
            MLGS_REQUIRE(op.id < events.size(), "trace replay: op ", i,
                         " records unknown event ", op.id);
            ctx.recordEvent(events[op.id], stream_of(op.stream));
            break;
          case OpCode::WaitEvent:
            MLGS_REQUIRE(op.id < events.size(), "trace replay: op ", i,
                         " waits on unknown event ", op.id);
            ctx.streamWaitEvent(stream_of(op.stream), events[op.id]);
            break;
          case OpCode::StreamSync:
            ctx.streamSynchronize(stream_of(op.stream));
            break;
          case OpCode::DeviceSync:
            ctx.deviceSynchronize();
            break;
          case OpCode::RegisterTexture: {
            const int texref =
                ctx.registerTexture(trace_.strings.str(op.sid));
            MLGS_REQUIRE(texref == int(op.id),
                         "trace replay diverged at op ", i,
                         ": registerTexture returned ", texref,
                         ", trace recorded ", op.id);
            break;
          }
          case OpCode::MallocArray: {
            MLGS_REQUIRE(op.id == arrays.size(),
                         "trace replay diverged at op ", i,
                         ": array ids out of order");
            cuda::TexArray *arr = ctx.mallocArray(unsigned(op.b),
                                                  unsigned(op.c),
                                                  unsigned(op.d));
            MLGS_REQUIRE(arr->addr == op.a, "trace replay diverged at op ", i,
                         ": mallocArray placed at ", arr->addr,
                         ", trace recorded ", op.a);
            arrays.push_back(arr);
            break;
          }
          case OpCode::FreeArray:
            MLGS_REQUIRE(op.id < arrays.size(), "trace replay: op ", i,
                         " frees unknown array ", op.id);
            ctx.freeArray(arrays[op.id]);
            break;
          case OpCode::MemcpyToArray: {
            MLGS_REQUIRE(op.id < arrays.size(), "trace replay: op ", i,
                         " copies to unknown array ", op.id);
            const auto &payload = trace_.blobs.blob(op.blob);
            ctx.memcpyToArray(arrays[op.id],
                              reinterpret_cast<const float *>(payload.data()),
                              payload.size() / sizeof(float));
            break;
          }
          case OpCode::BindTextureToArray:
            MLGS_REQUIRE(op.b < arrays.size(), "trace replay: op ", i,
                         " binds unknown array ", op.b);
            ctx.bindTextureToArray(int(op.id), arrays[size_t(op.b)],
                                   func::TexAddressMode(op.u8));
            break;
          case OpCode::BindTextureLinear:
            ctx.bindTextureLinear(int(op.id), op.a, unsigned(op.b),
                                  unsigned(op.c),
                                  func::TexAddressMode(op.u8));
            break;
          case OpCode::UnbindTexture:
            ctx.unbindTexture(int(op.id));
            break;
          case OpCode::PeerSend:
            // Recorded completion cycle stands in for the link fabric: the
            // lone replaying device reproduces its half of the exchange.
            ctx.replayPeerSend(op.a, op.b, int(op.id), op.c,
                               stream_of(op.stream));
            break;
          case OpCode::PeerRecv: {
            const auto &payload = trace_.blobs.blob(op.blob);
            MLGS_REQUIRE(payload.size() == op.b, "corrupt trace: op ", i,
                         " peer-recv payload size mismatch");
            ctx.replayPeerRecv(op.a, payload, int(op.id), op.c,
                               stream_of(op.stream));
            break;
          }
        }
    }
    return res;
}

std::string
statsJson(cuda::Context &ctx)
{
    const timing::TimingTotals &t = ctx.gpuModel().totals();
    std::ostringstream os;
    os << "{\n";
    os << "  \"elapsed_cycles\": " << ctx.elapsedCycles() << ",\n";
    os << "  \"totals\": {\n";
    os << "    \"cycles\": " << t.cycles << ",\n";
    os << "    \"warp_instructions\": " << t.warp_instructions << ",\n";
    os << "    \"thread_instructions\": " << t.thread_instructions << ",\n";
    os << "    \"alu\": " << t.alu << ",\n";
    os << "    \"sfu\": " << t.sfu << ",\n";
    os << "    \"mem_insts\": " << t.mem_insts << ",\n";
    os << "    \"shared_accesses\": " << t.shared_accesses << ",\n";
    os << "    \"l1_hits\": " << t.l1_hits << ",\n";
    os << "    \"l1_misses\": " << t.l1_misses << ",\n";
    os << "    \"l2_hits\": " << t.l2_hits << ",\n";
    os << "    \"l2_misses\": " << t.l2_misses << ",\n";
    os << "    \"icnt_flits\": " << t.icnt_flits << ",\n";
    os << "    \"dram_reads\": " << t.dram_reads << ",\n";
    os << "    \"dram_writes\": " << t.dram_writes << ",\n";
    os << "    \"dram_row_hits\": " << t.dram_row_hits << ",\n";
    os << "    \"dram_row_misses\": " << t.dram_row_misses << ",\n";
    os << "    \"core_active_cycles\": " << t.core_active_cycles << ",\n";
    os << "    \"core_idle_cycles\": " << t.core_idle_cycles << "\n";
    os << "  },\n";
    const auto hits = ctx.gpuModel().perBankRowHits();
    const auto misses = ctx.gpuModel().perBankRowMisses();
    os << "  \"dram_bank_row_hits\": [";
    for (size_t i = 0; i < hits.size(); i++)
        os << (i ? ", " : "") << hits[i];
    os << "],\n";
    os << "  \"dram_bank_row_misses\": [";
    for (size_t i = 0; i < misses.size(); i++)
        os << (i ? ", " : "") << misses[i];
    os << "]";
    // The sampling section exists only under Sampled/Predicted timing, so
    // detailed-mode output stays byte-identical to what it always was.
    if (const auto *sb = ctx.sampledBackend())
        os << ",\n  \"sampling\": " << sample::reportJson(sb->report(), 2);
    os << "\n}\n";
    return os.str();
}

} // namespace mlgs::trace
