/**
 * @file
 * Independent scalar PTX reference interpreter (the differential-test ground
 * truth the paper obtained from real hardware, Section III-D).
 *
 * Independence rule: RefExec shares no code with src/func. It executes each
 * thread of a CTA sequentially to its next barrier (naive round-based sync),
 * models registers as raw 64-bit cells with width-masked partial writes, and
 * implements instruction semantics as one big switch written from the PTX
 * ISA spec (plus the simulator's documented edge-case conventions: integer
 * division by zero yields all-ones, rem by zero returns the dividend). It
 * reuses only leaf common/ helpers (fp16 conversion, Dim3) and the parsed
 * ptx:: IR, which is the shared input format by design.
 */
#ifndef MLGS_DIFFTEST_REF_EXEC_H
#define MLGS_DIFFTEST_REF_EXEC_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ptx/ir.h"

namespace mlgs::difftest
{

/** One caller-provided global buffer, mutated in place by run(). */
struct RefBuffer
{
    addr_t base = 0;
    std::vector<uint8_t> *bytes = nullptr;
};

/** Scalar reference execution of one kernel grid. */
class RefExec
{
  public:
    RefExec(const ptx::KernelDef &kernel, Dim3 grid, Dim3 block,
            std::vector<uint8_t> params, std::vector<RefBuffer> globals);

    /** Execute the full grid; throws FatalError on deadlock/unsupported op. */
    void run();

    /** Final register file of one thread (raw 64-bit cells, reg-id order). */
    const std::vector<uint64_t> &threadRegs(unsigned linear_cta,
                                            unsigned tid) const
    {
        return regs_.at(size_t(linear_cta) * threads_per_cta_ + tid);
    }

    unsigned threadsPerCta() const { return threads_per_cta_; }
    uint64_t numCtas() const { return num_ctas_; }

  private:
    struct Thread
    {
        std::vector<uint64_t> *regs = nullptr;
        uint32_t pc = 0;
        enum { Running, AtBarrier, Done } state = Running;
        Dim3 idx3;
        unsigned tid = 0;
    };

    void runCta(uint64_t linear_cta);
    /** Run one thread until barrier/exit. Returns false when it deadlocks. */
    void runThread(Thread &t, std::vector<uint8_t> &shared, const Dim3 &cta);

    uint64_t readOperand(const ptx::Instr &ins, const ptx::Operand &op,
                         const Thread &t, const Dim3 &cta) const;
    addr_t symbolAddr(const std::string &sym) const;
    void loadBytes(addr_t addr, void *out, size_t n,
                   std::vector<uint8_t> &shared, ptx::Space space) const;
    void storeBytes(addr_t addr, const void *src, size_t n,
                    std::vector<uint8_t> &shared, ptx::Space space) const;

    const ptx::KernelDef &k_;
    Dim3 grid_, block_;
    std::vector<uint8_t> params_;
    std::vector<RefBuffer> globals_;

    unsigned threads_per_cta_ = 0;
    uint64_t num_ctas_ = 0;
    std::vector<std::vector<uint64_t>> regs_; ///< [cta*tpc + tid][reg]
};

} // namespace mlgs::difftest

#endif // MLGS_DIFFTEST_REF_EXEC_H
