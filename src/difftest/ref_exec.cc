#include "difftest/ref_exec.h"

#include <cmath>
#include <cstring>

#include "common/fp16.h"
#include "common/log.h"
#include "mem/addrspace.h"

namespace mlgs::difftest
{

using ptx::CmpOp;
using ptx::Instr;
using ptx::MulMode;
using ptx::Op;
using ptx::Operand;
using ptx::Space;
using ptx::Type;

namespace
{

/** Upper bound on instructions per thread (runaway-kernel insurance). */
constexpr uint64_t kMaxThreadInstrs = 1u << 24;

unsigned
cellBytes(Type t)
{
    return t == Type::Pred ? 1 : ptx::typeSize(t);
}

/** Zero-extended read of the low `typeSize` bytes of a cell. */
uint64_t
rdU(Type t, uint64_t cell)
{
    const unsigned b = cellBytes(t);
    return b >= 8 ? cell : (cell & ((1ull << (b * 8)) - 1));
}

/** Sign-extending read for signed types, zero-extending otherwise. */
int64_t
rdS(Type t, uint64_t cell)
{
    const uint64_t u = rdU(t, cell);
    if (!ptx::isSigned(t))
        return int64_t(u);
    switch (ptx::typeSize(t)) {
      case 1: return int8_t(u);
      case 2: return int16_t(u);
      case 4: return int32_t(u);
      default: return int64_t(u);
    }
}

/** Read a float operand cell (f16 widened through fp32, as the ISA does). */
double
rdF(Type t, uint64_t cell)
{
    switch (t) {
      case Type::F16:
        return fp16ToFp32(uint16_t(cell));
      case Type::F32: {
        float f;
        const uint32_t bits = uint32_t(cell);
        std::memcpy(&f, &bits, 4);
        return f;
      }
      case Type::F64: {
        double d;
        std::memcpy(&d, &cell, 8);
        return d;
      }
      default:
        fatal("RefExec: float read of non-float type");
    }
}

/** Fresh cell holding x in the low bytes of t (upper bytes zero). */
uint64_t
wrInt(Type t, uint64_t x)
{
    return rdU(t, x);
}

uint64_t
wrF(Type t, double x)
{
    // Arithmetic results canonicalize NaNs (0x7fffffff / 0x7fff), the PTX
    // ISA rule real SMs implement; see the matching note on the device
    // model's makeF. Without it NaN payloads would depend on host operand
    // order and the bitwise comparison would be meaningless.
    switch (t) {
      case Type::F16:
        return std::isnan(x) ? 0x7fff : fp32ToFp16(float(x));
      case Type::F32: {
        if (std::isnan(x))
            return 0x7fffffffu;
        const float f = float(x);
        uint32_t bits;
        std::memcpy(&bits, &f, 4);
        return bits;
      }
      case Type::F64: {
        uint64_t bits;
        std::memcpy(&bits, &x, 8);
        return bits;
      }
      default:
        fatal("RefExec: float write of non-float type");
    }
}

/** Width-masked partial register write (only the typed bytes change). */
void
splice(uint64_t &reg, Type t, uint64_t cell)
{
    const unsigned b = cellBytes(t);
    if (b >= 8) {
        reg = cell;
        return;
    }
    const uint64_t mask = (1ull << (b * 8)) - 1;
    reg = (reg & ~mask) | (cell & mask);
}

/** Saturating float -> signed conversion (ISA cvt with .sat semantics). */
int64_t
clampSigned(double x, unsigned bits)
{
    if (std::isnan(x))
        return 0;
    const double lo = -std::ldexp(1.0, int(bits - 1));
    const double hi = std::ldexp(1.0, int(bits - 1)) - 1.0;
    if (x < lo)
        return int64_t(lo);
    if (x > hi)
        return bits == 64 ? INT64_MAX : int64_t(hi);
    return int64_t(x);
}

uint64_t
clampUnsigned(double x, unsigned bits)
{
    if (std::isnan(x) || x < 0)
        return 0;
    const double hi = std::ldexp(1.0, int(bits)) - 1.0;
    if (x > hi)
        return bits == 64 ? UINT64_MAX : uint64_t(hi);
    return uint64_t(x);
}

bool
predByte(uint64_t cell)
{
    return (cell & 0xff) != 0;
}

/**
 * Scalar ALU semantics, written from the PTX ISA spec. Deliberate shared
 * conventions with the device model (both sides document them): integer
 * division by zero produces all-ones, remainder by zero returns the
 * dividend, INT_MIN rem -1 is 0, and f16 arithmetic is performed in fp32.
 */
uint64_t
alu(const Instr &ins, uint64_t a, uint64_t b, uint64_t c)
{
    const Type t = ins.type;
    const unsigned w = ptx::typeSize(t) * 8;

    switch (ins.op) {
      case Op::Add:
        if (ptx::isFloat(t))
            return wrF(t, rdF(t, a) + rdF(t, b));
        return wrInt(t, rdU(t, a) + rdU(t, b));
      case Op::Sub:
        if (ptx::isFloat(t))
            return wrF(t, rdF(t, a) - rdF(t, b));
        return wrInt(t, rdU(t, a) - rdU(t, b));
      case Op::Mul:
      case Op::Mad: {
        uint64_t prod;
        Type prod_t = t;
        if (ptx::isFloat(t)) {
            prod = wrF(t, rdF(t, a) * rdF(t, b));
        } else {
            switch (ins.mul_mode) {
              case MulMode::Wide:
                prod_t = t == Type::S32   ? Type::S64
                         : t == Type::U32 ? Type::U64
                         : t == Type::S16 ? Type::S32
                                          : Type::U32;
                if (ptx::isSigned(t))
                    prod = wrInt(prod_t, uint64_t(rdS(t, a) * rdS(t, b)));
                else
                    prod = wrInt(prod_t, rdU(t, a) * rdU(t, b));
                break;
              case MulMode::Hi:
                if (w == 32) {
                    if (ptx::isSigned(t))
                        prod = wrInt(t, uint64_t((rdS(t, a) * rdS(t, b)) >>
                                                 32));
                    else
                        prod = wrInt(t, (rdU(t, a) * rdU(t, b)) >> 32);
                } else {
                    prod = wrInt(
                        t, uint64_t((__uint128_t(rdU(t, a)) * rdU(t, b)) >>
                                    64));
                }
                break;
              default:
                prod = wrInt(t, rdU(t, a) * rdU(t, b));
                break;
            }
        }
        if (ins.op == Op::Mul)
            return prod;
        if (ptx::isFloat(t))
            return wrF(t, rdF(t, prod) + rdF(t, c));
        return wrInt(prod_t, rdU(prod_t, prod) + rdU(prod_t, c));
      }
      case Op::Fma: {
        if (t == Type::F64)
            return wrF(t, std::fma(rdF(t, a), rdF(t, b), rdF(t, c)));
        const float fa = float(rdF(t, a)), fb = float(rdF(t, b)),
                    fc = float(rdF(t, c));
        return wrF(t, std::fmaf(fa, fb, fc));
      }
      case Op::Div:
        if (ptx::isFloat(t))
            return wrF(t, rdF(t, a) / rdF(t, b));
        if (ptx::isSigned(t)) {
            const int64_t sa = rdS(t, a), sb = rdS(t, b);
            if (sb == 0)
                return wrInt(t, ~0ull);
            if (sa == INT64_MIN && sb == -1)
                return wrInt(t, uint64_t(sa));
            return wrInt(t, uint64_t(sa / sb));
        } else {
            const uint64_t ua = rdU(t, a), ub = rdU(t, b);
            return wrInt(t, ub == 0 ? ~0ull : ua / ub);
        }
      case Op::Rem:
        if (ptx::isSigned(t)) {
            const int64_t sa = rdS(t, a), sb = rdS(t, b);
            if (sb == 0)
                return wrInt(t, uint64_t(sa));
            if (sa == INT64_MIN && sb == -1)
                return wrInt(t, 0);
            return wrInt(t, uint64_t(sa % sb));
        } else {
            const uint64_t ua = rdU(t, a), ub = rdU(t, b);
            return wrInt(t, ub == 0 ? ua : ua % ub);
        }
      case Op::Abs:
        if (ptx::isFloat(t))
            return wrF(t, std::fabs(rdF(t, a)));
        return wrInt(t, uint64_t(std::llabs(rdS(t, a))));
      case Op::Neg:
        if (ptx::isFloat(t))
            return wrF(t, -rdF(t, a));
        return wrInt(t, uint64_t(-rdS(t, a)));
      case Op::Min:
        if (ptx::isFloat(t)) {
            // PTX min/max drop a NaN operand and order -0 < +0 (IEEE
            // 754-2019 minimum/maximum); libm fmin/fmax leave ±0 unspecified.
            const double x = rdF(t, a), y = rdF(t, b);
            if (std::isnan(x))
                return wrF(t, y);
            if (std::isnan(y))
                return wrF(t, x);
            if (x == y)
                return wrF(t, std::signbit(x) ? x : y);
            return wrF(t, x < y ? x : y);
        }
        if (ptx::isSigned(t))
            return wrInt(t, uint64_t(std::min(rdS(t, a), rdS(t, b))));
        return wrInt(t, std::min(rdU(t, a), rdU(t, b)));
      case Op::Max:
        if (ptx::isFloat(t)) {
            const double x = rdF(t, a), y = rdF(t, b);
            if (std::isnan(x))
                return wrF(t, y);
            if (std::isnan(y))
                return wrF(t, x);
            if (x == y)
                return wrF(t, std::signbit(x) ? y : x);
            return wrF(t, x > y ? x : y);
        }
        if (ptx::isSigned(t))
            return wrInt(t, uint64_t(std::max(rdS(t, a), rdS(t, b))));
        return wrInt(t, std::max(rdU(t, a), rdU(t, b)));
      case Op::And:
        return wrInt(t, rdU(t, a) & rdU(t, b));
      case Op::Or:
        return wrInt(t, rdU(t, a) | rdU(t, b));
      case Op::Xor:
        return wrInt(t, rdU(t, a) ^ rdU(t, b));
      case Op::Not:
        return wrInt(t, ~rdU(t, a));
      case Op::Shl: {
        const uint32_t s = uint32_t(b);
        return wrInt(t, s >= w ? 0 : rdU(t, a) << s);
      }
      case Op::Shr: {
        const uint32_t s = uint32_t(b);
        if (ptx::isSigned(t))
            return wrInt(t, uint64_t(rdS(t, a) >> std::min(s, w - 1)));
        return wrInt(t, s >= w ? 0 : rdU(t, a) >> s);
      }
      case Op::Brev: {
        const uint64_t x = rdU(t, a);
        uint64_t r = 0;
        for (unsigned i = 0; i < w; i++)
            if ((x >> i) & 1)
                r |= 1ull << (w - 1 - i);
        return wrInt(t, r);
      }
      case Op::Bfe: {
        const uint64_t x = rdU(t, a);
        const uint32_t pos = uint32_t(b) & 0xff;
        const uint32_t len = uint32_t(c) & 0xff;
        if (len == 0)
            return wrInt(t, 0);
        uint64_t field = pos >= w ? 0 : x >> pos;
        const uint64_t mask = len >= 64 ? ~0ull : ((1ull << len) - 1);
        field &= mask;
        if (ptx::isSigned(t)) {
            // The sign of the field is the bit at pos+len-1, clamped to the
            // source msb when the field overhangs it (PTX ISA 9.7.1 bfe).
            const uint32_t sb = std::min(pos + len - 1, w - 1);
            if ((x >> sb) & 1)
                field |= ~mask;
        }
        return wrInt(t, field);
      }
      case Op::Popc:
        return uint64_t(__builtin_popcountll(rdU(t, a)));
      case Op::Clz: {
        const uint64_t x = rdU(t, a);
        unsigned n = 0;
        for (int i = int(w) - 1; i >= 0 && !((x >> i) & 1); i--)
            n++;
        return n;
      }
      case Op::Rcp:
        return wrF(t, 1.0 / rdF(t, a));
      case Op::Sqrt:
        return wrF(t, std::sqrt(rdF(t, a)));
      case Op::Rsqrt:
        return wrF(t, 1.0 / std::sqrt(rdF(t, a)));
      case Op::Sin:
        return wrF(t, std::sin(rdF(t, a)));
      case Op::Cos:
        return wrF(t, std::cos(rdF(t, a)));
      case Op::Ex2:
        return wrF(t, std::exp2(rdF(t, a)));
      case Op::Lg2:
        return wrF(t, std::log2(rdF(t, a)));
      default:
        fatal("RefExec: unsupported ALU op in '", ins.text, "'");
    }
}

bool
evalSetp(const Instr &ins, Type t, uint64_t a, uint64_t b)
{
    if (ptx::isFloat(t)) {
        const double fa = rdF(t, a), fb = rdF(t, b);
        switch (ins.cmp) {
          case CmpOp::Eq: return fa == fb;
          case CmpOp::Ne: return fa != fb;
          case CmpOp::Lt: return fa < fb;
          case CmpOp::Le: return fa <= fb;
          case CmpOp::Gt: return fa > fb;
          case CmpOp::Ge: return fa >= fb;
          default: fatal("RefExec: unsigned float compare: ", ins.text);
        }
    }
    if (ins.cmp == CmpOp::Lo || ins.cmp == CmpOp::Ls || ins.cmp == CmpOp::Hi ||
        ins.cmp == CmpOp::Hs) {
        const uint64_t ua = rdU(t, a), ub = rdU(t, b);
        switch (ins.cmp) {
          case CmpOp::Lo: return ua < ub;
          case CmpOp::Ls: return ua <= ub;
          case CmpOp::Hi: return ua > ub;
          default: return ua >= ub;
        }
    }
    if (ptx::isSigned(t)) {
        const int64_t sa = rdS(t, a), sb = rdS(t, b);
        switch (ins.cmp) {
          case CmpOp::Eq: return sa == sb;
          case CmpOp::Ne: return sa != sb;
          case CmpOp::Lt: return sa < sb;
          case CmpOp::Le: return sa <= sb;
          case CmpOp::Gt: return sa > sb;
          case CmpOp::Ge: return sa >= sb;
          default: return false;
        }
    }
    const uint64_t ua = rdU(t, a), ub = rdU(t, b);
    switch (ins.cmp) {
      case CmpOp::Eq: return ua == ub;
      case CmpOp::Ne: return ua != ub;
      case CmpOp::Lt: return ua < ub;
      case CmpOp::Le: return ua <= ub;
      case CmpOp::Gt: return ua > ub;
      case CmpOp::Ge: return ua >= ub;
      default: return false;
    }
}

} // namespace

RefExec::RefExec(const ptx::KernelDef &kernel, Dim3 grid, Dim3 block,
                 std::vector<uint8_t> params, std::vector<RefBuffer> globals)
    : k_(kernel),
      grid_(grid),
      block_(block),
      params_(std::move(params)),
      globals_(std::move(globals)),
      threads_per_cta_(unsigned(block.count())),
      num_ctas_(grid.count())
{
    MLGS_REQUIRE(k_.local_bytes == 0,
                 "RefExec does not model .local memory (kernel ", k_.name,
                 ")");
    regs_.assign(size_t(num_ctas_) * threads_per_cta_,
                 std::vector<uint64_t>(k_.reg_types.size(), 0));
}

addr_t
RefExec::symbolAddr(const std::string &sym) const
{
    if (const auto *sv = k_.findShared(sym))
        return kSharedBase + sv->offset;
    if (const auto *p = k_.findParam(sym))
        return kParamBase + p->offset;
    fatal("RefExec: unresolved symbol '", sym, "'");
}

uint64_t
RefExec::readOperand(const Instr &ins, const Operand &op, const Thread &t,
                     const Dim3 &cta) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return (*t.regs)[size_t(op.reg)];
      case Operand::Kind::Imm:
        return uint64_t(op.imm);
      case Operand::Kind::FImm: {
        // Raw bit conversion (no NaN canonicalization): immediates are data
        // movement, and the device model keeps their payload verbatim.
        if (ins.type == Type::F64) {
            uint64_t bits;
            std::memcpy(&bits, &op.fimm, 8);
            return bits;
        }
        if (ins.type == Type::F16)
            return fp32ToFp16(float(op.fimm));
        const float f = float(op.fimm);
        uint32_t bits;
        std::memcpy(&bits, &f, 4);
        return bits;
      }
      case Operand::Kind::Special:
        switch (op.sreg) {
          case ptx::SReg::TidX: return t.idx3.x;
          case ptx::SReg::TidY: return t.idx3.y;
          case ptx::SReg::TidZ: return t.idx3.z;
          case ptx::SReg::NTidX: return block_.x;
          case ptx::SReg::NTidY: return block_.y;
          case ptx::SReg::NTidZ: return block_.z;
          case ptx::SReg::CtaIdX: return cta.x;
          case ptx::SReg::CtaIdY: return cta.y;
          case ptx::SReg::CtaIdZ: return cta.z;
          case ptx::SReg::NCtaIdX: return grid_.x;
          case ptx::SReg::NCtaIdY: return grid_.y;
          case ptx::SReg::NCtaIdZ: return grid_.z;
          case ptx::SReg::LaneId: return t.tid % kWarpSize;
          case ptx::SReg::WarpId: return t.tid / kWarpSize;
          default:
            fatal("RefExec: unsupported special register in '", ins.text,
                  "'");
        }
      case Operand::Kind::Sym:
        return symbolAddr(op.sym);
      default:
        fatal("RefExec: unsupported operand kind in '", ins.text, "'");
    }
}

void
RefExec::loadBytes(addr_t addr, void *out, size_t n,
                   std::vector<uint8_t> &shared, Space space) const
{
    if (space == Space::Param ||
        (space == Space::None && inParamWindow(addr))) {
        const addr_t off = addr - kParamBase;
        MLGS_REQUIRE(off + n <= params_.size(), "RefExec: param OOB read");
        std::memcpy(out, params_.data() + off, n);
        return;
    }
    if (space == Space::Shared ||
        (space == Space::None && inSharedWindow(addr))) {
        const addr_t off = addr - kSharedBase;
        MLGS_REQUIRE(off + n <= shared.size(), "RefExec: shared OOB read");
        std::memcpy(out, shared.data() + off, n);
        return;
    }
    for (const auto &g : globals_) {
        if (addr >= g.base && addr + n <= g.base + g.bytes->size()) {
            std::memcpy(out, g.bytes->data() + (addr - g.base), n);
            return;
        }
    }
    fatal("RefExec: global read outside provided buffers at ", addr);
}

void
RefExec::storeBytes(addr_t addr, const void *src, size_t n,
                    std::vector<uint8_t> &shared, Space space) const
{
    if (space == Space::Shared ||
        (space == Space::None && inSharedWindow(addr))) {
        const addr_t off = addr - kSharedBase;
        MLGS_REQUIRE(off + n <= shared.size(), "RefExec: shared OOB write");
        std::memcpy(shared.data() + off, src, n);
        return;
    }
    for (const auto &g : globals_) {
        if (addr >= g.base && addr + n <= g.base + g.bytes->size()) {
            std::memcpy(g.bytes->data() + (addr - g.base), src, n);
            return;
        }
    }
    fatal("RefExec: global write outside provided buffers at ", addr);
}

void
RefExec::runThread(Thread &t, std::vector<uint8_t> &shared, const Dim3 &cta)
{
    uint64_t executed = 0;
    auto &regs = *t.regs;

    while (true) {
        MLGS_REQUIRE(t.pc < k_.instrs.size(),
                     "RefExec: fell off the end of ", k_.name);
        MLGS_REQUIRE(++executed < kMaxThreadInstrs,
                     "RefExec: instruction budget exceeded in ", k_.name);
        const Instr &ins = k_.instrs[t.pc];

        if (ins.pred >= 0) {
            const bool p = predByte(regs[size_t(ins.pred)]);
            if (p == ins.pred_neg) { // guard is false: fall through
                t.pc++;
                continue;
            }
        }

        switch (ins.op) {
          case Op::Bra:
            t.pc = ins.target_pc;
            continue;
          case Op::Ret:
          case Op::Exit:
            t.state = Thread::Done;
            return;
          case Op::Bar:
            t.state = Thread::AtBarrier;
            t.pc++;
            return;
          case Op::Membar:
            t.pc++;
            continue;
          case Op::Mov: {
            const uint64_t v = readOperand(ins, ins.ops[1], t, cta);
            splice(regs[size_t(ins.ops[0].reg)],
                   ins.type == Type::Pred ? Type::Pred : ins.type, v);
            t.pc++;
            continue;
          }
          case Op::Cvta: {
            const uint64_t v = readOperand(ins, ins.ops[1], t, cta);
            splice(regs[size_t(ins.ops[0].reg)], ins.type, v);
            t.pc++;
            continue;
          }
          case Op::Cvt: {
            const Type dt = ins.type;
            const Type st = ins.stype == Type::None ? dt : ins.stype;
            const uint64_t a = readOperand(ins, ins.ops[1], t, cta);
            uint64_t out;
            if (ptx::isFloat(st) && ptx::isFloat(dt)) {
                out = wrF(dt, rdF(st, a));
            } else if (ptx::isFloat(st)) {
                double x = rdF(st, a);
                x = ins.cvt_round == ptx::CvtRound::Nearest
                        ? std::nearbyint(x)
                        : std::trunc(x);
                out = ptx::isSigned(dt)
                          ? wrInt(dt, uint64_t(clampSigned(
                                          x, ptx::typeSize(dt) * 8)))
                          : wrInt(dt,
                                  clampUnsigned(x, ptx::typeSize(dt) * 8));
            } else if (ptx::isFloat(dt)) {
                out = ptx::isSigned(st) ? wrF(dt, double(rdS(st, a)))
                                        : wrF(dt, double(rdU(st, a)));
            } else {
                out = ptx::isSigned(st) ? wrInt(dt, uint64_t(rdS(st, a)))
                                        : wrInt(dt, rdU(st, a));
            }
            splice(regs[size_t(ins.ops[0].reg)], dt, out);
            t.pc++;
            continue;
          }
          case Op::Setp: {
            const uint64_t a = readOperand(ins, ins.ops[1], t, cta);
            const uint64_t b = readOperand(ins, ins.ops[2], t, cta);
            const bool r = evalSetp(ins, ins.type, a, b);
            splice(regs[size_t(ins.ops[0].reg)], Type::Pred, r ? 1 : 0);
            t.pc++;
            continue;
          }
          case Op::Selp: {
            const uint64_t a = readOperand(ins, ins.ops[1], t, cta);
            const uint64_t b = readOperand(ins, ins.ops[2], t, cta);
            const uint64_t p = readOperand(ins, ins.ops[3], t, cta);
            splice(regs[size_t(ins.ops[0].reg)], ins.type,
                   predByte(p) ? a : b);
            t.pc++;
            continue;
          }
          case Op::Bfi: {
            const uint64_t ia = rdU(ins.type,
                                    readOperand(ins, ins.ops[1], t, cta));
            const uint64_t ib = rdU(ins.type,
                                    readOperand(ins, ins.ops[2], t, cta));
            const uint32_t pos =
                uint32_t(readOperand(ins, ins.ops[3], t, cta)) & 0xff;
            const uint32_t len =
                uint32_t(readOperand(ins, ins.ops[4], t, cta)) & 0xff;
            const unsigned w = ptx::typeSize(ins.type) * 8;
            uint64_t out = ib;
            if (len > 0 && pos < w) {
                const uint64_t mask =
                    (len >= 64 ? ~0ull : ((1ull << len) - 1)) << pos;
                out = (ib & ~mask) | ((ia << pos) & mask);
            }
            splice(regs[size_t(ins.ops[0].reg)], ins.type,
                   wrInt(ins.type, out));
            t.pc++;
            continue;
          }
          case Op::Ld: {
            MLGS_REQUIRE(ins.vec_width == 1,
                         "RefExec: vector loads unsupported: ", ins.text);
            const Operand &am = ins.ops[1];
            const addr_t ea =
                (am.reg >= 0 ? regs[size_t(am.reg)] : symbolAddr(am.sym)) +
                addr_t(am.imm);
            const unsigned esz = ptx::typeSize(ins.type);
            uint8_t bytes[8] = {};
            loadBytes(ea, bytes, esz, shared, ins.space);
            uint64_t raw = 0;
            std::memcpy(&raw, bytes, esz); // little-endian cell load
            uint64_t cell;
            switch (ins.type) {
              case Type::S8: cell = uint64_t(int64_t(int8_t(raw))); break;
              case Type::S16: cell = uint64_t(int64_t(int16_t(raw))); break;
              case Type::S32: cell = uint64_t(int64_t(int32_t(raw))); break;
              default: cell = raw; break; // unsigned/bits/float: raw bytes
            }
            splice(regs[size_t(ins.ops[0].reg)], ins.type, cell);
            t.pc++;
            continue;
          }
          case Op::St: {
            MLGS_REQUIRE(ins.vec_width == 1,
                         "RefExec: vector stores unsupported: ", ins.text);
            const Operand &am = ins.ops[0];
            const addr_t ea =
                (am.reg >= 0 ? regs[size_t(am.reg)] : symbolAddr(am.sym)) +
                addr_t(am.imm);
            const uint64_t v = readOperand(ins, ins.ops[1], t, cta);
            const unsigned esz = ptx::typeSize(ins.type);
            uint8_t bytes[8];
            std::memcpy(bytes, &v, 8);
            storeBytes(ea, bytes, esz, shared, ins.space);
            t.pc++;
            continue;
          }
          case Op::Atom:
          case Op::Red:
          case Op::Tex:
            fatal("RefExec: unsupported instruction '", ins.text, "'");
          default: {
            // Plain ALU: d, a [, b [, c]]
            const size_t n = ins.ops.size();
            MLGS_REQUIRE(n >= 2, "RefExec: malformed ALU instr ", ins.text);
            const uint64_t a = readOperand(ins, ins.ops[1], t, cta);
            const uint64_t b =
                n > 2 ? readOperand(ins, ins.ops[2], t, cta) : 0;
            const uint64_t c =
                n > 3 ? readOperand(ins, ins.ops[3], t, cta) : 0;
            const uint64_t out = alu(ins, a, b, c);
            Type dt = ins.type;
            if ((ins.op == Op::Mul || ins.op == Op::Mad) &&
                ins.mul_mode == MulMode::Wide) {
                switch (ins.type) {
                  case Type::U32: dt = Type::U64; break;
                  case Type::S32: dt = Type::S64; break;
                  case Type::U16: dt = Type::U32; break;
                  case Type::S16: dt = Type::S32; break;
                  default: break;
                }
            }
            if (ins.op == Op::Popc || ins.op == Op::Clz)
                dt = Type::U32;
            splice(regs[size_t(ins.ops[0].reg)], dt, out);
            t.pc++;
            continue;
          }
        }
    }
}

void
RefExec::runCta(uint64_t linear_cta)
{
    const Dim3 cta = unflatten(linear_cta, grid_);
    std::vector<uint8_t> shared(k_.shared_bytes, 0);

    std::vector<Thread> threads(threads_per_cta_);
    for (unsigned i = 0; i < threads_per_cta_; i++) {
        threads[i].regs = &regs_[size_t(linear_cta) * threads_per_cta_ + i];
        threads[i].idx3 = unflatten(i, block_);
        threads[i].tid = i;
    }

    while (true) {
        bool progressed = false;
        for (auto &t : threads) {
            if (t.state == Thread::Running) {
                runThread(t, shared, cta);
                progressed = true;
            }
        }
        bool any_barrier = false, all_done = true;
        for (const auto &t : threads) {
            if (t.state != Thread::Done)
                all_done = false;
            if (t.state == Thread::AtBarrier)
                any_barrier = true;
        }
        if (all_done)
            return;
        MLGS_REQUIRE(progressed || any_barrier,
                     "RefExec: CTA deadlock in ", k_.name);
        // Naive barrier: every unfinished thread is at the barrier; release.
        for (auto &t : threads)
            if (t.state == Thread::AtBarrier)
                t.state = Thread::Running;
    }
}

void
RefExec::run()
{
    for (uint64_t c = 0; c < num_ctas_; c++)
        runCta(c);
}

} // namespace mlgs::difftest
