#include "difftest/kernel_gen.h"

#include <algorithm>
#include <cstdio>

namespace mlgs::difftest
{

namespace
{

/** Generator register classes (each maps to a dedicated PTX register pool). */
enum Cls : unsigned
{
    CU32,
    CS32,
    CU64,
    CS64,
    CF32,
    CF16,
    CPRED,
    NCLS,
};

struct ClsInfo
{
    const char *prefix; ///< register-name prefix ("%u", "%s", ...)
    const char *regty;  ///< declared type (".u32", ...)
};

const ClsInfo kCls[NCLS] = {
    {"%u", ".u32"}, {"%s", ".s32"}, {"%w", ".u64"}, {"%x", ".s64"},
    {"%f", ".f32"}, {"%h", ".f16"}, {"%p", ".pred"},
};

const Cls kIntCls[4] = {CU32, CS32, CU64, CS64};

const char *
clsTok(Cls c)
{
    switch (c) {
      case CU32: return "u32";
      case CS32: return "s32";
      case CU64: return "u64";
      case CS64: return "s64";
      case CF32: return "f32";
      case CF16: return "f16";
      default: return "pred";
    }
}

/** Self-contained replacement statement keeping `reg` defined. */
std::string
fallbackFor(Cls c, const std::string &reg)
{
    switch (c) {
      case CU32: return "mov.u32 " + reg + ", 2309;";
      case CS32: return "mov.s32 " + reg + ", -47;";
      case CU64: return "mov.u64 " + reg + ", 77777;";
      case CS64: return "mov.s64 " + reg + ", -9999;";
      case CF32: return "mov.f32 " + reg + ", 0f3FC00000;"; // 1.5f
      case CF16: return "mov.b16 " + reg + ", 15360;";      // 1.0h
      default: return "setp.eq.u32 " + reg + ", 1, 1;";
    }
}

/**
 * Builds one kernel. All randomness comes from the embedded Rng so a seed
 * fully determines the output.
 */
struct Builder
{
    Rng rng;
    GenKernel k;
    unsigned count[NCLS] = {};            ///< registers allocated per class
    unsigned na = 0;                      ///< %a address registers (u64)
    std::vector<std::string> pool[NCLS];  ///< live, readable values
    /**
     * Registers guarded ops may redefine. Structural values (lin/gid/...)
     * are deliberately absent: they feed address computations and shared
     * tile indices, so clobbering them would break in-bounds guarantees.
     */
    std::vector<std::string> redef[NCLS];

    explicit Builder(uint64_t seed) : rng(seed) { k.seed = seed; }

    std::string
    newReg(Cls c)
    {
        return kCls[c].prefix + std::to_string(count[c]++);
    }

    std::string newAddr() { return "%a" + std::to_string(na++); }

    const std::string &
    pick(Cls c)
    {
        return pool[c][rng.below(pool[c].size())];
    }

    bool hasVal(Cls c) const { return !pool[c].empty(); }

    void
    emit(std::string text, std::string def = "",
         std::vector<std::string> uses = {}, bool structural = false,
         bool droppable = false, std::string fallback = "")
    {
        GenStmt s;
        s.text = std::move(text);
        s.fallback = std::move(fallback);
        s.structural = structural;
        s.droppable = droppable;
        s.def = std::move(def);
        s.uses = std::move(uses);
        k.body.push_back(std::move(s));
    }

    void
    label(const std::string &name)
    {
        GenStmt s;
        s.text = name + ":";
        s.structural = true;
        s.is_label = true;
        k.body.push_back(std::move(s));
    }

    /** Emit a pool-defining statement with its class fallback; pool the def. */
    void
    def(Cls c, std::string text, const std::string &reg,
        std::vector<std::string> uses)
    {
        emit(std::move(text), reg, std::move(uses), false, false,
             fallbackFor(c, reg));
        pool[c].push_back(reg);
        redef[c].push_back(reg);
    }

    /** Like def() but the register is not pooled (phi staging, guards). */
    void
    defNoPool(Cls c, std::string text, const std::string &reg,
              std::vector<std::string> uses)
    {
        emit(std::move(text), reg, std::move(uses), false, false,
             fallbackFor(c, reg));
    }

    // ---- launch shape ------------------------------------------------

    void
    pickShape()
    {
        static const uint32_t bx[] = {8, 16, 32, 32, 33, 64};
        k.spec.block.x = bx[rng.below(6)];
        k.spec.block.y = rng.below(4) == 0 ? 2 : 1;
        k.spec.grid.x = uint32_t(1 + rng.below(3));
        while (k.spec.totalThreads() > 256)
            k.spec.grid.x--;
        k.spec.kernel = "fuzz";
        k.spec.data_seed = k.seed;
    }

    unsigned nthreads() const { return unsigned(k.spec.block.count()); }

    // ---- structural prologue ------------------------------------------

    std::string in0p, in1p, outp; ///< per-thread slice base addresses
    std::string lin, gid;         ///< linear tid in block / in grid
    std::string a_in0_;           ///< raw in0 base (stride probes)

    void
    prologue()
    {
        const unsigned in_bytes = 4 * k.spec.in_words;
        const unsigned out_bytes = 8 * k.spec.out_slots;

        const std::string a_in0 = newAddr(), a_in1 = newAddr(),
                          a_out = newAddr();
        a_in0_ = a_in0;
        emit("ld.param.u64 " + a_in0 + ", [in0];", a_in0, {}, true);
        emit("ld.param.u64 " + a_in1 + ", [in1];", a_in1, {}, true);
        emit("ld.param.u64 " + a_out + ", [out];", a_out, {}, true);

        const std::string tx = newReg(CU32), ty = newReg(CU32),
                          nx = newReg(CU32);
        emit("mov.u32 " + tx + ", %tid.x;", tx, {}, true);
        emit("mov.u32 " + ty + ", %tid.y;", ty, {}, true);
        emit("mov.u32 " + nx + ", %ntid.x;", nx, {}, true);
        lin = newReg(CU32);
        emit("mad.lo.u32 " + lin + ", " + ty + ", " + nx + ", " + tx + ";",
             lin, {ty, nx, tx}, true);

        const std::string cid = newReg(CU32), ny = newReg(CU32),
                          nt = newReg(CU32);
        emit("mov.u32 " + cid + ", %ctaid.x;", cid, {}, true);
        emit("mov.u32 " + ny + ", %ntid.y;", ny, {}, true);
        emit("mul.lo.u32 " + nt + ", " + nx + ", " + ny + ";", nt,
             {nx, ny}, true);
        gid = newReg(CU32);
        emit("mad.lo.u32 " + gid + ", " + cid + ", " + nt + ", " + lin + ";",
             gid, {cid, nt, lin}, true);

        const std::string off_in = newAddr();
        emit("mul.wide.u32 " + off_in + ", " + gid + ", " +
                 std::to_string(in_bytes) + ";",
             off_in, {gid}, true);
        in0p = newAddr();
        emit("add.u64 " + in0p + ", " + a_in0 + ", " + off_in + ";", in0p,
             {a_in0, off_in}, true);
        in1p = newAddr();
        emit("add.u64 " + in1p + ", " + a_in1 + ", " + off_in + ";", in1p,
             {a_in1, off_in}, true);

        const std::string off_out = newAddr();
        emit("mul.wide.u32 " + off_out + ", " + gid + ", " +
                 std::to_string(out_bytes) + ";",
             off_out, {gid}, true);
        outp = newAddr();
        emit("add.u64 " + outp + ", " + a_out + ", " + off_out + ";", outp,
             {a_out, off_out}, true);

        const std::string total = newReg(CU32);
        emit("ld.param.u32 " + total + ", [total];", total, {}, true);

        pool[CU32] = {tx, cid, lin, gid, total, nx};
    }

    // ---- per-class data seeds ------------------------------------------

    void
    seedValues()
    {
        auto ld = [&](Cls c, const char *ty, const std::string &base,
                      unsigned off) {
            const std::string r = newReg(c);
            def(c,
                "ld.global." + std::string(ty) + " " + r + ", [" + base +
                    "+" + std::to_string(off) + "];",
                r, {base});
            return r;
        };
        const std::string u9 = ld(CU32, "u32", in0p, 0);
        const std::string u10 = ld(CU32, "u32", in0p, 4);
        const std::string s0 = ld(CS32, "s32", in0p, 8);
        ld(CS32, "s32", in0p, 12);
        ld(CU64, "u64", in0p, 16);
        ld(CU64, "u64", in0p, 24);

        std::string r = newReg(CS64);
        def(CS64, "cvt.s64.s32 " + r + ", " + s0 + ";", r, {s0});
        r = newReg(CS64);
        def(CS64, "cvt.s64.u32 " + r + ", " + u9 + ";", r, {u9});

        const std::string f0 = ld(CF32, "f32", in1p, 0);
        const std::string f1 = ld(CF32, "f32", in1p, 4);
        ld(CF32, "f32", in1p, 8);

        r = newReg(CF16);
        def(CF16, "cvt.rn.f16.f32 " + r + ", " + f0 + ";", r, {f0});
        r = newReg(CF16);
        def(CF16, "cvt.rn.f16.f32 " + r + ", " + f1 + ";", r, {f1});

        r = newReg(CPRED);
        def(CPRED, "setp.lt.u32 " + r + ", " + u9 + ", " + u10 + ";", r,
            {u9, u10});
    }

    // ---- weighted instruction menu ---------------------------------------

    /** Random source: pool register (usually) or a small immediate. */
    std::string
    srcOrImm(Cls c, std::vector<std::string> &uses)
    {
        if (rng.below(10) < 7 || !hasVal(c)) {
            if (!hasVal(c))
                return std::to_string(rng.below(1024));
            const std::string &r = pick(c);
            uses.push_back(r);
            return r;
        }
        return std::to_string(rng.below(1024));
    }

    void
    menuOp()
    {
        switch (rng.below(24)) {
          case 0: case 1: case 2: case 3: case 4: { // int binop
            static const char *ops[] = {"add", "sub", "mul.lo", "min",
                                        "max", "and", "or",  "xor"};
            const Cls c = kIntCls[rng.below(4)];
            const char *op = ops[rng.below(8)];
            const std::string d = newReg(c);
            std::vector<std::string> uses;
            const std::string a = pick(c);
            uses.push_back(a);
            const std::string b = srcOrImm(c, uses);
            def(c,
                std::string(op) + "." + clsTok(c) + " " + d + ", " + a +
                    ", " + b + ";",
                d, uses);
            return;
          }
          case 5: { // integer div/rem over register operands
            const Cls c = kIntCls[rng.below(4)];
            const char *op = rng.below(2) ? "div" : "rem";
            const std::string d = newReg(c), a = pick(c), b = pick(c);
            def(c,
                std::string(op) + "." + clsTok(c) + " " + d + ", " + a +
                    ", " + b + ";",
                d, {a, b});
            return;
          }
          case 6: { // mad.lo
            const Cls c = kIntCls[rng.below(4)];
            const std::string d = newReg(c), a = pick(c), b = pick(c),
                              cc = pick(c);
            def(c,
                "mad.lo." + std::string(clsTok(c)) + " " + d + ", " + a +
                    ", " + b + ", " + cc + ";",
                d, {a, b, cc});
            return;
          }
          case 7: { // mul.wide / mad.wide (32 -> 64)
            const bool sgn = rng.below(2);
            const Cls cs = sgn ? CS32 : CU32, cd = sgn ? CS64 : CU64;
            const std::string d = newReg(cd), a = pick(cs), b = pick(cs);
            if (rng.below(2) && hasVal(cd)) {
                const std::string cc = pick(cd);
                def(cd,
                    "mad.wide." + std::string(clsTok(cs)) + " " + d + ", " +
                        a + ", " + b + ", " + cc + ";",
                    d, {a, b, cc});
            } else {
                def(cd,
                    "mul.wide." + std::string(clsTok(cs)) + " " + d + ", " +
                        a + ", " + b + ";",
                    d, {a, b});
            }
            return;
          }
          case 8: { // mul.hi (no s64: the engine's 64-bit high product is
                    // computed unsigned, which the spec-side reference does
                    // not replicate for signed operands)
            static const Cls hi_cls[] = {CU32, CS32, CU64};
            const Cls c = hi_cls[rng.below(3)];
            const std::string d = newReg(c), a = pick(c), b = pick(c);
            def(c,
                "mul.hi." + std::string(clsTok(c)) + " " + d + ", " + a +
                    ", " + b + ";",
                d, {a, b});
            return;
          }
          case 9: case 10: { // shifts (immediate or register amount)
            const Cls c = kIntCls[rng.below(4)];
            const bool left = rng.below(2);
            const unsigned w = (c == CU64 || c == CS64) ? 64 : 32;
            const std::string d = newReg(c), a = pick(c);
            std::vector<std::string> uses = {a};
            std::string sh;
            if (rng.below(2) || !hasVal(CU32)) {
                sh = std::to_string(rng.below(w + 8)); // may exceed width
            } else {
                sh = pick(CU32);
                uses.push_back(sh);
            }
            const std::string mn =
                left ? "shl.b" + std::to_string(w)
                     : "shr." + std::string(clsTok(c));
            if (left && (c == CS32 || c == CS64)) {
                // shl is bits-typed; keep the pool class-pure by shifting
                // within the matching unsigned class instead.
                const Cls uc = c == CS32 ? CU32 : CU64;
                const std::string du = newReg(uc), au = pick(uc);
                def(uc,
                    "shl.b" + std::to_string(w) + " " + du + ", " + au +
                        ", " + sh + ";",
                    du,
                    uses.size() > 1
                        ? std::vector<std::string>{au, uses[1]}
                        : std::vector<std::string>{au});
                return;
            }
            def(c, mn + " " + d + ", " + a + ", " + sh + ";", d, uses);
            return;
          }
          case 11: { // bfe
            const Cls c = kIntCls[rng.below(4)];
            const std::string d = newReg(c), a = pick(c);
            std::vector<std::string> uses = {a};
            std::string pos, len;
            if (rng.below(4) == 0 && hasVal(CU32)) {
                pos = pick(CU32);
                uses.push_back(pos);
            } else {
                pos = std::to_string(rng.below(48));
            }
            len = std::to_string(rng.below(24));
            def(c,
                "bfe." + std::string(clsTok(c)) + " " + d + ", " + a + ", " +
                    pos + ", " + len + ";",
                d, uses);
            return;
          }
          case 12: { // bfi.b32 / bfi.b64
            const Cls c = rng.below(2) ? CU32 : CU64;
            const unsigned w = c == CU64 ? 64 : 32;
            const std::string d = newReg(c), a = pick(c), b = pick(c);
            def(c,
                "bfi.b" + std::to_string(w) + " " + d + ", " + a + ", " + b +
                    ", " + std::to_string(rng.below(w)) + ", " +
                    std::to_string(1 + rng.below(16)) + ";",
                d, {a, b});
            return;
          }
          case 13: { // popc/clz/brev/not
            const Cls c = rng.below(2) ? CU32 : CU64;
            const unsigned w = c == CU64 ? 64 : 32;
            const std::string a = pick(c);
            switch (rng.below(4)) {
              case 0: {
                const std::string d = newReg(CU32);
                def(CU32,
                    "popc.b" + std::to_string(w) + " " + d + ", " + a + ";",
                    d, {a});
                return;
              }
              case 1: {
                const std::string d = newReg(CU32);
                def(CU32,
                    "clz.b" + std::to_string(w) + " " + d + ", " + a + ";",
                    d, {a});
                return;
              }
              case 2: {
                const std::string d = newReg(c);
                def(c,
                    "brev.b" + std::to_string(w) + " " + d + ", " + a + ";",
                    d, {a});
                return;
              }
              default: {
                const std::string d = newReg(c);
                def(c,
                    "not.b" + std::to_string(w) + " " + d + ", " + a + ";",
                    d, {a});
                return;
              }
            }
          }
          case 14: { // neg/abs (32-bit signed only: no INT64_MIN pitfalls)
            const std::string d = newReg(CS32), a = pick(CS32);
            def(CS32,
                std::string(rng.below(2) ? "neg" : "abs") + ".s32 " + d +
                    ", " + a + ";",
                d, {a});
            return;
          }
          case 15: case 16: { // setp
            static const Cls cls[] = {CU32, CS32, CU64, CS64, CF32};
            const Cls c = cls[rng.below(5)];
            static const char *ucmp[] = {"eq", "ne", "lo", "ls", "hi", "hs"};
            static const char *scmp[] = {"eq", "ne", "lt", "le", "gt", "ge"};
            const bool uns = c == CU32 || c == CU64;
            const char *cmp =
                uns ? ucmp[rng.below(6)] : scmp[rng.below(6)];
            const std::string d = newReg(CPRED), a = pick(c), b = pick(c);
            def(CPRED,
                "setp." + std::string(cmp) + "." + clsTok(c) + " " + d +
                    ", " + a + ", " + b + ";",
                d, {a, b});
            return;
          }
          case 17: { // selp
            static const Cls cls[] = {CU32, CS32, CU64, CS64, CF32};
            const Cls c = cls[rng.below(5)];
            const std::string d = newReg(c), a = pick(c), b = pick(c),
                              p = pick(CPRED);
            def(c,
                "selp." + std::string(clsTok(c)) + " " + d + ", " + a +
                    ", " + b + ", " + p + ";",
                d, {a, b, p});
            return;
          }
          case 18: case 19: { // f32 arithmetic
            const std::string d = newReg(CF32), a = pick(CF32);
            switch (rng.below(8)) {
              case 0: case 1: {
                static const char *ops[] = {"add", "sub", "mul", "min",
                                            "max"};
                const std::string b = pick(CF32);
                def(CF32,
                    std::string(ops[rng.below(5)]) + ".f32 " + d + ", " + a +
                        ", " + b + ";",
                    d, {a, b});
                return;
              }
              case 2: {
                const std::string b = pick(CF32);
                def(CF32, "div.rn.f32 " + d + ", " + a + ", " + b + ";", d,
                    {a, b});
                return;
              }
              case 3: case 4: {
                const std::string b = pick(CF32), cc = pick(CF32);
                def(CF32,
                    std::string(rng.below(2) ? "fma.rn" : "mad") + ".f32 " +
                        d + ", " + a + ", " + b + ", " + cc + ";",
                    d, {a, b, cc});
                return;
              }
              case 5:
                def(CF32, "sqrt.rn.f32 " + d + ", " + a + ";", d, {a});
                return;
              case 6:
                def(CF32, "neg.f32 " + d + ", " + a + ";", d, {a});
                return;
              default:
                def(CF32, "abs.f32 " + d + ", " + a + ";", d, {a});
                return;
            }
          }
          case 20: { // f16 arithmetic
            const std::string d = newReg(CF16), a = pick(CF16);
            switch (rng.below(4)) {
              case 0: case 1: {
                static const char *ops[] = {"add", "sub", "mul"};
                const std::string b = pick(CF16);
                def(CF16,
                    std::string(ops[rng.below(3)]) + ".f16 " + d + ", " + a +
                        ", " + b + ";",
                    d, {a, b});
                return;
              }
              default: {
                const std::string b = pick(CF16), cc = pick(CF16);
                def(CF16,
                    "fma.rn.f16 " + d + ", " + a + ", " + b + ", " + cc +
                        ";",
                    d, {a, b, cc});
                return;
              }
            }
          }
          case 21: { // cvt family
            switch (rng.below(11)) {
              case 0: cvt1(CU64, CU32, "cvt.u64.u32"); return;
              case 1: cvt1(CS64, CS32, "cvt.s64.s32"); return;
              case 2: cvt1(CU32, CU64, "cvt.u32.u64"); return;
              case 3: cvt1(CS32, CS64, "cvt.s32.s64"); return;
              case 4: cvt1(CS32, CF32, "cvt.rzi.s32.f32"); return;
              case 5: cvt1(CS32, CF32, "cvt.rni.s32.f32"); return;
              case 6: cvt1(CU32, CF32, "cvt.rzi.u32.f32"); return;
              case 7: cvt1(CF32, CS32, "cvt.rn.f32.s32"); return;
              case 8: cvt1(CF32, CU32, "cvt.rn.f32.u32"); return;
              case 9: cvt1(CF32, CF16, "cvt.f32.f16"); return;
              default: cvt1(CF16, CF32, "cvt.rn.f16.f32"); return;
            }
          }
          case 22: { // extra global load from an input slice
            const unsigned word = unsigned(rng.below(k.spec.in_words));
            switch (rng.below(3)) {
              case 0: {
                const std::string d = newReg(CU32);
                def(CU32,
                    "ld.global.u32 " + d + ", [" + in0p + "+" +
                        std::to_string(4 * word) + "];",
                    d, {in0p});
                return;
              }
              case 1: {
                const std::string d = newReg(CS32);
                def(CS32,
                    "ld.global.s32 " + d + ", [" + in0p + "+" +
                        std::to_string(4 * word) + "];",
                    d, {in0p});
                return;
              }
              default: {
                const std::string d = newReg(CF32);
                def(CF32,
                    "ld.global.f32 " + d + ", [" + in1p + "+" +
                        std::to_string(4 * word) + "];",
                    d, {in1p});
                return;
              }
            }
          }
          default: { // guarded op or store to the thread's output slice
            const Cls c = kIntCls[rng.below(4)];
            if (rng.below(2) && !redef[c].empty()) {
                // Guarded redefinition of an existing value (keeps the
                // must-defined invariant: the register already has a def).
                const std::string d = redef[c][rng.below(redef[c].size())];
                const std::string a = pick(c), b = pick(c),
                                  p = pick(CPRED);
                const std::string at = rng.below(2) ? "@" : "@!";
                emit(at + p + " add." + clsTok(c) + " " + d + ", " + a +
                         ", " + b + ";",
                     d, {p, a, b}, false, false, fallbackFor(c, d));
                return;
            }
            storeRandom(rng.below(2) == 0);
            return;
          }
        }
    }

    void
    cvt1(Cls cd, Cls cs, const std::string &mn)
    {
        const std::string d = newReg(cd), a = pick(cs);
        def(cd, mn + " " + d + ", " + a + ";", d, {a});
    }

    /** Droppable store of a random pool value into the output slice. */
    void
    storeRandom(bool guarded)
    {
        const unsigned slot = unsigned(rng.below(k.spec.out_slots));
        std::string guard;
        std::vector<std::string> uses;
        if (guarded) {
            const std::string p = pick(CPRED);
            guard = (rng.below(2) ? "@" : "@!") + p + " ";
            uses.push_back(p);
        }
        switch (rng.below(4)) {
          case 0: {
            const std::string v = pick(CU32);
            uses.insert(uses.end(), {v, outp});
            emit(guard + "st.global.u32 [" + outp + "+" +
                     std::to_string(8 * slot + 4 * rng.below(2)) + "], " + v +
                     ";",
                 "", uses, false, true);
            return;
          }
          case 1: {
            const std::string v = pick(CS32);
            uses.insert(uses.end(), {v, outp});
            emit(guard + "st.global.s32 [" + outp + "+" +
                     std::to_string(8 * slot + 4 * rng.below(2)) + "], " + v +
                     ";",
                 "", uses, false, true);
            return;
          }
          case 2: {
            const std::string v = pick(CU64);
            uses.insert(uses.end(), {v, outp});
            emit(guard + "st.global.u64 [" + outp + "+" +
                     std::to_string(8 * slot) + "], " + v + ";",
                 "", uses, false, true);
            return;
          }
          default: {
            const std::string v = pick(CF32);
            uses.insert(uses.end(), {v, outp});
            emit(guard + "st.global.f32 [" + outp + "+" +
                     std::to_string(8 * slot + 4 * rng.below(2)) + "], " + v +
                     ";",
                 "", uses, false, true);
            return;
          }
        }
    }

    // ---- seeded known-stride probes (perf-lint cross-check) ---------------

    /**
     * One global load and one shared store at a fixed per-lane word stride,
     * indexed by a fresh %tid.x register (the mad-computed linear id is not
     * tid-affine to the analyzer, probes must stay inside its address
     * language). The block is pinned to a single full warp by build().
     */
    void
    strideProbe(unsigned stride)
    {
        k.probe_stride = stride;
        const std::string rp = newReg(CU32);
        emit("mov.u32 " + rp + ", %tid.x;", rp, {}, true);

        const std::string goff = newAddr();
        emit("mul.wide.u32 " + goff + ", " + rp + ", " +
                 std::to_string(4 * stride) + ";",
             goff, {rp}, true);
        const std::string gaddr = newAddr();
        emit("add.u64 " + gaddr + ", " + a_in0_ + ", " + goff + ";", gaddr,
             {a_in0_, goff}, true);
        const std::string rv = newReg(CU32);
        k.probe_global_addr = gaddr;
        emit("ld.global.u32 " + rv + ", [" + gaddr + "];", rv, {gaddr}, true);
        emit("st.global.u32 [" + outp + "+60], " + rv + ";", "", {outp, rv},
             true);

        k.decl_lines.push_back(".shared .align 4 .b8 ptile[" +
                               std::to_string(4 * 32 * stride) + "];");
        const std::string sbase = newAddr();
        emit("mov.u64 " + sbase + ", ptile;", sbase, {}, true);
        const std::string saddr = newAddr();
        emit("add.u64 " + saddr + ", " + sbase + ", " + goff + ";", saddr,
             {sbase, goff}, true);
        k.probe_shared_addr = saddr;
        emit("st.shared.u32 [" + saddr + "], " + rp + ";", "", {saddr, rp},
             true);
    }

    // ---- divergent diamond with post-dominator reconvergence -------------

    void
    diamond(unsigned idx)
    {
        const unsigned nt = nthreads();
        const std::string pg = newReg(CPRED);
        const std::string kimm = std::to_string(1 + rng.below(nt - 1));
        const std::string l_else = "L_ELSE_" + std::to_string(idx);
        const std::string l_join = "L_JOIN_" + std::to_string(idx);

        emit("setp.ge.u32 " + pg + ", " + lin + ", " + kimm + ";", pg,
             {lin}, true);
        emit("@" + pg + " bra " + l_else + ";", "", {pg}, true);

        struct Phi
        {
            Cls cls;
            std::string reg;
        };
        std::vector<Phi> phis;
        static const Cls phi_cls[] = {CU32, CS32, CU64, CS64, CF32};
        const unsigned nphi = 1 + unsigned(rng.below(2));
        for (unsigned i = 0; i < nphi; i++) {
            const Cls c = phi_cls[rng.below(5)];
            phis.push_back({c, newReg(c)});
        }

        auto arm = [&]() {
            size_t snap[NCLS];
            for (unsigned c = 0; c < NCLS; c++)
                snap[c] = pool[c].size();
            const unsigned nops = unsigned(rng.below(4));
            for (unsigned i = 0; i < nops; i++)
                menuOp();
            for (const auto &phi : phis) {
                // Unconditional write in *both* arms: the phi is
                // must-defined at the join point.
                if (phi.cls == CF32 || !rng.below(3)) {
                    const std::string a = pick(phi.cls);
                    defNoPool(phi.cls,
                              "mov." + std::string(clsTok(phi.cls)) + " " +
                                  phi.reg + ", " + a + ";",
                              phi.reg, {a});
                } else {
                    const std::string a = pick(phi.cls), b = pick(phi.cls);
                    defNoPool(phi.cls,
                              "add." + std::string(clsTok(phi.cls)) + " " +
                                  phi.reg + ", " + a + ", " + b + ";",
                              phi.reg, {a, b});
                }
            }
            for (unsigned c = 0; c < NCLS; c++)
                pool[c].resize(snap[c]); // arm-local temps do not escape
        };

        arm(); // then-arm
        emit("bra " + l_join + ";", "", {}, true);
        label(l_else);
        arm(); // else-arm
        label(l_join);

        for (const auto &phi : phis) {
            pool[phi.cls].push_back(phi.reg);
            redef[phi.cls].push_back(phi.reg);
        }
    }

    // ---- shared-memory tile with bar.sync ---------------------------------

    void
    sharedTile()
    {
        const unsigned nt = nthreads();
        k.decl_lines.push_back(".shared .align 4 .b8 tile[" +
                               std::to_string(4 * nt) + "];");

        const std::string off = newReg(CU32);
        emit("mul.lo.u32 " + off + ", " + lin + ", 4;", off, {lin}, true);
        const std::string off64 = newAddr();
        emit("cvt.u64.u32 " + off64 + ", " + off + ";", off64, {off}, true);
        const std::string base = newAddr();
        emit("mov.u64 " + base + ", tile;", base, {}, true);
        const std::string waddr = newAddr();
        emit("add.u64 " + waddr + ", " + base + ", " + off64 + ";", waddr,
             {base, off64}, true);
        const std::string v = pick(CU32);
        emit("st.shared.u32 [" + waddr + "], " + v + ";", "", {waddr, v},
             true);
        emit("bar.sync 0;", "", {}, true);

        const std::string nb = newReg(CU32);
        emit("add.u32 " + nb + ", " + lin + ", 1;", nb, {lin}, true);
        const std::string nbw = newReg(CU32);
        emit("rem.u32 " + nbw + ", " + nb + ", " + std::to_string(nt) + ";",
             nbw, {nb}, true);
        const std::string noff = newReg(CU32);
        emit("mul.lo.u32 " + noff + ", " + nbw + ", 4;", noff, {nbw}, true);
        const std::string noff64 = newAddr();
        emit("cvt.u64.u32 " + noff64 + ", " + noff + ";", noff64, {noff},
             true);
        const std::string raddr = newAddr();
        emit("add.u64 " + raddr + ", " + base + ", " + noff64 + ";", raddr,
             {base, noff64}, true);
        const std::string got = newReg(CU32);
        emit("ld.shared.u32 " + got + ", [" + raddr + "];", got, {raddr},
             true);
        pool[CU32].push_back(got);
    }

    // ---- injected-bug detectability probes --------------------------------

    void
    bugProbes()
    {
        // rem probe: -7 rem.s32 3 is -1; the legacy untyped u64 rem gives 0.
        std::string a = newReg(CS32);
        defNoPool(CS32, "mov.s32 " + a + ", -7;", a, {});
        std::string b = newReg(CS32);
        defNoPool(CS32, "mov.s32 " + b + ", 3;", b, {});
        std::string r = newReg(CS32);
        def(CS32, "rem.s32 " + r + ", " + a + ", " + b + ";", r, {a, b});
        emit("st.global.s32 [" + outp + "+48], " + r + ";", "", {outp, r},
             false, true);

        // bfe probe: signed extract of -1 at pos 4 len 8 is -1; the legacy
        // unsign-extended bfe gives 255.
        a = newReg(CS32);
        defNoPool(CS32, "mov.s32 " + a + ", -1;", a, {});
        r = newReg(CS32);
        def(CS32, "bfe.s32 " + r + ", " + a + ", 4, 8;", r, {a});
        emit("st.global.s32 [" + outp + "+52], " + r + ";", "", {outp, r},
             false, true);

        // fma probe: a = 1 + 2^-12, c = 2^-24. fma(a, a, c) keeps the sticky
        // low bit (0x3F801001); round(a*a)+c double-rounds to 0x3F801000.
        a = newReg(CF32);
        defNoPool(CF32, "mov.f32 " + a + ", 0f3F800800;", a, {});
        b = newReg(CF32);
        defNoPool(CF32, "mov.f32 " + b + ", 0f33800000;", b, {});
        r = newReg(CF32);
        def(CF32, "fma.rn.f32 " + r + ", " + a + ", " + a + ", " + b + ";",
            r, {a, b});
        emit("st.global.f32 [" + outp + "+56], " + r + ";", "", {outp, r},
             false, true);
    }

    // ---- epilogue ---------------------------------------------------------

    void
    epilogue()
    {
        auto st = [&](const char *ty, unsigned off, const std::string &v) {
            emit("st.global." + std::string(ty) + " [" + outp + "+" +
                     std::to_string(off) + "], " + v + ";",
                 "", {outp, v}, false, true);
        };
        st("u32", 0, pick(CU32));
        st("s32", 8, pick(CS32));
        st("u64", 16, pick(CU64));
        st("s64", 24, pick(CS64));
        st("f32", 32, pick(CF32));
        st("f16", 36, pick(CF16));
        const std::string pz = pick(CPRED), uz = newReg(CU32);
        emit("selp.u32 " + uz + ", 1, 0, " + pz + ";", uz, {pz}, false,
             false, fallbackFor(CU32, uz));
        st("u32", 40, uz);
        emit("ret;", "", {}, true);
    }

    // ---- seeded defects ----------------------------------------------------

    void
    defectSharedRace()
    {
        const unsigned nt = nthreads();
        k.decl_lines.push_back(".shared .align 4 .b8 tile[" +
                               std::to_string(4 * (nt + 1)) + "];");
        // Index by %tid.x directly (not the mad-computed linear id): the
        // static race detector's affine abstraction only tracks tid-linear
        // addresses, and a seeded defect must live inside the address
        // language the detector supports to test the static/dynamic
        // cross-check rather than the abstraction's precision limits.
        const std::string tid = newReg(CU32);
        emit("mov.u32 " + tid + ", %tid.x;", tid, {}, true);
        const std::string off = newReg(CU32);
        emit("mul.lo.u32 " + off + ", " + tid + ", 4;", off, {tid}, true);
        const std::string off64 = newAddr();
        emit("cvt.u64.u32 " + off64 + ", " + off + ";", off64, {off}, true);
        const std::string base = newAddr();
        emit("mov.u64 " + base + ", tile;", base, {}, true);
        const std::string addr = newAddr();
        emit("add.u64 " + addr + ", " + base + ", " + off64 + ";", addr,
             {base, off64}, true);
        // Same-phase neighbour read: no bar.sync between store and load.
        emit("st.shared.u32 [" + addr + "], " + lin + ";", "", {addr, lin},
             true);
        const std::string got = newReg(CU32);
        emit("ld.shared.u32 " + got + ", [" + addr + "+4];", got, {addr},
             true);
        emit("st.global.u32 [" + outp + "+0], " + got + ";", "",
             {outp, got}, true);
        emit("ret;", "", {}, true);
    }

    void
    defectWideRemRead()
    {
        const std::string u = newReg(CU32);
        emit("ld.global.u32 " + u + ", [" + in0p + "+0];", u, {in0p}, true);
        const std::string w = newReg(CU64);
        emit("ld.global.u64 " + w + ", [" + in0p + "+16];", w, {in0p}, true);
        const std::string d = newReg(CU64);
        // The paper's rem bug class: a 64-bit rem reading a 32-bit register.
        emit("rem.u64 " + d + ", " + w + ", " + u + ";", d, {w, u}, true);
        emit("st.global.u64 [" + outp + "+0], " + d + ";", "", {outp, d},
             true);
        emit("ret;", "", {}, true);
    }

    // ---- assembly ----------------------------------------------------------

    GenKernel
    build(Defect defect, StrideSeed stride)
    {
        k.defect = defect;
        k.stride_seed = stride;
        pickShape();
        if (stride != StrideSeed::None) {
            // One full warp, one CTA: the probe's per-lane offsets cover
            // exactly the warp the classifier reasons about, and in_words
            // is grown so the widest stride stays inside the in0 buffer.
            k.spec.block = Dim3{32, 1, 1};
            k.spec.grid = Dim3{1, 1, 1};
            k.spec.in_words = 32;
        }
        prologue();
        if (stride != StrideSeed::None) {
            const unsigned words = stride == StrideSeed::Coalesced ? 1
                                   : stride == StrideSeed::Stride2 ? 2
                                                                   : 32;
            strideProbe(words);
        }

        switch (defect) {
          case Defect::SharedRace:
            defectSharedRace();
            break;
          case Defect::WideRemRead:
            defectWideRemRead();
            break;
          case Defect::None: {
            seedValues();
            const unsigned n1 = 4 + unsigned(rng.below(8));
            for (unsigned i = 0; i < n1; i++)
                menuOp();
            unsigned diamonds = 0;
            if (rng.below(10) < 7)
                diamond(diamonds++);
            const unsigned n2 = 2 + unsigned(rng.below(6));
            for (unsigned i = 0; i < n2; i++)
                menuOp();
            if (rng.below(10) < 6)
                sharedTile();
            if (rng.below(10) < 3)
                diamond(diamonds++);
            const unsigned n3 = 2 + unsigned(rng.below(6));
            for (unsigned i = 0; i < n3; i++)
                menuOp();
            bugProbes();
            epilogue();
            break;
          }
        }

        // Register declarations, now that per-class counts are final.
        std::vector<std::string> decls;
        if (na)
            decls.push_back(".reg .u64 %a<" + std::to_string(na) + ">;");
        for (unsigned c = 0; c < NCLS; c++) {
            if (count[c])
                decls.push_back(".reg " + std::string(kCls[c].regty) + " " +
                                kCls[c].prefix + "<" +
                                std::to_string(count[c]) + ">;");
        }
        decls.insert(decls.end(), k.decl_lines.begin(), k.decl_lines.end());
        k.decl_lines = std::move(decls);
        k.state.assign(k.body.size(), 0);
        return std::move(k);
    }
};

} // namespace

std::string
GenKernel::ptx() const
{
    std::string out;
    out += "// MLGPUSim difftest kernel (seed " + std::to_string(seed) + ")\n";
    out += ".version 6.0\n.target sm_70\n.address_size 64\n\n";
    out += ".visible .entry " + spec.kernel + "(\n";
    out += "    .param .u64 in0,\n";
    out += "    .param .u64 in1,\n";
    out += "    .param .u64 out,\n";
    out += "    .param .u32 total\n";
    out += ")\n{\n";
    for (const auto &d : decl_lines)
        out += "    " + d + "\n";
    out += "\n";
    for (size_t i = 0; i < body.size(); i++) {
        const uint8_t st = i < state.size() ? state[i] : 0;
        if (st == 2)
            continue;
        const GenStmt &s = body[i];
        if (s.is_label) {
            out += s.text + "\n";
            continue;
        }
        out += "    " + (st == 1 ? s.fallback : s.text) + "\n";
    }
    out += "}\n";
    return out;
}

unsigned
GenKernel::liveCount() const
{
    unsigned n = 0;
    for (size_t i = 0; i < body.size(); i++) {
        const uint8_t st = i < state.size() ? state[i] : 0;
        if (st != 2 && !body[i].is_label)
            n++;
    }
    return n;
}

GenKernel
KernelGen::generate(Defect defect, StrideSeed stride)
{
    Builder b(seed_);
    return b.build(defect, stride);
}

} // namespace mlgs::difftest
