/**
 * @file
 * Grammar-driven random PTX kernel generator for differential testing.
 *
 * KernelGen produces typed, verifier-well-formed kernels over a weighted
 * instruction menu (integer/float/f16 arithmetic, rem/div/bfe/bfi/mad/fma,
 * shared-memory tiles with bar.sync, divergent diamonds with guaranteed
 * post-dominator reconvergence, global loads/stores over caller-provided
 * buffers). Kernels are emitted as PTX *text* and consumed through the real
 * parser so the whole parse/analyze pipeline is on the tested path.
 *
 * Every generated statement carries enough structure (def/uses/fallback) for
 * the minimizer in difftest.cc to bisect the body while preserving both a
 * failure and the well-formedness invariants (no uninit reads, reconverging
 * control flow, in-bounds addressing).
 */
#ifndef MLGS_DIFFTEST_KERNEL_GEN_H
#define MLGS_DIFFTEST_KERNEL_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mlgs::difftest
{

/** Deliberately seeded defect class (for verifier/race-shadow cross-checks). */
enum class Defect : uint8_t
{
    None,        ///< clean, verifier-silent kernel
    SharedRace,  ///< same-phase shared-memory race (missing bar.sync)
    WideRemRead, ///< rem.u64 reading a 32-bit register (the paper's bug class)
};

/**
 * Seeded known-stride access pattern: the generated kernel carries one
 * global load and one shared store whose per-lane stride (in 4-byte words)
 * is fixed, so tests can assert that perf-lint statically classifies the
 * site exactly as seeded and that the dynamic site profiler measures the
 * same class — fuzzing the analyzer itself.
 */
enum class StrideSeed : uint8_t
{
    None,      ///< no probe emitted
    Coalesced, ///< stride 1: one transaction, conflict-free
    Stride2,   ///< stride 2: two transactions, 2-way bank conflict
    Stride32,  ///< stride 32: fully diverged, 32-way bank conflict
};

/** Everything needed to launch a generated kernel besides its PTX text. */
struct LaunchSpec
{
    std::string kernel = "fuzz";
    Dim3 grid{1, 1, 1};
    Dim3 block{32, 1, 1};
    unsigned in_words = 8;  ///< u32 words per thread in each input buffer
    unsigned out_slots = 8; ///< 8-byte output slots per thread
    uint64_t data_seed = 1; ///< seeds the input-buffer contents

    uint64_t totalThreads() const { return grid.count() * block.count(); }
};

/**
 * One generated statement. `state` (kept in GenKernel) selects between the
 * original text, the `fallback` (a self-contained mov that keeps the same
 * destination defined), or dropping the line entirely.
 */
struct GenStmt
{
    std::string text;     ///< canonical PTX line (no indentation)
    std::string fallback; ///< imm-only replacement defining `def`; "" = none
    bool structural = false; ///< prologue/control-flow/address skeleton
    bool droppable = false;  ///< side-effect-only line (stores): removable
    bool is_label = false;   ///< emitted without indentation
    std::string def;             ///< register written ("" if none)
    std::vector<std::string> uses; ///< registers read by `text`
};

/** A generated kernel: launch shape + minimizer-aware statement list. */
struct GenKernel
{
    LaunchSpec spec;
    Defect defect = Defect::None;
    uint64_t seed = 0; ///< generator seed (reproducibility bookkeeping)

    /**
     * Stride-probe bookkeeping (StrideSeed != None only). The probes are
     * located in the parsed kernel by their unique address registers: the
     * seeded global load is the ld.global whose address register is
     * `probe_global_addr`, the seeded shared store the st.shared addressed
     * by `probe_shared_addr`.
     */
    StrideSeed stride_seed = StrideSeed::None;
    unsigned probe_stride = 0;      ///< words between consecutive lanes
    std::string probe_global_addr;  ///< address register of the global load
    std::string probe_shared_addr;  ///< address register of the shared store

    std::vector<std::string> decl_lines; ///< .reg/.shared declarations
    std::vector<GenStmt> body;
    /** Per-statement minimizer state: 0 = keep, 1 = fallback, 2 = dropped. */
    std::vector<uint8_t> state;

    /** Render the full module (honours `state`). */
    std::string ptx() const;

    /** Statements still emitted verbatim (minimizer progress metric). */
    unsigned liveCount() const;
};

/**
 * Seedable generator. The same seed always yields the same kernel, byte for
 * byte, independent of prior generate() calls.
 */
class KernelGen
{
  public:
    explicit KernelGen(uint64_t seed) : seed_(seed) {}

    GenKernel generate(Defect defect = Defect::None,
                       StrideSeed stride = StrideSeed::None);

  private:
    uint64_t seed_;
};

} // namespace mlgs::difftest

#endif // MLGS_DIFFTEST_KERNEL_GEN_H
