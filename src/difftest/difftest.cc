#include "difftest/difftest.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "common/log.h"
#include "difftest/ref_exec.h"
#include "func/engine.h"
#include "mem/allocator.h"
#include "mem/gpu_memory.h"
#include "ptx/parser.h"
#include "ptx/verifier/verifier.h"

namespace mlgs::difftest
{

namespace
{

/** Fixed device placement of the three test buffers. */
struct BufferPlan
{
    addr_t in0 = 0, in1 = 0, out = 0;
    size_t in_bytes = 0, out_bytes = 0;
};

BufferPlan
planBuffers(const LaunchSpec &spec)
{
    BufferPlan p;
    const uint64_t threads = spec.totalThreads();
    p.in_bytes = size_t(4) * spec.in_words * threads;
    p.out_bytes = size_t(8) * spec.out_slots * threads;
    // A fresh allocator makes the layout deterministic across runs and
    // processes, so reproducer addresses always match the original failure.
    DeviceAllocator alloc;
    p.in0 = alloc.alloc(p.in_bytes);
    p.in1 = alloc.alloc(p.in_bytes);
    p.out = alloc.alloc(p.out_bytes);
    return p;
}

/**
 * Deterministic input images. in0 feeds the integer loads: words are biased
 * toward sign/width boundaries (the operand classes the rem/bfe bug family
 * is sensitive to). in1 feeds the float loads: exact powers of two, small
 * uniform values, signed zeros and a sprinkling of inf/NaN.
 */
void
fillInputs(const LaunchSpec &spec, std::vector<uint8_t> &in0,
           std::vector<uint8_t> &in1)
{
    const uint64_t threads = spec.totalThreads();
    in0.assign(size_t(4) * spec.in_words * threads, 0);
    in1.assign(size_t(4) * spec.in_words * threads, 0);
    Rng rng(spec.data_seed);

    for (size_t i = 0; i + 4 <= in0.size(); i += 4) {
        uint32_t w;
        switch (rng.below(8)) {
          case 0: w = 0; break;
          case 1: w = 1; break;
          case 2: w = 0xffffffffu; break;
          case 3: w = 0x80000000u; break;
          case 4: w = 0x7fffffffu; break;
          case 5: w = uint32_t(rng.below(32)); break;
          case 6: w = uint32_t(rng.next()) | 0x80000000u; break;
          default: w = uint32_t(rng.next()); break;
        }
        std::memcpy(in0.data() + i, &w, 4);
    }
    for (size_t i = 0; i + 4 <= in1.size(); i += 4) {
        float f;
        switch (rng.below(10)) {
          case 0: f = 0.0f; break;
          case 1: f = -0.0f; break;
          case 2: f = 1.0f; break;
          case 3: f = -1.5f; break;
          case 4:
            f = std::ldexp(1.0f, int(rng.below(21)) - 10);
            break;
          case 5: f = float(int64_t(rng.below(64)) - 32); break;
          case 6: f = std::numeric_limits<float>::infinity(); break;
          case 7: f = std::numeric_limits<float>::quiet_NaN(); break;
          default:
            f = (float(rng.next() % 80001) - 40000.0f) / 10000.0f;
            break;
        }
        std::memcpy(in1.data() + i, &f, 4);
    }
}

/** Pack the generated kernel's fixed parameter signature. */
std::vector<uint8_t>
packParams(const ptx::KernelDef &k, const BufferPlan &plan, uint64_t total)
{
    std::vector<uint8_t> params(k.param_bytes, 0);
    auto put = [&](const char *name, const void *v, size_t n) {
        const auto *p = k.findParam(name);
        MLGS_REQUIRE(p && p->offset + n <= params.size(),
                     "difftest: kernel is missing parameter ", name);
        std::memcpy(params.data() + p->offset, v, n);
    };
    put("in0", &plan.in0, 8);
    put("in1", &plan.in1, 8);
    put("out", &plan.out, 8);
    const uint32_t t32 = uint32_t(total);
    put("total", &t32, 4);
    return params;
}

/** Final architectural state captured from one engine or reference run. */
struct RunImage
{
    std::vector<uint8_t> out;
    /** [cta*tpc + tid][reg] raw 64-bit cells; empty when not captured. */
    std::vector<std::vector<uint64_t>> regs;
    uint64_t shared_races = 0;
};

/**
 * One SIMT-engine run. Registers are captured only on the serial path
 * (capture_regs): CTAs are stepped one by one through makeCta/runCta so the
 * final register file can be read back before the CTA state is destroyed.
 */
RunImage
runEngine(const ptx::KernelDef &k, const LaunchSpec &spec,
          const BufferPlan &plan, const std::vector<uint8_t> &in0,
          const std::vector<uint8_t> &in1, const func::BugModel &bugs,
          bool capture_regs, bool race_check, unsigned pool_threads,
          func::ExecMode mode)
{
    GpuMemory mem;
    mem.write(plan.in0, in0.data(), in0.size());
    mem.write(plan.in1, in1.data(), in1.size());
    mem.memset(plan.out, 0, plan.out_bytes);

    func::Interpreter interp(mem, bugs, mode);
    interp.setRaceCheck(race_check);
    func::FunctionalEngine engine(interp);

    func::LaunchEnv env;
    env.kernel = &k;
    env.params = packParams(k, plan, spec.totalThreads());

    RunImage img;
    if (capture_regs) {
        const unsigned tpc = unsigned(spec.block.count());
        func::FuncStats stats;
        for (uint64_t c = 0; c < spec.grid.count(); c++) {
            auto cta = engine.makeCta(env, spec.grid, spec.block, c);
            if (race_check)
                cta->enableRaceCheck();
            engine.runCta(*cta, env, UINT64_MAX, &stats);
            for (unsigned t = 0; t < tpc; t++) {
                const auto &regs = cta->thread(t).regs;
                std::vector<uint64_t> cells(regs.size());
                static_assert(sizeof(ptx::RegVal) == 8,
                              "RegVal must be a 64-bit cell");
                std::memcpy(cells.data(), regs.data(), regs.size() * 8);
                img.regs.push_back(std::move(cells));
            }
        }
        img.shared_races = stats.shared_races;
    } else {
        std::unique_ptr<ThreadPool> pool;
        if (pool_threads > 1) {
            pool = std::make_unique<ThreadPool>(pool_threads);
            engine.setThreadPool(pool.get());
        }
        const func::FuncStats stats =
            engine.launch(env, spec.grid, spec.block);
        img.shared_races = stats.shared_races;
    }

    img.out.resize(plan.out_bytes);
    mem.read(plan.out, img.out.data(), img.out.size());
    return img;
}

/** Scalar-reference run over host copies of the same buffer images. */
RunImage
runReference(const ptx::KernelDef &k, const LaunchSpec &spec,
             const BufferPlan &plan, const std::vector<uint8_t> &in0,
             const std::vector<uint8_t> &in1)
{
    std::vector<uint8_t> rin0 = in0, rin1 = in1;
    RunImage img;
    img.out.assign(plan.out_bytes, 0);

    RefExec ref(k, spec.grid, spec.block,
                packParams(k, plan, spec.totalThreads()),
                {{plan.in0, &rin0}, {plan.in1, &rin1}, {plan.out, &img.out}});
    ref.run();

    const unsigned tpc = ref.threadsPerCta();
    for (uint64_t c = 0; c < ref.numCtas(); c++)
        for (unsigned t = 0; t < tpc; t++)
            img.regs.push_back(ref.threadRegs(unsigned(c), t));
    return img;
}

/** First byte index where the two output images differ, or -1. */
int64_t
firstOutDiff(const RunImage &a, const RunImage &b)
{
    for (size_t i = 0; i < a.out.size(); i++)
        if (a.out[i] != b.out[i])
            return int64_t(i);
    return -1;
}

bool
regsMatch(const RunImage &a, const RunImage &b, std::string *where)
{
    if (a.regs.size() != b.regs.size()) {
        *where = "thread count mismatch";
        return false;
    }
    for (size_t t = 0; t < a.regs.size(); t++) {
        for (size_t r = 0; r < a.regs[t].size(); r++) {
            if (a.regs[t][r] != b.regs[t][r]) {
                std::ostringstream os;
                os << "thread " << t << " reg " << r << ": 0x" << std::hex
                   << a.regs[t][r] << " vs 0x" << b.regs[t][r];
                *where = os.str();
                return false;
            }
        }
    }
    return true;
}

bool
diverged(const RunImage &ref, const RunImage &run)
{
    if (firstOutDiff(ref, run) >= 0)
        return true;
    if (!run.regs.empty()) {
        std::string where;
        if (!regsMatch(ref, run, &where))
            return true;
    }
    return false;
}

void
setFailure(DiffResult &r, const std::string &msg)
{
    if (r.failure.empty())
        r.failure = msg;
}

/** Engine backends selected by opts.exec, in ground-truth-first order. */
std::vector<func::ExecMode>
backendsFor(DiffExec sel)
{
    switch (sel) {
      case DiffExec::Interp:
        return {func::ExecMode::Interp};
      case DiffExec::Compiled:
        return {func::ExecMode::Compiled};
      default:
        return {func::ExecMode::Interp, func::ExecMode::Compiled};
    }
}

const char *
diffExecName(DiffExec sel)
{
    switch (sel) {
      case DiffExec::Interp:   return "interp";
      case DiffExec::Compiled: return "compiled";
      default:                 return "both";
    }
}

/** Append `mode`'s name to the diverged-backend record ("a+b" on both). */
void
noteDiverged(DiffResult &r, func::ExecMode mode)
{
    const char *name = func::execModeName(mode);
    if (r.diverged_backend.find(name) != std::string::npos)
        return;
    if (!r.diverged_backend.empty())
        r.diverged_backend += "+";
    r.diverged_backend += name;
}

// ---- minimal JSON helpers for the reproducer sidecar (own format only) ----

std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    MLGS_REQUIRE(in.good(), "difftest: cannot open ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Position just past `"key"` and its ':', or npos. */
size_t
jsonValuePos(const std::string &s, const std::string &key)
{
    const std::string needle = "\"" + key + "\"";
    size_t p = s.find(needle);
    if (p == std::string::npos)
        return p;
    p = s.find(':', p + needle.size());
    return p == std::string::npos ? p : p + 1;
}

uint64_t
jsonUInt(const std::string &s, const std::string &key, uint64_t dflt)
{
    const size_t p = jsonValuePos(s, key);
    return p == std::string::npos ? dflt : std::stoull(s.substr(p));
}

bool
jsonBool(const std::string &s, const std::string &key)
{
    const size_t p = jsonValuePos(s, key);
    return p != std::string::npos && s.compare(p + 1, 4, "true") == 0;
}

std::string
jsonStr(const std::string &s, const std::string &key, const std::string &dflt)
{
    size_t p = jsonValuePos(s, key);
    if (p == std::string::npos)
        return dflt;
    p = s.find('"', p);
    const size_t e = s.find('"', p + 1);
    MLGS_REQUIRE(p != std::string::npos && e != std::string::npos,
                 "difftest: malformed string for key ", key);
    return s.substr(p + 1, e - p - 1);
}

Dim3
jsonDim3(const std::string &s, const std::string &key, Dim3 dflt)
{
    size_t p = jsonValuePos(s, key);
    if (p == std::string::npos)
        return dflt;
    p = s.find('[', p);
    MLGS_REQUIRE(p != std::string::npos, "difftest: malformed dim for ", key);
    Dim3 d;
    const char *c = s.c_str() + p + 1;
    char *end = nullptr;
    d.x = unsigned(std::strtoul(c, &end, 10));
    c = std::strchr(end, ',') + 1;
    d.y = unsigned(std::strtoul(c, &end, 10));
    c = std::strchr(end, ',') + 1;
    d.z = unsigned(std::strtoul(c, &end, 10));
    return d;
}

} // namespace

DiffResult
runPtx(const std::string &ptx_text, const LaunchSpec &spec,
       const DiffOptions &opts)
{
    DiffResult r;

    ptx::Module mod;
    try {
        mod = ptx::parseModule(ptx_text, "difftest.ptx");
    } catch (const std::exception &e) {
        setFailure(r, std::string("parse error: ") + e.what());
        return r;
    }
    const ptx::KernelDef *k = mod.findKernel(spec.kernel);
    if (!k) {
        setFailure(r, "kernel '" + spec.kernel + "' not found");
        return r;
    }
    r.parse_ok = true;

    const auto diags = ptx::verifier::verifyModule(mod);
    r.verifier_clean =
        ptx::verifier::maxSeverity(diags) == ptx::verifier::Severity::Note;
    if (!r.verifier_clean)
        setFailure(r, "verifier: " +
                          ptx::verifier::formatDiagnostic("difftest.ptx",
                                                          diags.front()));

    const BufferPlan plan = planBuffers(spec);
    std::vector<uint8_t> in0, in1;
    fillInputs(spec, in0, in1);

    RunImage ref;
    try {
        ref = runReference(*k, spec, plan, in0, in1);
    } catch (const std::exception &e) {
        setFailure(r, std::string("reference: ") + e.what());
        return r;
    }

    const std::vector<func::ExecMode> backends = backendsFor(opts.exec);
    try {
        if (opts.inject.anyEnabled()) {
            // Injected-bug mode: the only question is "does it diverge?" —
            // asked of every selected backend.
            for (const func::ExecMode mode : backends) {
                const RunImage bad = runEngine(*k, spec, plan, in0, in1,
                                               opts.inject, true, false, 1,
                                               mode);
                if (diverged(ref, bad)) {
                    r.injected_diverged = true;
                    noteDiverged(r, mode);
                }
            }
            r.ok = r.parse_ok;
            return r;
        }

        r.serial_match = r.parallel_match = r.race_run_match = true;
        for (const func::ExecMode mode : backends) {
            const std::string tag = func::execModeName(mode);

            const RunImage serial = runEngine(*k, spec, plan, in0, in1, {},
                                              true, false, 1, mode);
            std::string where;
            if (!regsMatch(ref, serial, &where)) {
                r.serial_match = false;
                noteDiverged(r, mode);
                setFailure(r, tag + ": serial register mismatch: " + where);
            }
            const int64_t d0 = firstOutDiff(ref, serial);
            if (d0 >= 0) {
                r.serial_match = false;
                noteDiverged(r, mode);
                setFailure(r, tag + ": serial output mismatch at byte " +
                                  std::to_string(d0));
            }

            const RunImage par =
                runEngine(*k, spec, plan, in0, in1, {}, false, false,
                          opts.parallel_threads, mode);
            if (firstOutDiff(ref, par) >= 0) {
                r.parallel_match = false;
                noteDiverged(r, mode);
                setFailure(r, tag + ": parallel (sim_threads " +
                                  std::to_string(opts.parallel_threads) +
                                  ") output mismatch");
            }

            const RunImage raced = runEngine(*k, spec, plan, in0, in1, {},
                                             true, true, 1, mode);
            if (diverged(ref, raced)) {
                r.race_run_match = false;
                noteDiverged(r, mode);
                setFailure(r, tag + ": race-shadow run altered results");
            }
            r.shared_races = std::max(r.shared_races, raced.shared_races);
        }
        if (r.verifier_clean && r.shared_races != 0)
            setFailure(r, "verifier-clean kernel reported " +
                              std::to_string(r.shared_races) +
                              " dynamic shared races");

        if (opts.check_bug_detectability) {
            // Probed on one backend: the compiled executor when selected
            // (injection is baked in at lowering time there — the riskier
            // path), the interpreter otherwise.
            const func::ExecMode probe = opts.exec == DiffExec::Interp
                                             ? func::ExecMode::Interp
                                             : func::ExecMode::Compiled;
            const func::BugModel models[3] = {
                {.legacy_rem = true}, {.legacy_bfe = true},
                {.split_fma = true}};
            for (int i = 0; i < 3; i++) {
                const RunImage bad = runEngine(*k, spec, plan, in0, in1,
                                               models[i], true, false, 1,
                                               probe);
                r.bug_diverged[i] = diverged(ref, bad);
            }
        }
    } catch (const std::exception &e) {
        setFailure(r, std::string("engine: ") + e.what());
        return r;
    }

    r.ok = r.verifier_clean && r.serial_match && r.parallel_match &&
           r.race_run_match && r.shared_races == 0;
    return r;
}

DiffResult
runKernel(const GenKernel &gk, const DiffOptions &opts)
{
    return runPtx(gk.ptx(), gk.spec, opts);
}

DiffResult
runDifftest(uint64_t seed, const DiffOptions &opts)
{
    KernelGen gen(seed);
    return runKernel(gen.generate(Defect::None), opts);
}

bool
kernelFails(const GenKernel &gk, const DiffOptions &opts)
{
    const DiffResult r = runKernel(gk, opts);
    return opts.inject.anyEnabled() ? r.injected_diverged : !r.ok;
}

unsigned
minimize(GenKernel &gk, const DiffOptions &opts)
{
    if (!kernelFails(gk, opts))
        return 0;

    // On injected-bug failures verifier cleanliness is not part of the
    // predicate, so whole statements (including defs: registers read
    // before assignment are zero on both sides) can be dropped. On
    // clean-path failures stick to semantics-preserving reductions.
    const bool allow_drop_defs = opts.inject.anyEnabled();

    auto reduction = [&](size_t i) -> int {
        const GenStmt &s = gk.body[i];
        if (gk.state[i] != 0 || s.is_label || s.structural)
            return -1;
        if (s.droppable || allow_drop_defs)
            return 2;
        if (!s.fallback.empty())
            return 1;
        return -1;
    };

    unsigned reduced = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<size_t> cand;
        for (size_t i = 0; i < gk.body.size(); i++)
            if (reduction(i) >= 0)
                cand.push_back(i);
        if (cand.empty())
            break;

        for (size_t chunk = cand.size(); chunk >= 1;
             chunk = chunk == 1 ? 0 : (chunk + 1) / 2) {
            for (size_t start = 0; start < cand.size(); start += chunk) {
                const std::vector<uint8_t> save = gk.state;
                unsigned changed = 0;
                const size_t end = std::min(start + chunk, cand.size());
                for (size_t j = start; j < end; j++) {
                    const int rs = reduction(cand[j]);
                    if (rs >= 0) {
                        gk.state[cand[j]] = uint8_t(rs);
                        changed++;
                    }
                }
                if (changed == 0)
                    continue;
                if (kernelFails(gk, opts)) {
                    reduced += changed;
                    progress = true;
                } else {
                    gk.state = save;
                }
            }
            if (chunk == 1)
                break;
        }
    }

    // Dead-definition sweep: a fallback'd or kept statement whose destination
    // is never read by any live statement contributes nothing; drop it.
    // (Reads come only from state-0 statements — fallbacks are imm-only.)
    bool swept = true;
    while (swept) {
        swept = false;
        std::vector<std::string> used;
        for (size_t i = 0; i < gk.body.size(); i++)
            if (gk.state[i] == 0)
                for (const auto &u : gk.body[i].uses)
                    used.push_back(u);
        for (size_t i = 0; i < gk.body.size(); i++) {
            const GenStmt &s = gk.body[i];
            if (gk.state[i] == 2 || s.structural || s.is_label ||
                s.def.empty())
                continue;
            if (std::find(used.begin(), used.end(), s.def) != used.end())
                continue;
            const uint8_t save = gk.state[i];
            gk.state[i] = 2;
            if (kernelFails(gk, opts)) {
                reduced += save == 0 ? 1 : 0;
                swept = true;
            } else {
                gk.state[i] = save;
            }
        }
    }
    return reduced;
}

void
dumpReproducer(const GenKernel &gk, const DiffOptions &opts,
               const std::string &base, const DiffResult *result)
{
    {
        std::ofstream ptx(base + ".ptx", std::ios::binary);
        MLGS_REQUIRE(ptx.good(), "difftest: cannot write ", base, ".ptx");
        ptx << gk.ptx();
    }
    std::ofstream js(base + ".json", std::ios::binary);
    MLGS_REQUIRE(js.good(), "difftest: cannot write ", base, ".json");
    const LaunchSpec &s = gk.spec;
    js << "{\n"
       << "  \"kernel\": \"" << s.kernel << "\",\n"
       << "  \"grid\": [" << s.grid.x << ", " << s.grid.y << ", " << s.grid.z
       << "],\n"
       << "  \"block\": [" << s.block.x << ", " << s.block.y << ", "
       << s.block.z << "],\n"
       << "  \"in_words\": " << s.in_words << ",\n"
       << "  \"out_slots\": " << s.out_slots << ",\n"
       << "  \"data_seed\": " << s.data_seed << ",\n"
       << "  \"seed\": " << gk.seed << ",\n"
       << "  \"exec\": \"" << diffExecName(opts.exec) << "\",\n"
       << "  \"diverged_backend\": \""
       << (result ? result->diverged_backend : "") << "\",\n"
       << "  \"inject\": {\n"
       << "    \"legacy_rem\": "
       << (opts.inject.legacy_rem ? "true" : "false") << ",\n"
       << "    \"legacy_bfe\": "
       << (opts.inject.legacy_bfe ? "true" : "false") << ",\n"
       << "    \"split_fma\": " << (opts.inject.split_fma ? "true" : "false")
       << "\n  }\n}\n";
}

DiffResult
runReproducer(const std::string &base)
{
    const std::string ptx_text = slurpFile(base + ".ptx");
    const std::string js = slurpFile(base + ".json");

    LaunchSpec spec;
    spec.kernel = jsonStr(js, "kernel", spec.kernel);
    spec.grid = jsonDim3(js, "grid", spec.grid);
    spec.block = jsonDim3(js, "block", spec.block);
    spec.in_words = unsigned(jsonUInt(js, "in_words", spec.in_words));
    spec.out_slots = unsigned(jsonUInt(js, "out_slots", spec.out_slots));
    spec.data_seed = jsonUInt(js, "data_seed", spec.data_seed);

    DiffOptions opts;
    opts.inject.legacy_rem = jsonBool(js, "legacy_rem");
    opts.inject.legacy_bfe = jsonBool(js, "legacy_bfe");
    opts.inject.split_fma = jsonBool(js, "split_fma");
    opts.check_bug_detectability = false;
    const std::string exec = jsonStr(js, "exec", "both");
    opts.exec = exec == "interp"     ? DiffExec::Interp
                : exec == "compiled" ? DiffExec::Compiled
                                     : DiffExec::Both;
    return runPtx(ptx_text, spec, opts);
}

DefectCheck
checkDefect(uint64_t seed, Defect defect)
{
    KernelGen gen(seed);
    const GenKernel gk = gen.generate(defect);

    DefectCheck r;
    ptx::Module mod = ptx::parseModule(gk.ptx(), "difftest.ptx");
    const auto diags = ptx::verifier::verifyModule(mod);
    r.verifier_flagged =
        ptx::verifier::maxSeverity(diags) != ptx::verifier::Severity::Note;

    if (defect == Defect::SharedRace) {
        const ptx::KernelDef *k = mod.findKernel(gk.spec.kernel);
        MLGS_REQUIRE(k, "difftest: defect kernel not found");
        const BufferPlan plan = planBuffers(gk.spec);
        std::vector<uint8_t> in0, in1;
        fillInputs(gk.spec, in0, in1);
        const RunImage img = runEngine(*k, gk.spec, plan, in0, in1, {}, true,
                                       true, 1, func::ExecMode::Auto);
        r.dynamic_races = img.shared_races;
    }
    return r;
}

} // namespace mlgs::difftest
