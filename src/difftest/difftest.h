/**
 * @file
 * Differential-testing driver (the paper's Section III-D methodology,
 * industrialized): run a generated kernel through the independent scalar
 * reference (RefExec), the SIMT engine serially and with a CTA thread pool,
 * and the engine with each bug_model.h injection flag — asserting bitwise
 * equality on the clean paths and divergence on the injected-bug paths —
 * plus static/dynamic cross-checks of the PTX verifier and race shadow.
 */
#ifndef MLGS_DIFFTEST_DIFFTEST_H
#define MLGS_DIFFTEST_DIFFTEST_H

#include <functional>
#include <string>

#include "difftest/kernel_gen.h"
#include "func/bug_model.h"
#include "func/exec_mode.h"

namespace mlgs::difftest
{

/** Which functional backend(s) the engine side of the comparison uses. */
enum class DiffExec : uint8_t
{
    Interp,   ///< reference interpreter only
    Compiled, ///< compiled micro-op executor only
    Both,     ///< run every cross-check once per backend
};

/** Knobs for one differential run. */
struct DiffOptions
{
    /**
     * Bug flags injected into the device model for the primary comparison.
     * When any flag is set the run is *expected* to diverge from RefExec
     * (DiffResult::injected_diverged) and the clean-path checks are skipped.
     */
    func::BugModel inject;

    /**
     * On clean runs, additionally execute the kernel once per bug_model.h
     * flag and record whether each injection is detectable (diverges).
     */
    bool check_bug_detectability = true;

    /** Worker count for the parallel (sim_threads > 1) engine run. */
    unsigned parallel_threads = 4;

    /**
     * Functional backend(s) under test. The default (Both) runs the
     * serial/parallel/race cross-checks once per backend, so every fuzz
     * seed validates the interpreter *and* the compiled executor against
     * RefExec; bug detectability is probed on the compiled backend (the
     * production default — the flags are baked in at lowering time there).
     */
    DiffExec exec = DiffExec::Both;
};

/** Outcome of one kernel's differential run. */
struct DiffResult
{
    bool parse_ok = false;
    bool verifier_clean = false; ///< no Warning/Error diagnostics
    bool serial_match = false;   ///< RefExec == engine (registers + memory)
    bool parallel_match = false; ///< RefExec == engine with thread pool
    bool race_run_match = false; ///< RefExec == engine under check_races
    uint64_t shared_races = 0;   ///< dynamic race-shadow count (clean: 0)
    bool injected_diverged = false; ///< only meaningful with opts.inject
    /** Divergence detected per injection flag: rem, bfe, fma order. */
    bool bug_diverged[3] = {false, false, false};

    bool ok = false;        ///< all clean-path checks passed
    std::string failure;    ///< first failing check, human-readable

    /**
     * Backend name(s) ("interp", "compiled", "interp+compiled") whose run
     * failed a clean-path check or, with opts.inject, diverged from the
     * reference. Empty when no engine run misbehaved.
     */
    std::string diverged_backend;
};

/** Differential run of already-rendered PTX text (reproducer path). */
DiffResult runPtx(const std::string &ptx_text, const LaunchSpec &spec,
                  const DiffOptions &opts);

/** Differential run of a generated kernel (honours its minimizer state). */
DiffResult runKernel(const GenKernel &gk, const DiffOptions &opts);

/** Generate the clean kernel for `seed` and run it differentially. */
DiffResult runDifftest(uint64_t seed, const DiffOptions &opts);

/**
 * The failure polarity the minimizer preserves: with injection enabled a
 * kernel "fails" when it diverges from the reference (the interesting,
 * reproducible behaviour); otherwise when any clean-path check fails.
 */
bool kernelFails(const GenKernel &gk, const DiffOptions &opts);

/**
 * Shrink `gk` in place while kernelFails(gk, opts) stays true: ddmin-style
 * chunked passes replace non-structural statements with immediate-only
 * fallbacks, drop side-effect-only stores, and (on injected-bug failures,
 * where verifier cleanliness is irrelevant) drop dead non-structural
 * definitions outright.
 *
 * @return number of statements reduced (fallback'd or dropped).
 */
unsigned minimize(GenKernel &gk, const DiffOptions &opts);

/**
 * Write `base`.ptx (rendered kernel honouring minimizer state) and
 * `base`.json (launch shape, data seed, injection flags, backend selection)
 * — everything `mlgs-difftest --repro base` needs to re-run the failure.
 * When `result` is given, its diverged_backend is recorded so the artifact
 * names the backend that misbehaved.
 */
void dumpReproducer(const GenKernel &gk, const DiffOptions &opts,
                    const std::string &base,
                    const DiffResult *result = nullptr);

/** Re-run a reproducer dumped by dumpReproducer. */
DiffResult runReproducer(const std::string &base);

/** Static/dynamic verdicts for a deliberately-defective kernel. */
struct DefectCheck
{
    bool verifier_flagged = false; ///< any Warning/Error diagnostic
    uint64_t dynamic_races = 0;    ///< race-shadow count (when executed)
};

/**
 * Generate the seeded-defect kernel for (seed, defect) and cross-check that
 * the static verifier or the dynamic race shadow catches it. WideRemRead
 * kernels are only verified statically (executing a type-punned rem is
 * well-defined but uninteresting); SharedRace kernels also run under
 * check_races to collect the dynamic count.
 */
DefectCheck checkDefect(uint64_t seed, Defect defect);

} // namespace mlgs::difftest

#endif // MLGS_DIFFTEST_DIFFTEST_H
