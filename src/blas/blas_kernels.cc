/**
 * @file
 * cuBLAS-lite PTX kernels. Kept in one "PTX file" (translation unit) the way
 * a vendor library ships a compiled module per feature family.
 */
#include "blas/blas.h"

namespace mlgs::blas
{

const char *kBlasPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// C[m,n] = alpha * sum_k A[m*as_m + k*as_k] * B[k*bs_k + n*bs_n] + beta * C
// Fully strided: transposes are stride permutations. One thread per (m,n).
.visible .entry sgemm_strided(
    .param .u64 Aptr, .param .u64 Bptr, .param .u64 Cptr,
    .param .u32 M, .param .u32 N, .param .u32 K,
    .param .u32 as_m, .param .u32 as_k,
    .param .u32 bs_k, .param .u32 bs_n,
    .param .f32 alpha, .param .f32 beta
) .reqntid 32, 8, 1
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<20>;
    .reg .f32 %f<10>;
    .reg .pred %p<4>;

    ld.param.u64 %rd1, [Aptr];
    ld.param.u64 %rd2, [Bptr];
    ld.param.u64 %rd3, [Cptr];
    ld.param.u32 %r1, [M];
    ld.param.u32 %r2, [N];
    ld.param.u32 %r3, [K];
    ld.param.u32 %r4, [as_m];
    ld.param.u32 %r5, [as_k];
    ld.param.u32 %r6, [bs_k];
    ld.param.u32 %r7, [bs_n];
    ld.param.f32 %f1, [alpha];
    ld.param.f32 %f2, [beta];

    // m = ctaid.y * ntid.y + tid.y ; n = ctaid.x * ntid.x + tid.x
    mov.u32 %r8, %ctaid.y;
    mov.u32 %r9, %ntid.y;
    mov.u32 %r10, %tid.y;
    mad.lo.u32 %r11, %r8, %r9, %r10;   // m
    mov.u32 %r8, %ctaid.x;
    mov.u32 %r9, %ntid.x;
    mov.u32 %r10, %tid.x;
    mad.lo.u32 %r12, %r8, %r9, %r10;   // n
    setp.ge.u32 %p1, %r11, %r1;
    @%p1 bra DONE;
    setp.ge.u32 %p1, %r12, %r2;
    @%p1 bra DONE;

    // Row/col base offsets (element units).
    mul.lo.u32 %r13, %r11, %r4;        // m*as_m
    mul.lo.u32 %r14, %r12, %r7;        // n*bs_n
    mov.f32 %f3, 0f00000000;
    mov.u32 %r15, 0;
KLOOP:
    setp.ge.u32 %p2, %r15, %r3;
    @%p2 bra KDONE;
    mad.lo.u32 %r16, %r15, %r5, %r13;  // m*as_m + k*as_k
    mul.wide.u32 %rd4, %r16, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f4, [%rd5];
    mad.lo.u32 %r17, %r15, %r6, %r14;  // k*bs_k + n*bs_n
    mul.wide.u32 %rd6, %r17, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f5, [%rd7];
    fma.rn.f32 %f3, %f4, %f5, %f3;
    add.u32 %r15, %r15, 1;
    bra KLOOP;
KDONE:
    mad.lo.u32 %r18, %r11, %r2, %r12;  // m*N + n
    mul.wide.u32 %rd8, %r18, 4;
    add.u64 %rd9, %rd3, %rd8;
    ld.global.f32 %f6, [%rd9];
    mul.f32 %f7, %f6, %f2;             // beta * C
    fma.rn.f32 %f8, %f3, %f1, %f7;     // alpha * acc + beta * C
    st.global.f32 [%rd9], %f8;
DONE:
    ret;
}

// Shared-memory tiled GEMM, C[M,N] = A[M,K] * B[K,N], row-major, 16x16 tiles.
.visible .entry sgemm_tiled_nn(
    .param .u64 Aptr, .param .u64 Bptr, .param .u64 Cptr,
    .param .u32 M, .param .u32 N, .param .u32 K,
    .param .f32 alpha, .param .f32 beta
) .reqntid 16, 16, 1
{
    .reg .u64 %rd<14>;
    .reg .u32 %r<26>;
    .reg .f32 %f<10>;
    .reg .pred %p<6>;
    .shared .align 4 .b8 As[1024];   // 16x16 f32
    .shared .align 4 .b8 Bs[1024];

    ld.param.u64 %rd1, [Aptr];
    ld.param.u64 %rd2, [Bptr];
    ld.param.u64 %rd3, [Cptr];
    ld.param.u32 %r1, [M];
    ld.param.u32 %r2, [N];
    ld.param.u32 %r3, [K];

    mov.u32 %r4, %tid.x;               // 0..15 (col within tile)
    mov.u32 %r5, %tid.y;               // 0..15 (row within tile)
    mov.u32 %r6, %ctaid.x;
    mov.u32 %r7, %ctaid.y;
    mad.lo.u32 %r8, %r7, 16, %r5;      // global row
    mad.lo.u32 %r9, %r6, 16, %r4;      // global col

    mov.u64 %rd4, As;
    mov.u64 %rd5, Bs;
    // Per-thread shared slot offset: (tid.y*16 + tid.x)*4
    mad.lo.u32 %r10, %r5, 16, %r4;
    mul.wide.u32 %rd6, %r10, 4;

    mov.f32 %f1, 0f00000000;
    mov.u32 %r11, 0;                   // k0 tile base
TILE_LOOP:
    setp.ge.u32 %p1, %r11, %r3;
    @%p1 bra TILE_DONE;

    // Load A[row, k0+tid.x] into As[tid.y][tid.x] (0 outside).
    add.u32 %r12, %r11, %r4;
    mov.f32 %f2, 0f00000000;
    setp.ge.u32 %p2, %r8, %r1;
    setp.ge.u32 %p3, %r12, %r3;
    @%p2 bra A_ZERO;
    @%p3 bra A_ZERO;
    mad.lo.u32 %r13, %r8, %r3, %r12;
    mul.wide.u32 %rd7, %r13, 4;
    add.u64 %rd8, %rd1, %rd7;
    ld.global.f32 %f2, [%rd8];
A_ZERO:
    add.u64 %rd9, %rd4, %rd6;
    st.shared.f32 [%rd9], %f2;

    // Load B[k0+tid.y, col] into Bs[tid.y][tid.x].
    add.u32 %r14, %r11, %r5;
    mov.f32 %f3, 0f00000000;
    setp.ge.u32 %p4, %r14, %r3;
    setp.ge.u32 %p5, %r9, %r2;
    @%p4 bra B_ZERO;
    @%p5 bra B_ZERO;
    mad.lo.u32 %r15, %r14, %r2, %r9;
    mul.wide.u32 %rd10, %r15, 4;
    add.u64 %rd11, %rd2, %rd10;
    ld.global.f32 %f3, [%rd11];
B_ZERO:
    add.u64 %rd12, %rd5, %rd6;
    st.shared.f32 [%rd12], %f3;

    bar.sync 0;

    // Accumulate over the 16-wide tile.
    mov.u32 %r16, 0;
INNER:
    setp.ge.u32 %p1, %r16, 16;
    @%p1 bra INNER_DONE;
    mad.lo.u32 %r17, %r5, 16, %r16;    // As[tid.y][i]
    mul.wide.u32 %rd7, %r17, 4;
    add.u64 %rd8, %rd4, %rd7;
    ld.shared.f32 %f4, [%rd8];
    mad.lo.u32 %r18, %r16, 16, %r4;    // Bs[i][tid.x]
    mul.wide.u32 %rd10, %r18, 4;
    add.u64 %rd11, %rd5, %rd10;
    ld.shared.f32 %f5, [%rd11];
    fma.rn.f32 %f1, %f4, %f5, %f1;
    add.u32 %r16, %r16, 1;
    bra INNER;
INNER_DONE:
    bar.sync 0;
    add.u32 %r11, %r11, 16;
    bra TILE_LOOP;

TILE_DONE:
    setp.ge.u32 %p1, %r8, %r1;
    @%p1 bra DONE;
    setp.ge.u32 %p1, %r9, %r2;
    @%p1 bra DONE;
    ld.param.f32 %f6, [alpha];
    ld.param.f32 %f7, [beta];
    mad.lo.u32 %r19, %r8, %r2, %r9;
    mul.wide.u32 %rd7, %r19, 4;
    add.u64 %rd8, %rd3, %rd7;
    ld.global.f32 %f8, [%rd8];
    mul.f32 %f9, %f8, %f7;
    fma.rn.f32 %f9, %f1, %f6, %f9;
    st.global.f32 [%rd8], %f9;
DONE:
    ret;
}

// Batched strided GEMM: for b in [0,batch):
//   C[b*cs_b + m*cs_m + n*cs_n] += sum_k A[b*as_b + m*as_m + k*as_k]
//                                        * B[b*bs_b + k*bs_k + n*bs_n]
// grid: (ceil(N/ntid.x), M, batch); beta in {0,1}.
.visible .entry bgemm_strided(
    .param .u64 Aptr, .param .u64 Bptr, .param .u64 Cptr,
    .param .u32 M, .param .u32 N, .param .u32 K,
    .param .u32 as_b, .param .u32 as_m, .param .u32 as_k,
    .param .u32 bs_b, .param .u32 bs_k, .param .u32 bs_n,
    .param .u32 cs_b, .param .u32 cs_m, .param .u32 cs_n,
    .param .f32 beta
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<24>;
    .reg .f32 %f<8>;
    .reg .pred %p<4>;

    ld.param.u64 %rd1, [Aptr];
    ld.param.u64 %rd2, [Bptr];
    ld.param.u64 %rd3, [Cptr];
    ld.param.u32 %r1, [M];
    ld.param.u32 %r2, [N];
    ld.param.u32 %r3, [K];

    mov.u32 %r4, %ctaid.x;
    mov.u32 %r5, %ntid.x;
    mov.u32 %r6, %tid.x;
    mad.lo.u32 %r7, %r4, %r5, %r6;     // n
    mov.u32 %r8, %ctaid.y;             // m
    mov.u32 %r9, %ctaid.z;             // b
    setp.ge.u32 %p1, %r7, %r2;
    @%p1 bra DONE;
    setp.ge.u32 %p1, %r8, %r1;
    @%p1 bra DONE;

    ld.param.u32 %r10, [as_b];
    ld.param.u32 %r11, [as_m];
    ld.param.u32 %r12, [as_k];
    mul.lo.u32 %r13, %r9, %r10;
    mad.lo.u32 %r13, %r8, %r11, %r13;  // A base: b*as_b + m*as_m

    ld.param.u32 %r10, [bs_b];
    ld.param.u32 %r14, [bs_k];
    ld.param.u32 %r15, [bs_n];
    mul.lo.u32 %r16, %r9, %r10;
    mad.lo.u32 %r16, %r7, %r15, %r16;  // B base: b*bs_b + n*bs_n

    mov.f32 %f1, 0f00000000;
    mov.u32 %r17, 0;
KLOOP:
    setp.ge.u32 %p2, %r17, %r3;
    @%p2 bra KDONE;
    mad.lo.u32 %r18, %r17, %r12, %r13;
    mul.wide.u32 %rd4, %r18, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    mad.lo.u32 %r19, %r17, %r14, %r16;
    mul.wide.u32 %rd6, %r19, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
    add.u32 %r17, %r17, 1;
    bra KLOOP;
KDONE:
    ld.param.u32 %r10, [cs_b];
    ld.param.u32 %r20, [cs_m];
    ld.param.u32 %r21, [cs_n];
    mul.lo.u32 %r22, %r9, %r10;
    mad.lo.u32 %r22, %r8, %r20, %r22;
    mad.lo.u32 %r22, %r7, %r21, %r22;
    mul.wide.u32 %rd8, %r22, 4;
    add.u64 %rd9, %rd3, %rd8;
    ld.param.f32 %f4, [beta];
    ld.global.f32 %f5, [%rd9];
    mul.f32 %f6, %f5, %f4;
    add.f32 %f6, %f6, %f1;
    st.global.f32 [%rd9], %f6;
DONE:
    ret;
}

// y[m] = alpha * sum_n A[m*N + n] * x[n]  (row-major, non-transposed).
.visible .entry sgemv(
    .param .u64 Aptr, .param .u64 Xptr, .param .u64 Yptr,
    .param .u32 M, .param .u32 N, .param .f32 alpha
) .reqntid 128, 1, 1
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<12>;
    .reg .f32 %f<6>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [Aptr];
    ld.param.u64 %rd2, [Xptr];
    ld.param.u64 %rd3, [Yptr];
    ld.param.u32 %r1, [M];
    ld.param.u32 %r2, [N];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mul.lo.u32 %r7, %r6, %r2;
    mov.f32 %f1, 0f00000000;
    mov.u32 %r8, 0;
LOOP:
    setp.ge.u32 %p2, %r8, %r2;
    @%p2 bra LDONE;
    add.u32 %r9, %r7, %r8;
    mul.wide.u32 %rd4, %r9, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    mul.wide.u32 %rd6, %r8, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
    add.u32 %r8, %r8, 1;
    bra LOOP;
LDONE:
    ld.param.f32 %f4, [alpha];
    mul.f32 %f5, %f1, %f4;
    mul.wide.u32 %rd4, %r6, 4;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f5;
DONE:
    ret;
}

// y[m] = sum_n A[n*M + m] * x[n] -- the transposed GEMV ("GEMV2T" in the
// paper's Fig 7): A is traversed column-wise.
.visible .entry gemv2T_kernel(
    .param .u64 Aptr, .param .u64 Xptr, .param .u64 Yptr,
    .param .u32 M, .param .u32 N, .param .f32 alpha
) .reqntid 128, 1, 1
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<12>;
    .reg .f32 %f<6>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [Aptr];
    ld.param.u64 %rd2, [Xptr];
    ld.param.u64 %rd3, [Yptr];
    ld.param.u32 %r1, [M];
    ld.param.u32 %r2, [N];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;     // m
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mov.f32 %f1, 0f00000000;
    mov.u32 %r8, 0;
LOOP:
    setp.ge.u32 %p2, %r8, %r2;
    @%p2 bra LDONE;
    mad.lo.u32 %r9, %r8, %r1, %r6;     // n*M + m
    mul.wide.u32 %rd4, %r9, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    mul.wide.u32 %rd6, %r8, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
    add.u32 %r8, %r8, 1;
    bra LOOP;
LDONE:
    ld.param.f32 %f4, [alpha];
    mul.f32 %f5, %f1, %f4;
    mul.wide.u32 %rd4, %r6, 4;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f5;
DONE:
    ret;
}
)PTX";

} // namespace mlgs::blas
