/**
 * @file
 * cuBLAS-lite host API: dense GEMM/GEMV entry points dispatching PTX kernels
 * onto the simulated GPU.
 */
#ifndef MLGS_BLAS_BLAS_H
#define MLGS_BLAS_BLAS_H

#include "runtime/context.h"

namespace mlgs::blas
{

/** The library's embedded PTX module source. */
extern const char *kBlasPtx;

/** Transpose selector (cublasOperation_t analogue). */
enum class Op { N, T };

/** cuBLAS-like handle bound to one device context. */
class BlasHandle
{
  public:
    explicit BlasHandle(cuda::Context &ctx);

    cuda::Context &context() { return *ctx_; }
    void setStream(cuda::Stream *s) { stream_ = s; }

    /**
     * C[M,N] = alpha * op(A) * op(B) + beta * C, row-major.
     * op(A) is MxK, op(B) is KxN. Uses the tiled kernel for the NN case and
     * the strided kernel otherwise.
     */
    void sgemm(Op ta, Op tb, unsigned m, unsigned n, unsigned k, float alpha,
               addr_t a, addr_t b, float beta, addr_t c);

    /** y = alpha * A x (A row-major MxN). */
    void sgemv(unsigned m, unsigned n, float alpha, addr_t a, addr_t x,
               addr_t y);

    /** y = alpha * A^T-layout x: y[m] = sum_n A[n*M+m] * x[n]. */
    void gemv2T(unsigned m, unsigned n, float alpha, addr_t a, addr_t x,
                addr_t y);

    /**
     * Batched fully-strided GEMM (all strides in elements):
     * C[b,m,n] = sum_k A[b,m,k] * B[b,k,n] + beta * C[b,m,n].
     */
    void bgemmStrided(unsigned m, unsigned n, unsigned k, unsigned batch,
                      addr_t a, unsigned as_b, unsigned as_m, unsigned as_k,
                      addr_t b, unsigned bs_b, unsigned bs_k, unsigned bs_n,
                      addr_t c, unsigned cs_b, unsigned cs_m, unsigned cs_n,
                      float beta);

  private:
    cuda::Context *ctx_;
    cuda::Stream *stream_ = nullptr;
    int module_ = -1;
};

} // namespace mlgs::blas

#endif // MLGS_BLAS_BLAS_H
