#include "blas/blas.h"

namespace mlgs::blas
{

namespace
{

unsigned
ceilDiv(unsigned a, unsigned b)
{
    return (a + b - 1) / b;
}

} // namespace

BlasHandle::BlasHandle(cuda::Context &ctx) : ctx_(&ctx)
{
    module_ = ctx.loadModule(kBlasPtx, "libcublas_lite.ptx");
}

void
BlasHandle::sgemm(Op ta, Op tb, unsigned m, unsigned n, unsigned k, float alpha,
                  addr_t a, addr_t b, float beta, addr_t c)
{
    if (ta == Op::N && tb == Op::N && alpha == 1.0f) {
        cuda::KernelArgs args;
        args.ptr(a).ptr(b).ptr(c).u32(m).u32(n).u32(k).f32(alpha).f32(beta);
        ctx_->cuLaunchKernel(ctx_->getFunction(module_, "sgemm_tiled_nn"),
                             Dim3(ceilDiv(n, 16), ceilDiv(m, 16)),
                             Dim3(16, 16), args, stream_);
        return;
    }
    // op(A): MxK. Row-major A is MxK (N) or KxM (T).
    const unsigned as_m = ta == Op::N ? k : 1;
    const unsigned as_k = ta == Op::N ? 1 : m;
    const unsigned bs_k = tb == Op::N ? n : 1;
    const unsigned bs_n = tb == Op::N ? 1 : k;
    cuda::KernelArgs args;
    args.ptr(a).ptr(b).ptr(c).u32(m).u32(n).u32(k).u32(as_m).u32(as_k)
        .u32(bs_k).u32(bs_n).f32(alpha).f32(beta);
    ctx_->cuLaunchKernel(ctx_->getFunction(module_, "sgemm_strided"),
                         Dim3(ceilDiv(n, 32), ceilDiv(m, 8)), Dim3(32, 8),
                         args, stream_);
}

void
BlasHandle::sgemv(unsigned m, unsigned n, float alpha, addr_t a, addr_t x,
                  addr_t y)
{
    cuda::KernelArgs args;
    args.ptr(a).ptr(x).ptr(y).u32(m).u32(n).f32(alpha);
    ctx_->cuLaunchKernel(ctx_->getFunction(module_, "sgemv"),
                         Dim3(ceilDiv(m, 128)), Dim3(128), args, stream_);
}

void
BlasHandle::gemv2T(unsigned m, unsigned n, float alpha, addr_t a, addr_t x,
                   addr_t y)
{
    cuda::KernelArgs args;
    args.ptr(a).ptr(x).ptr(y).u32(m).u32(n).f32(alpha);
    ctx_->cuLaunchKernel(ctx_->getFunction(module_, "gemv2T_kernel"),
                         Dim3(ceilDiv(m, 128)), Dim3(128), args, stream_);
}

void
BlasHandle::bgemmStrided(unsigned m, unsigned n, unsigned k, unsigned batch,
                         addr_t a, unsigned as_b, unsigned as_m, unsigned as_k,
                         addr_t b, unsigned bs_b, unsigned bs_k, unsigned bs_n,
                         addr_t c, unsigned cs_b, unsigned cs_m, unsigned cs_n,
                         float beta)
{
    cuda::KernelArgs args;
    args.ptr(a).ptr(b).ptr(c).u32(m).u32(n).u32(k)
        .u32(as_b).u32(as_m).u32(as_k)
        .u32(bs_b).u32(bs_k).u32(bs_n)
        .u32(cs_b).u32(cs_m).u32(cs_n)
        .f32(beta);
    const unsigned tx = std::min(n, 128u);
    ctx_->cuLaunchKernel(ctx_->getFunction(module_, "bgemm_strided"),
                         Dim3(ceilDiv(n, tx), m, batch), Dim3(tx), args,
                         stream_);
}

} // namespace mlgs::blas
