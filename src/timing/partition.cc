#include "timing/partition.h"

#include "common/log.h"

namespace mlgs::timing
{

MemPartition::MemPartition(const GpuConfig &cfg, unsigned id)
    : cfg_(&cfg), id_(id), l2_(cfg.l2), dram_(cfg, id)
{
}

void
MemPartition::cycle(cycle_t now)
{
    // 1. Accept one request per cycle from the interconnect side.
    if (!incoming_.empty()) {
        MemFetch mf = std::move(incoming_.front());
        incoming_.pop_front();

        if (mf.is_write && !mf.is_atomic) {
            // Write-through towards DRAM; no response needed.
            l2_.accessWrite(mf.line_addr, now);
            writes_seen_++;
            dram_.push(std::move(mf));
        } else {
            switch (l2_.accessRead(mf.line_addr, now)) {
              case CacheOutcome::Hit:
                inflight_++;
                l2_hit_pipe_.push(std::move(mf), now + cfg_->l2.hit_latency);
                break;
              case CacheOutcome::Miss:
                inflight_++;
                waiters_[mf.line_addr].push_back(mf);
                dram_.push(std::move(mf));
                break;
              case CacheOutcome::MissMerged:
                inflight_++;
                waiters_[mf.line_addr].push_back(std::move(mf));
                break;
              case CacheOutcome::ReservationFail:
                incoming_.push_front(std::move(mf)); // retry next cycle
                break;
            }
        }
    }

    // 2. DRAM.
    dram_.cycle(now);
    while (dram_.hasDone(now)) {
        MemFetch mf = dram_.popDone();
        if (mf.is_write && !mf.is_atomic)
            continue; // write-through completes silently
        l2_.fill(mf.line_addr, now);
        const auto it = waiters_.find(mf.line_addr);
        if (it != waiters_.end()) {
            for (auto &w : it->second) {
                inflight_--;
                responses_.push_back(std::move(w));
            }
            waiters_.erase(it);
        }
    }

    // 3. L2 hits maturing.
    while (l2_hit_pipe_.ready(now)) {
        inflight_--;
        responses_.push_back(l2_hit_pipe_.pop());
    }
}

MemFetch
MemPartition::popResponse()
{
    MemFetch mf = std::move(responses_.front());
    responses_.pop_front();
    return mf;
}

bool
MemPartition::busy() const
{
    return !incoming_.empty() || !responses_.empty() || inflight_ > 0 ||
           dram_.busyOrPending();
}

} // namespace mlgs::timing
