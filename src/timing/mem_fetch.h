/**
 * @file
 * In-flight memory request token passed between core, interconnect, L2 and
 * DRAM (GPGPU-Sim's mem_fetch analogue), plus simple delay-queue plumbing.
 */
#ifndef MLGS_TIMING_MEM_FETCH_H
#define MLGS_TIMING_MEM_FETCH_H

#include <deque>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mlgs::timing
{

/** One cache-line-granular memory transaction. */
struct MemFetch
{
    uint64_t id = 0;
    addr_t line_addr = 0;
    unsigned bytes = 0;
    bool is_write = false;
    bool is_atomic = false;
    unsigned core_id = 0;
    int warp_slot = -1;  ///< requesting warp slot on the core (-1: none)
    unsigned partition = 0;
    cycle_t created = 0;
};

/** FIFO whose entries become visible after a fixed latency. */
template <typename T>
class DelayQueue
{
  public:
    void
    push(T v, cycle_t ready_at)
    {
        q_.push_back({ready_at, std::move(v)});
    }

    bool
    ready(cycle_t now) const
    {
        return !q_.empty() && q_.front().first <= now;
    }

    T
    pop()
    {
        T v = std::move(q_.front().second);
        q_.pop_front();
        return v;
    }

    bool empty() const { return q_.empty(); }
    size_t size() const { return q_.size(); }

  private:
    std::deque<std::pair<cycle_t, T>> q_;
};

/**
 * Delay queue for entries with heterogeneous latencies (priority ordered by
 * ready time; FIFO among equal times is not guaranteed).
 */
template <typename T>
class PqDelayQueue
{
  public:
    void
    push(T v, cycle_t ready_at)
    {
        q_.push({ready_at, seq_++, std::move(v)});
    }

    bool
    ready(cycle_t now) const
    {
        return !q_.empty() && q_.top().ready_at <= now;
    }

    T
    pop()
    {
        T v = std::move(const_cast<Entry &>(q_.top()).value);
        q_.pop();
        return v;
    }

    bool empty() const { return q_.empty(); }

  private:
    struct Entry
    {
        cycle_t ready_at;
        uint64_t seq;
        T value;

        bool
        operator>(const Entry &o) const
        {
            return ready_at != o.ready_at ? ready_at > o.ready_at : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> q_;
    uint64_t seq_ = 0;
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_MEM_FETCH_H
