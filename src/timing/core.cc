#include "timing/core.h"

#include <algorithm>

namespace mlgs::timing
{

using func::WarpStepResult;
using ptx::Op;

ShaderCore::ShaderCore(unsigned id, const GpuConfig &cfg,
                       func::Interpreter &interp)
    : id_(id), cfg_(&cfg), interp_(&interp), l1_(cfg.l1)
{
    cta_slots_.resize(cfg.max_ctas_per_core);
    warps_.resize(cfg.max_warps_per_core);
    sched_rr_.assign(cfg.schedulers_per_core, 0);
    sched_last_.assign(cfg.schedulers_per_core, -1);
    sched_owned_.resize(cfg.schedulers_per_core);
    for (unsigned slot = 0; slot < warps_.size(); slot++)
        sched_owned_[slot % cfg.schedulers_per_core].push_back(slot);
}

bool
ShaderCore::tryIssueCta(KernelDispatch &disp)
{
    if (disp.allIssued())
        return false;

    if (used_threads_ + disp.threads_per_cta > cfg_->max_threads_per_core)
        return false;
    if (used_ctas_ + 1 > cfg_->max_ctas_per_core)
        return false;
    if (used_shared_ + disp.shared_bytes_per_cta > cfg_->shared_mem_per_core)
        return false;

    // Free warp slots.
    std::vector<unsigned> slots;
    for (unsigned w = 0; w < warps_.size() && slots.size() < disp.warps_per_cta;
         w++)
        if (!warps_[w].valid)
            slots.push_back(w);
    if (slots.size() < disp.warps_per_cta)
        return false;

    int cta_idx = -1;
    for (size_t i = 0; i < cta_slots_.size(); i++) {
        if (!cta_slots_[i].cta) {
            cta_idx = int(i);
            break;
        }
    }
    if (cta_idx < 0)
        return false;

    const uint64_t linear = disp.next_cta++;
    const Dim3 cta_id = unflatten(linear, disp.grid);
    CtaSlot &cs = cta_slots_[size_t(cta_idx)];
    const uint64_t pidx = linear - disp.preload_base;
    if (linear >= disp.preload_base && pidx < disp.preloaded.size() &&
        disp.preloaded[pidx]) {
        cs.cta = std::move(disp.preloaded[pidx]); // checkpoint-restored state
    } else {
        cs.cta = std::make_unique<func::CtaExec>(
            *disp.env->kernel, disp.grid, disp.block, cta_id,
            /*alloc_state=*/!interp_->warpStreamReplayActive());
    }
    cs.disp = &disp;
    cs.warp_slots = slots;
    cs.live_warps = 0;
    for (unsigned w = 0; w < cs.cta->numWarps(); w++)
        if (!cs.cta->warpDone(w))
            cs.live_warps++;

    MLGS_ASSERT(cs.cta->numWarps() == disp.warps_per_cta, "warp count mismatch");
    for (unsigned i = 0; i < disp.warps_per_cta; i++) {
        WarpSlot &w = warps_[slots[i]];
        w.valid = !cs.cta->warpDone(i); // restored CTAs may have done warps
        w.cta_slot = cta_idx;
        w.warp_in_cta = i;
        w.busy_regs.clear();
        w.mem_dest_regs.clear();
        w.pending_loads = 0;
        w.last_issue = 0;
    }

    used_threads_ += disp.threads_per_cta;
    used_shared_ += disp.shared_bytes_per_cta;
    used_ctas_++;
    live_warps_total_ += cs.live_warps;
    completeCtaIfDone(cta_idx); // restored CTA may already be finished
    return true;
}

bool
ShaderCore::warpEligible(const WarpSlot &w) const
{
    if (!w.valid)
        return false;
    const CtaSlot &cs = cta_slots_[size_t(w.cta_slot)];
    return cs.cta && !cs.cta->warpAtBarrier(w.warp_in_cta) &&
           !cs.cta->warpDone(w.warp_in_cta);
}

bool
ShaderCore::warpReady(const WarpSlot &w, stats::StallKind &why) const
{
    const CtaSlot &cs = cta_slots_[size_t(w.cta_slot)];
    const ptx::KernelDef &k = *cs.disp->env->kernel;
    const auto &st = cs.cta->stack(w.warp_in_cta);
    const ptx::Instr &ins = k.instrs[st.pc()];

    if (ins.isExit() && w.pending_loads > 0) {
        why = stats::StallKind::DataHazard;
        return false;
    }
    for (const int r : ins.src_regs)
        if (w.busy_regs.count(r)) {
            why = stats::StallKind::DataHazard;
            return false;
        }
    for (const int r : ins.dst_regs)
        if (w.busy_regs.count(r)) {
            why = stats::StallKind::DataHazard;
            return false;
        }
    if (ins.isMemAccess()) {
        if (out_queue_.size() >= 256 ||
            w.pending_loads >= cfg_->max_pending_loads_per_warp) {
            why = stats::StallKind::MemStructural;
            return false;
        }
    }
    return true;
}

void
ShaderCore::finishLoads(WarpSlot &w)
{
    for (const int r : w.mem_dest_regs)
        w.busy_regs.erase(r);
    w.mem_dest_regs.clear();
}

void
ShaderCore::completeCtaIfDone(int cta_slot)
{
    CtaSlot &cs = cta_slots_[size_t(cta_slot)];
    if (!cs.cta || cs.live_warps > 0)
        return;
    used_threads_ -= cs.disp->threads_per_cta;
    used_shared_ -= cs.disp->shared_bytes_per_cta;
    used_ctas_--;
    cs.disp->completed_ctas++;
    counters_.ctas_completed++;
    cs.cta.reset();
    cs.disp = nullptr;
    cs.warp_slots.clear();
}

void
ShaderCore::issueWarp(unsigned slot, cycle_t now, stats::AerialSampler *sampler)
{
    WarpSlot &w = warps_[slot];
    CtaSlot &cs = cta_slots_[size_t(w.cta_slot)];
    const func::LaunchEnv &env = *cs.disp->env;

    const WarpStepResult res = interp_->stepWarp(*cs.cta, w.warp_in_cta, env);
    w.last_issue = now;

    const unsigned lanes = unsigned(__builtin_popcount(res.active));
    counters_.issued_instructions++;
    counters_.thread_instructions += lanes;
    if (sampler)
        sampler->recordIssue(id_, lanes);

    const ptx::Instr &ins = *res.ins;
    switch (ins.op) {
      case Op::Sin: case Op::Cos: case Op::Ex2: case Op::Lg2:
      case Op::Rcp: case Op::Rsqrt: case Op::Sqrt:
        counters_.sfu++;
        break;
      case Op::Ld: case Op::St: case Op::Atom: case Op::Red: case Op::Tex:
        counters_.mem++;
        break;
      default:
        counters_.alu++;
        break;
    }

    if (res.exited) {
        w.valid = false;
        MLGS_ASSERT(w.pending_loads == 0, "warp exited with loads in flight");
        cs.live_warps--;
        live_warps_total_--;
        completeCtaIfDone(w.cta_slot);
        return;
    }
    if (res.barrier)
        return; // warp now waits; barrier release happens in cycle()

    // Memory path.
    if (!res.accesses.empty()) {
        // Coalesce per-lane accesses into cache lines.
        const unsigned line = cfg_->l1.line_bytes;
        std::vector<addr_t> lines;
        std::vector<addr_t> store_lines;
        for (const auto &acc : res.accesses) {
            auto &list = acc.is_store ? store_lines : lines;
            const addr_t la = acc.addr & ~addr_t(line - 1);
            // Also cover accesses straddling a line boundary.
            const addr_t lb = (acc.addr + acc.size - 1) & ~addr_t(line - 1);
            if (std::find(list.begin(), list.end(), la) == list.end())
                list.push_back(la);
            if (lb != la &&
                std::find(list.begin(), list.end(), lb) == list.end())
                list.push_back(lb);
        }

        bool any_load_part = false;
        for (const addr_t la : lines) {
            switch (l1_.accessRead(la, now)) {
              case CacheOutcome::Hit:
                w.pending_loads++;
                any_load_part = true;
                wb_pipe_.push(Writeback{slot, {}, true},
                              now + cfg_->l1.hit_latency);
                break;
              case CacheOutcome::MissMerged:
                w.pending_loads++;
                any_load_part = true;
                l1_waiters_[la].push_back(slot);
                break;
              case CacheOutcome::Miss:
              case CacheOutcome::ReservationFail:
              default: {
                w.pending_loads++;
                any_load_part = true;
                MemFetch mf;
                mf.id = next_fetch_id_++;
                mf.line_addr = la;
                mf.bytes = line;
                mf.is_write = false;
                mf.is_atomic = ins.op == Op::Atom || ins.op == Op::Red;
                mf.core_id = id_;
                mf.warp_slot = int(slot);
                mf.created = now;
                out_queue_.push_back(std::move(mf));
                break;
              }
            }
        }
        for (const addr_t la : store_lines) {
            l1_.accessWrite(la, now);
            MemFetch mf;
            mf.id = next_fetch_id_++;
            mf.line_addr = la;
            mf.bytes = line;
            mf.is_write = true;
            mf.is_atomic = ins.op == Op::Atom || ins.op == Op::Red;
            mf.core_id = id_;
            mf.warp_slot = mf.is_atomic ? int(slot) : -1;
            mf.created = now;
            if (mf.is_atomic) {
                w.pending_loads++;
                any_load_part = true;
            }
            out_queue_.push_back(std::move(mf));
        }

        if (any_load_part && !ins.dst_regs.empty()) {
            for (const int r : ins.dst_regs) {
                w.busy_regs.insert(r);
                w.mem_dest_regs.push_back(r);
            }
        }
        return;
    }

    if (res.shared_accesses > 0) {
        counters_.shared_accesses += res.shared_accesses;
        if (!ins.dst_regs.empty()) {
            for (const int r : ins.dst_regs)
                w.busy_regs.insert(r);
            wb_pipe_.push(Writeback{slot, ins.dst_regs, false},
                          now + cfg_->shared_latency);
        }
        return;
    }

    // Arithmetic path: fixed-latency writeback.
    if (!ins.dst_regs.empty()) {
        unsigned lat = cfg_->alu_latency;
        switch (ins.op) {
          case Op::Sin: case Op::Cos: case Op::Ex2: case Op::Lg2:
          case Op::Rcp: case Op::Rsqrt: case Op::Sqrt:
            lat = cfg_->sfu_latency;
            break;
          case Op::Div:
            lat = isFloat(ins.type) ? cfg_->sfu_latency
                                    : cfg_->sfu_latency * 2;
            break;
          case Op::Ld:
            // Param-space load resolved without a memory access.
            lat = cfg_->alu_latency;
            break;
          default:
            break;
        }
        for (const int r : ins.dst_regs)
            w.busy_regs.insert(r);
        wb_pipe_.push(Writeback{slot, ins.dst_regs, false}, now + lat);
    }
}

void
ShaderCore::cycle(cycle_t now, stats::AerialSampler *sampler)
{
    // Fast path: nothing resident and nothing in flight.
    if (live_warps_total_ == 0 && wb_pipe_.empty()) {
        if (sampler)
            for (unsigned s = 0; s < cfg_->schedulers_per_core; s++)
                sampler->recordStall(id_, stats::StallKind::Idle);
        return;
    }

    // 1. Retire matured writebacks.
    while (wb_pipe_.ready(now)) {
        const Writeback wb = wb_pipe_.pop();
        WarpSlot &w = warps_[wb.warp];
        if (wb.load_part) {
            if (w.valid && w.pending_loads > 0 && --w.pending_loads == 0)
                finishLoads(w);
        } else if (w.valid) {
            for (const int r : wb.regs)
                w.busy_regs.erase(r);
        }
    }

    // 2. Release completed barriers.
    for (auto &cs : cta_slots_)
        if (cs.cta && cs.cta->barrierComplete())
            cs.cta->releaseBarrier();

    // 3. Schedulers issue.
    const unsigned nsched = cfg_->schedulers_per_core;
    for (unsigned s = 0; s < nsched; s++) {
        int chosen = -1;
        stats::StallKind why = stats::StallKind::DataHazard;
        bool any_valid = false, any_eligible = false;
        const auto &owned = sched_owned_[s];

        auto ready = [&](unsigned slot) -> bool {
            const WarpSlot &w = warps_[slot];
            if (!w.valid)
                return false;
            any_valid = true;
            if (!warpEligible(w))
                return false;
            any_eligible = true;
            stats::StallKind w_why = stats::StallKind::DataHazard;
            if (warpReady(w, w_why))
                return true;
            why = w_why;
            return false;
        };

        if (cfg_->sched_policy == SchedPolicy::GTO) {
            // Greedy: stay on the last-issued warp while it is ready...
            if (sched_last_[s] >= 0 && ready(unsigned(sched_last_[s])))
                chosen = sched_last_[s];
            // ...then fall back to the oldest (smallest last-issue) ready warp.
            if (chosen < 0) {
                cycle_t best = ~cycle_t(0);
                for (const unsigned slot : owned) {
                    if (warps_[slot].valid && warps_[slot].last_issue < best &&
                        ready(slot)) {
                        best = warps_[slot].last_issue;
                        chosen = int(slot);
                    }
                }
            }
        } else if (!owned.empty()) {
            const unsigned start = sched_rr_[s] % unsigned(owned.size());
            for (size_t i = 0; i < owned.size(); i++) {
                const unsigned slot = owned[(start + i) % owned.size()];
                if (ready(slot)) {
                    chosen = int(slot);
                    sched_rr_[s] = unsigned((start + i + 1) % owned.size());
                    break;
                }
            }
        }

        if (chosen >= 0) {
            sched_last_[s] = chosen;
            issueWarp(unsigned(chosen), now, sampler);
        } else if (sampler) {
            if (!any_valid)
                sampler->recordStall(id_, stats::StallKind::Idle);
            else if (!any_eligible)
                sampler->recordStall(id_, stats::StallKind::Barrier);
            else
                sampler->recordStall(id_, why);
        }
    }
}

void
ShaderCore::pushResponse(const MemFetch &mf, cycle_t now)
{
    l1_.fill(mf.line_addr, now);

    auto wake = [&](unsigned slot) {
        WarpSlot &w = warps_[slot];
        if (w.valid && w.pending_loads > 0 && --w.pending_loads == 0)
            finishLoads(w);
    };

    if (mf.warp_slot >= 0)
        wake(unsigned(mf.warp_slot));
    const auto it = l1_waiters_.find(mf.line_addr);
    if (it != l1_waiters_.end()) {
        for (const unsigned slot : it->second)
            wake(slot);
        l1_waiters_.erase(it);
    }
}

MemFetch
ShaderCore::popOutgoing()
{
    MemFetch mf = std::move(out_queue_.front());
    out_queue_.pop_front();
    return mf;
}

bool
ShaderCore::busy() const
{
    return live_warps_total_ > 0 || !out_queue_.empty() || !wb_pipe_.empty();
}

} // namespace mlgs::timing
