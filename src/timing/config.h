/**
 * @file
 * Performance-model configuration, in the spirit of gpgpusim.config files.
 * Two presets mirror the paper's setups: a GTX 1050 (correlation target,
 * Section IV) and a GTX 1080 Ti (case studies, Section V).
 */
#ifndef MLGS_TIMING_CONFIG_H
#define MLGS_TIMING_CONFIG_H

#include <string>

namespace mlgs::timing
{

/** Warp scheduler policy. */
enum class SchedPolicy { GTO, LRR };

/** Set-associative cache geometry (tag-only; data lives in GpuMemory). */
struct CacheConfig
{
    unsigned size_bytes = 48 * 1024;
    unsigned line_bytes = 128;
    unsigned assoc = 4;
    unsigned mshr_entries = 32;
    unsigned hit_latency = 28;
};

/** Full GPU performance-model configuration. */
struct GpuConfig
{
    std::string name = "generic";

    // Shader cores.
    unsigned num_cores = 8;
    unsigned max_warps_per_core = 48;
    unsigned max_ctas_per_core = 16;
    unsigned max_threads_per_core = 1536;
    unsigned shared_mem_per_core = 64 * 1024;
    unsigned schedulers_per_core = 2;
    SchedPolicy sched_policy = SchedPolicy::GTO;

    // Execution latencies (core cycles).
    unsigned alu_latency = 4;
    unsigned sfu_latency = 16;
    unsigned shared_latency = 24;
    unsigned max_pending_loads_per_warp = 64;

    CacheConfig l1;

    /**
     * Maximum concurrently-resident kernels (GPGPU-Sim leftover-core style):
     * CTAs of a later grid may occupy core slots an earlier grid leaves
     * free. 1 restores strict one-kernel-at-a-time serialization.
     */
    unsigned max_resident_kernels = 2;

    // Interconnect.
    unsigned icnt_latency = 12;

    // Memory partitions (one L2 slice + DRAM channel each).
    unsigned num_partitions = 4;
    CacheConfig l2{128 * 1024, 128, 8, 64, 60};

    // DRAM (per partition), in core cycles.
    unsigned dram_banks = 8;
    unsigned dram_row_bytes = 2048;
    unsigned dram_cas = 18;          ///< column access on a row hit
    unsigned dram_row_cycle = 40;    ///< precharge + activate on a row miss
    unsigned dram_burst_cycles = 4;  ///< data-bus occupancy per 128B line
    unsigned dram_sched_window = 16; ///< FR-FCFS lookahead
    bool dram_frfcfs = true;         ///< false -> plain FCFS (ablation)

    double core_clock_ghz = 1.4;

    /** GTX 1050-like preset (Pascal GP107): correlation target. */
    static GpuConfig
    gtx1050()
    {
        GpuConfig c;
        c.name = "GTX1050";
        c.num_cores = 5;
        c.max_warps_per_core = 64;
        c.max_threads_per_core = 2048;
        c.max_ctas_per_core = 32;
        c.shared_mem_per_core = 96 * 1024;
        c.schedulers_per_core = 4;
        c.num_partitions = 2;
        c.dram_banks = 8;
        c.core_clock_ghz = 1.35;
        return c;
    }

    /** GTX 1080 Ti-like preset (Pascal GP102): case studies. */
    static GpuConfig
    gtx1080ti()
    {
        GpuConfig c;
        c.name = "GTX1080Ti";
        c.num_cores = 28;
        c.max_warps_per_core = 64;
        c.max_threads_per_core = 2048;
        c.max_ctas_per_core = 32;
        c.shared_mem_per_core = 96 * 1024;
        c.schedulers_per_core = 4;
        c.num_partitions = 11;
        c.dram_banks = 8;
        c.core_clock_ghz = 1.48;
        return c;
    }

    unsigned totalDramBanks() const { return num_partitions * dram_banks; }
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_CONFIG_H
