/**
 * @file
 * Top-level performance model ("Performance simulation mode"): shader cores,
 * a crossbar interconnect, and memory partitions advanced in lock-step, with
 * AerialVision sampling hooks and aggregated counters for the power model.
 *
 * The model is event-drivable: kernels are made resident with beginKernel()
 * and the clock advances via advanceUntil(), so up to
 * GpuConfig::max_resident_kernels grids may execute concurrently — CTAs from
 * different kernels occupy disjoint core slots, GPGPU-Sim leftover-core
 * style. runKernel()/runKernelFrom() remain as synchronous one-grid
 * wrappers.
 */
#ifndef MLGS_TIMING_GPU_H
#define MLGS_TIMING_GPU_H

#include <map>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "func/interpreter.h"
#include "stats/aerial.h"
#include "timing/core.h"
#include "timing/partition.h"

namespace mlgs::timing
{

/** Aggregated counters across a run (input to the power model). */
struct TimingTotals
{
    cycle_t cycles = 0; ///< device-busy cycles (counted once under overlap)
    uint64_t warp_instructions = 0;
    uint64_t thread_instructions = 0;
    uint64_t alu = 0;
    uint64_t sfu = 0;
    uint64_t mem_insts = 0;
    uint64_t shared_accesses = 0;
    uint64_t l1_hits = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_hits = 0;
    uint64_t l2_misses = 0;
    uint64_t icnt_flits = 0;
    uint64_t dram_reads = 0;
    uint64_t dram_writes = 0;
    uint64_t dram_row_hits = 0;
    uint64_t dram_row_misses = 0;
    uint64_t core_active_cycles = 0; ///< summed over cores with live warps
    uint64_t core_idle_cycles = 0;

    TimingTotals &operator+=(const TimingTotals &o);
};

/** Result of one kernel run on the performance model. */
struct KernelRunStats
{
    std::string kernel_name;
    cycle_t cycles = 0;
    uint64_t warp_instructions = 0;
    uint64_t thread_instructions = 0;
    double ipc = 0.0;
    double l1_hit_rate = 0.0;
    double l2_hit_rate = 0.0;
    double dram_row_hit_rate = 0.0;

    /** Device clock when the kernel started issuing. */
    cycle_t start_cycle = 0;

    /**
     * Full counter breakdown over the kernel's execution window (the delta
     * of every TimingTotals field between start and retirement). Exact
     * per-kernel attribution when kernels don't overlap; under concurrent
     * residency, events of overlapping kernels land in both windows (the
     * grand totals_ remain free of double counting either way).
     */
    TimingTotals totals;
};

/** A kernel retired by advanceUntil(). */
struct KernelCompletion
{
    uint64_t token = 0;
    cycle_t at = 0; ///< device clock at completion
};

/** The simulated GPU. */
class GpuModel
{
  public:
    GpuModel(const GpuConfig &cfg, func::Interpreter &interp);
    ~GpuModel();

    // ---- event-driven interface ----
    /**
     * Make a grid resident, eligible to issue CTAs once the device clock
     * reaches `not_before` (the launching stream's ready time). The first
     * `skip_ctas` CTAs are considered already executed; `preloaded` may
     * supply mid-execution CTA states (checkpoint resume). Returns a token.
     */
    uint64_t beginKernel(const func::LaunchEnv &env, const Dim3 &grid,
                         const Dim3 &block, cycle_t not_before,
                         uint64_t skip_ctas = 0,
                         std::vector<std::unique_ptr<func::CtaExec>>
                             preloaded = {});

    /**
     * Advance the device clock until some resident kernel completes or the
     * clock would pass `limit`. Fully idle gaps (every resident kernel still
     * below its not_before time, nothing in flight) are skipped without
     * burning simulation work. Returns the completion if one occurred at a
     * clock value <= limit.
     */
    std::optional<KernelCompletion> advanceUntil(
        cycle_t limit, stats::AerialSampler *sampler = nullptr);

    /** Fetch (and drop) the stats of a kernel retired by advanceUntil(). */
    KernelRunStats collectKernel(uint64_t token);

    unsigned residentKernels() const { return unsigned(active_.size()); }
    cycle_t clock() const { return clock_; }

    // ---- synchronous one-grid wrappers ----
    /** Run one grid to completion in the timing model (device must be idle). */
    KernelRunStats runKernel(const func::LaunchEnv &env, const Dim3 &grid,
                             const Dim3 &block,
                             stats::AerialSampler *sampler = nullptr);

    /**
     * Timing-mode resume support: run a grid whose first `skip_ctas` CTAs are
     * considered already executed (their functional effects must already be
     * in memory) and, optionally, adopt pre-initialized CTA states.
     */
    KernelRunStats runKernelFrom(const func::LaunchEnv &env, const Dim3 &grid,
                                 const Dim3 &block, uint64_t skip_ctas,
                                 std::vector<std::unique_ptr<func::CtaExec>>
                                     preloaded_ctas,
                                 stats::AerialSampler *sampler = nullptr);

    const GpuConfig &config() const { return cfg_; }
    const TimingTotals &totals() const { return totals_; }
    cycle_t totalCycles() const { return totals_.cycles; }

    /**
     * Attach (or detach with nullptr) the worker pool. With a pool, each
     * cycle's ShaderCore::cycle calls are sharded across workers; all
     * cross-core interaction (queue drains, interconnect, partitions) stays
     * on the calling thread in ascending core-id order, so cycle counts and
     * all statistics match the serial run bitwise. The serial path is used
     * whenever an AerialSampler or CoverageMap is attached or a resident
     * kernel uses global atomics (shared mutable state / ordering).
     */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Per-bank DRAM row hit/miss counters, partition-major (partition p,
     * bank b at index p * dram_banks + b). Determinism-suite hook.
     */
    std::vector<uint64_t> perBankRowHits() const;
    std::vector<uint64_t> perBankRowMisses() const;

    /**
     * Every kernel retired so far, in retirement order, each with its full
     * TimingTotals window delta (KernelRunStats::totals). Feeds the sampling
     * extrapolator and `mlgs-trace replay --per-launch`.
     */
    const std::vector<KernelRunStats> &perLaunchTotals() const
    {
        return per_launch_;
    }

    /**
     * Fold an extrapolated (not cycle-simulated) kernel's estimated counters
     * into the grand totals. Used by the sampled timing mode for
     * fast-forwarded launches; never called in Detailed mode, so detailed
     * totals stay bitwise-unchanged. The snapshot-delta accumulation in
     * finishActive() is unaffected (it diffs raw component counters, which
     * this does not touch).
     */
    void accumulateExtrapolated(const TimingTotals &t) { totals_ += t; }

  private:
    /** Cumulative-counter snapshot used to report per-window deltas. */
    struct StatBase
    {
        uint64_t l1_h = 0, l1_m = 0;
        uint64_t l2_h = 0, l2_m = 0;
        uint64_t row_h = 0, row_m = 0, l2_wb = 0;
        // Counters that only exist as running totals_ fields; snapshotting
        // them here lets finishActive report full per-kernel window deltas.
        uint64_t icnt = 0, busy = 0, active = 0, idle = 0;
        std::vector<CoreCounters> core;
    };

    /** One resident grid. */
    struct ActiveKernel
    {
        uint64_t token = 0;
        func::LaunchEnv env;   ///< owned copy; disp.env points here
        KernelDispatch disp;
        cycle_t not_before = 0;
        cycle_t start_clock = 0;
        bool started = false;
        StatBase base; ///< snapshot at start (per-kernel attribution)
    };

    void cycleOnce(cycle_t now, stats::AerialSampler *sampler);
    bool parallelStepAllowed(const stats::AerialSampler *sampler) const;
    bool anythingInFlight() const;
    StatBase snapshot() const;
    KernelCompletion finishActive(size_t idx);

    GpuConfig cfg_;
    func::Interpreter *interp_;
    ThreadPool *pool_ = nullptr;
    std::vector<std::unique_ptr<ShaderCore>> cores_;
    std::vector<std::unique_ptr<MemPartition>> partitions_;
    DelayQueue<MemFetch> to_partition_;
    DelayQueue<MemFetch> to_core_;
    TimingTotals totals_;

    std::vector<std::unique_ptr<ActiveKernel>> active_; ///< launch order
    std::map<uint64_t, KernelRunStats> finished_;       ///< awaiting collect
    std::vector<KernelRunStats> per_launch_;            ///< retirement order
    StatBase totals_base_; ///< totals_ accumulated up to this snapshot
    uint64_t next_token_ = 0;
    uint64_t next_launch_seq_ = 0; ///< stamps LaunchEnv::launch_seq

    /**
     * Persistent device clock, now shared with the DeviceEngine's stream
     * timeline. Component timestamps (DRAM bank/bus ready times, pipeline
     * delays) survive across kernel launches, so the clock must too.
     */
    cycle_t clock_ = 0;

    // Forward-progress watchdog across advanceUntil calls.
    cycle_t last_progress_clock_ = 0;
    uint64_t last_completed_sum_ = 0;
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_GPU_H
