/**
 * @file
 * Top-level performance model ("Performance simulation mode"): shader cores,
 * a crossbar interconnect, and memory partitions advanced in lock-step, with
 * AerialVision sampling hooks and aggregated counters for the power model.
 */
#ifndef MLGS_TIMING_GPU_H
#define MLGS_TIMING_GPU_H

#include <memory>

#include "func/interpreter.h"
#include "stats/aerial.h"
#include "timing/core.h"
#include "timing/partition.h"

namespace mlgs::timing
{

/** Aggregated counters across a run (input to the power model). */
struct TimingTotals
{
    cycle_t cycles = 0;
    uint64_t warp_instructions = 0;
    uint64_t thread_instructions = 0;
    uint64_t alu = 0;
    uint64_t sfu = 0;
    uint64_t mem_insts = 0;
    uint64_t shared_accesses = 0;
    uint64_t l1_hits = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_hits = 0;
    uint64_t l2_misses = 0;
    uint64_t icnt_flits = 0;
    uint64_t dram_reads = 0;
    uint64_t dram_writes = 0;
    uint64_t dram_row_hits = 0;
    uint64_t dram_row_misses = 0;
    uint64_t core_active_cycles = 0; ///< summed over cores with live warps
    uint64_t core_idle_cycles = 0;

    TimingTotals &operator+=(const TimingTotals &o);
};

/** Result of one kernel run on the performance model. */
struct KernelRunStats
{
    std::string kernel_name;
    cycle_t cycles = 0;
    uint64_t warp_instructions = 0;
    uint64_t thread_instructions = 0;
    double ipc = 0.0;
    double l1_hit_rate = 0.0;
    double l2_hit_rate = 0.0;
    double dram_row_hit_rate = 0.0;
};

/** The simulated GPU (one kernel at a time, matching GPGPU-Sim's default). */
class GpuModel
{
  public:
    GpuModel(const GpuConfig &cfg, func::Interpreter &interp);
    ~GpuModel();

    /** Run one grid to completion in the timing model. */
    KernelRunStats runKernel(const func::LaunchEnv &env, const Dim3 &grid,
                             const Dim3 &block,
                             stats::AerialSampler *sampler = nullptr);

    /**
     * Timing-mode resume support: run a grid whose first `skip_ctas` CTAs are
     * considered already executed (their functional effects must already be
     * in memory) and, optionally, adopt pre-initialized CTA states.
     */
    KernelRunStats runKernelFrom(const func::LaunchEnv &env, const Dim3 &grid,
                                 const Dim3 &block, uint64_t skip_ctas,
                                 std::vector<std::unique_ptr<func::CtaExec>>
                                     preloaded_ctas,
                                 stats::AerialSampler *sampler = nullptr);

    const GpuConfig &config() const { return cfg_; }
    const TimingTotals &totals() const { return totals_; }
    cycle_t totalCycles() const { return totals_.cycles; }

  private:
    void cycleOnce(cycle_t now, stats::AerialSampler *sampler);
    bool anythingInFlight() const;

    GpuConfig cfg_;
    func::Interpreter *interp_;
    std::vector<std::unique_ptr<ShaderCore>> cores_;
    std::vector<std::unique_ptr<MemPartition>> partitions_;
    DelayQueue<MemFetch> to_partition_;
    DelayQueue<MemFetch> to_core_;
    TimingTotals totals_;

    /**
     * Persistent device clock. Component timestamps (DRAM bank/bus ready
     * times, pipeline delays) survive across kernel launches, so the clock
     * must too — each launch reports its own delta.
     */
    cycle_t clock_ = 0;
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_GPU_H
