#include "timing/cache.h"

#include "common/log.h"

namespace mlgs::timing
{

TagCache::TagCache(const CacheConfig &cfg) : cfg_(cfg)
{
    MLGS_REQUIRE(cfg.line_bytes && (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
                 "cache line size must be a power of two");
    num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.assoc);
    MLGS_REQUIRE(num_sets_ > 0, "cache too small for its associativity");
    lines_.resize(size_t(num_sets_) * cfg.assoc);
}

unsigned
TagCache::setIndex(addr_t line_addr) const
{
    return unsigned((line_addr / cfg_.line_bytes) % num_sets_);
}

TagCache::Line *
TagCache::probe(addr_t line_addr)
{
    const unsigned set = setIndex(line_addr);
    for (unsigned w = 0; w < cfg_.assoc; w++) {
        Line &l = lines_[size_t(set) * cfg_.assoc + w];
        if (l.valid && l.tag == line_addr)
            return &l;
    }
    return nullptr;
}

CacheOutcome
TagCache::accessRead(addr_t line_addr, cycle_t now)
{
    if (Line *l = probe(line_addr)) {
        l->last_use = now;
        hits_++;
        return CacheOutcome::Hit;
    }
    misses_++;
    const auto it = mshrs_.find(line_addr);
    if (it != mshrs_.end()) {
        it->second++;
        return CacheOutcome::MissMerged;
    }
    if (mshrs_.size() >= cfg_.mshr_entries) {
        misses_--; // not a real access yet; caller retries
        return CacheOutcome::ReservationFail;
    }
    mshrs_.emplace(line_addr, 1);
    return CacheOutcome::Miss;
}

bool
TagCache::accessWrite(addr_t line_addr, cycle_t now)
{
    if (Line *l = probe(line_addr)) {
        l->last_use = now;
        hits_++;
        return true;
    }
    misses_++;
    return false;
}

void
TagCache::fill(addr_t line_addr, cycle_t now)
{
    mshrs_.erase(line_addr);
    if (probe(line_addr))
        return;
    const unsigned set = setIndex(line_addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.assoc; w++) {
        Line &l = lines_[size_t(set) * cfg_.assoc + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.last_use < victim->last_use)
            victim = &l;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->last_use = now;
}

} // namespace mlgs::timing
