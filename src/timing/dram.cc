#include "timing/dram.h"

#include "common/log.h"

namespace mlgs::timing
{

DramChannel::DramChannel(const GpuConfig &cfg, unsigned partition_id)
    : cfg_(&cfg), partition_id_(partition_id), banks_(cfg.dram_banks)
{
    pending_per_bank_.assign(cfg.dram_banks, 0);
    bank_row_hits_.assign(cfg.dram_banks, 0);
    bank_row_misses_.assign(cfg.dram_banks, 0);
}

unsigned
DramChannel::bankOf(addr_t line_addr) const
{
    const uint64_t laddr = line_addr / cfg_->l2.line_bytes;
    const uint64_t pline = laddr / cfg_->num_partitions;
    const uint64_t row_lines = cfg_->dram_row_bytes / cfg_->l2.line_bytes;
    return unsigned((pline / row_lines) % cfg_->dram_banks);
}

uint64_t
DramChannel::rowOf(addr_t line_addr) const
{
    const uint64_t laddr = line_addr / cfg_->l2.line_bytes;
    const uint64_t pline = laddr / cfg_->num_partitions;
    const uint64_t row_lines = cfg_->dram_row_bytes / cfg_->l2.line_bytes;
    return (pline / row_lines) / cfg_->dram_banks;
}

void
DramChannel::push(MemFetch mf)
{
    pending_per_bank_[bankOf(mf.line_addr)]++;
    queue_.push_back(std::move(mf));
}

void
DramChannel::cycle(cycle_t now)
{
    if (queue_.empty())
        return;

    const size_t window = std::min(queue_.size(), size_t(cfg_->dram_sched_window));
    size_t pick = SIZE_MAX;

    if (cfg_->dram_frfcfs) {
        // First ready row-hit in the window.
        for (size_t i = 0; i < window; i++) {
            const MemFetch &mf = queue_[i];
            const unsigned b = bankOf(mf.line_addr);
            if (banks_[b].ready_at <= now &&
                banks_[b].open_row == rowOf(mf.line_addr)) {
                pick = i;
                break;
            }
        }
    }
    if (pick == SIZE_MAX) {
        // Oldest request whose bank is ready.
        for (size_t i = 0; i < window; i++) {
            const unsigned b = bankOf(queue_[i].line_addr);
            if (banks_[b].ready_at <= now) {
                pick = i;
                break;
            }
        }
    }
    if (pick == SIZE_MAX)
        return;

    MemFetch mf = std::move(queue_[pick]);
    queue_.erase(queue_.begin() + long(pick));

    const unsigned b = bankOf(mf.line_addr);
    const uint64_t row = rowOf(mf.line_addr);
    Bank &bank = banks_[b];
    pending_per_bank_[b]--;

    cycle_t latency = cfg_->dram_cas;
    if (bank.open_row != row) {
        latency += cfg_->dram_row_cycle;
        bank.open_row = row;
        row_misses_++;
        bank_row_misses_[b]++;
    } else {
        row_hits_++;
        bank_row_hits_[b]++;
    }

    const cycle_t transfer_start = std::max(now + latency, bus_free_);
    const cycle_t completion = transfer_start + cfg_->dram_burst_cycles;
    bus_free_ = completion;
    bank.ready_at = completion;
    bank.transfer_start = transfer_start;
    bank.transfer_until = completion;

    done_.push(std::move(mf), completion);
    inflight_++;
}

MemFetch
DramChannel::popDone()
{
    inflight_--;
    return done_.pop();
}

bool
DramChannel::bankTransferring(unsigned bank, cycle_t now) const
{
    const Bank &b = banks_[bank];
    return now >= b.transfer_start && now < b.transfer_until;
}

bool
DramChannel::bankPending(unsigned bank) const
{
    return pending_per_bank_[bank] > 0;
}

} // namespace mlgs::timing
