/**
 * @file
 * Cycle-level SIMT core ("shader core" / SM): warp schedulers with a
 * scoreboard, functional execution at issue (GPGPU-Sim style), an L1 data
 * cache with MSHR merging, and CTA occupancy management.
 */
#ifndef MLGS_TIMING_CORE_H
#define MLGS_TIMING_CORE_H

#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "func/engine.h"
#include "stats/aerial.h"
#include "timing/cache.h"
#include "timing/mem_fetch.h"

namespace mlgs::timing
{

/** Shared, per-launch dispatch state (which CTA goes next, completion). */
struct KernelDispatch
{
    const func::LaunchEnv *env = nullptr;
    Dim3 grid;
    Dim3 block;
    unsigned threads_per_cta = 0;
    unsigned warps_per_cta = 0;
    unsigned shared_bytes_per_cta = 0;
    uint64_t total_ctas = 0;
    uint64_t next_cta = 0;      ///< next linear CTA id to install

    /**
     * Atomic: cores stepping in parallel (GpuModel's sharded cycle loop)
     * retire CTAs concurrently. The value is a pure sum, so the result is
     * independent of retirement order.
     */
    std::atomic<uint64_t> completed_ctas{0};

    /**
     * Checkpoint resume: pre-initialized (possibly mid-execution) CTA states
     * for linear ids [preload_base, preload_base + preloaded.size()).
     */
    uint64_t preload_base = 0;
    std::vector<std::unique_ptr<func::CtaExec>> preloaded;

    bool allIssued() const { return next_cta >= total_ctas; }
    bool allDone() const { return completed_ctas >= total_ctas; }
};

/** Per-core aggregate counters. */
struct CoreCounters
{
    uint64_t issued_instructions = 0;
    uint64_t thread_instructions = 0;
    uint64_t alu = 0;
    uint64_t sfu = 0;
    uint64_t mem = 0;
    uint64_t shared_accesses = 0;
    uint64_t ctas_completed = 0;
};

/** One streaming multiprocessor. */
class ShaderCore
{
  public:
    ShaderCore(unsigned id, const GpuConfig &cfg, func::Interpreter &interp);

    /** Try to claim and install the dispatch's next CTA; true on success. */
    bool tryIssueCta(KernelDispatch &disp);

    /** One core cycle: barrier release, scheduling, issue. */
    void cycle(cycle_t now, stats::AerialSampler *sampler);

    /** Memory response delivered from the interconnect. */
    void pushResponse(const MemFetch &mf, cycle_t now);

    bool hasOutgoing() const { return !out_queue_.empty(); }
    MemFetch popOutgoing();

    /** Live warps or outstanding memory work. */
    bool busy() const;

    const CoreCounters &counters() const { return counters_; }
    const TagCache &l1() const { return l1_; }
    unsigned id() const { return id_; }

    /** Number of live (installed, unfinished) warps. */
    unsigned liveWarps() const { return live_warps_total_; }

  private:
    struct CtaSlot
    {
        std::unique_ptr<func::CtaExec> cta;
        KernelDispatch *disp = nullptr;
        std::vector<unsigned> warp_slots;
        unsigned live_warps = 0;
    };

    struct WarpSlot
    {
        bool valid = false;
        int cta_slot = -1;
        unsigned warp_in_cta = 0;
        std::unordered_set<int> busy_regs;     ///< scoreboard
        std::vector<int> mem_dest_regs;        ///< released when loads drain
        unsigned pending_loads = 0;
        cycle_t last_issue = 0;
    };

    /** Delayed register writeback (fixed-latency pipelines + L1 hits). */
    struct Writeback
    {
        unsigned warp = 0;
        std::vector<int> regs;
        bool load_part = false; ///< decrements pending_loads instead
    };

    bool warpEligible(const WarpSlot &w) const;
    bool warpReady(const WarpSlot &w, stats::StallKind &why) const;
    void issueWarp(unsigned slot, cycle_t now, stats::AerialSampler *sampler);
    void finishLoads(WarpSlot &w);
    void completeCtaIfDone(int cta_slot);

    unsigned id_;
    const GpuConfig *cfg_;
    func::Interpreter *interp_;
    TagCache l1_;

    std::vector<CtaSlot> cta_slots_;
    std::vector<WarpSlot> warps_;
    std::vector<unsigned> sched_rr_; ///< LRR rotate position per scheduler
    std::vector<int> sched_last_;    ///< GTO sticky warp per scheduler
    std::vector<std::vector<unsigned>> sched_owned_; ///< warp slots per sched

    unsigned used_threads_ = 0;
    unsigned used_shared_ = 0;
    unsigned used_ctas_ = 0;
    unsigned live_warps_total_ = 0;

    PqDelayQueue<Writeback> wb_pipe_;
    std::deque<MemFetch> out_queue_;
    std::unordered_map<addr_t, std::vector<unsigned>> l1_waiters_;
    uint64_t next_fetch_id_ = 0;

    CoreCounters counters_;
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_CORE_H
