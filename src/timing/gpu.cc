#include "timing/gpu.h"

#include <algorithm>

namespace mlgs::timing
{

TimingTotals &
TimingTotals::operator+=(const TimingTotals &o)
{
    cycles += o.cycles;
    warp_instructions += o.warp_instructions;
    thread_instructions += o.thread_instructions;
    alu += o.alu;
    sfu += o.sfu;
    mem_insts += o.mem_insts;
    shared_accesses += o.shared_accesses;
    l1_hits += o.l1_hits;
    l1_misses += o.l1_misses;
    l2_hits += o.l2_hits;
    l2_misses += o.l2_misses;
    icnt_flits += o.icnt_flits;
    dram_reads += o.dram_reads;
    dram_writes += o.dram_writes;
    dram_row_hits += o.dram_row_hits;
    dram_row_misses += o.dram_row_misses;
    core_active_cycles += o.core_active_cycles;
    core_idle_cycles += o.core_idle_cycles;
    return *this;
}

GpuModel::GpuModel(const GpuConfig &cfg, func::Interpreter &interp)
    : cfg_(cfg), interp_(&interp)
{
    for (unsigned c = 0; c < cfg_.num_cores; c++)
        cores_.push_back(std::make_unique<ShaderCore>(c, cfg_, interp));
    for (unsigned p = 0; p < cfg_.num_partitions; p++)
        partitions_.push_back(std::make_unique<MemPartition>(cfg_, p));
}

GpuModel::~GpuModel() = default;

bool
GpuModel::anythingInFlight() const
{
    for (const auto &core : cores_)
        if (core->busy())
            return true;
    for (const auto &part : partitions_)
        if (part->busy())
            return true;
    return !to_partition_.empty() || !to_core_.empty();
}

void
GpuModel::cycleOnce(cycle_t now, stats::AerialSampler *sampler)
{
    // 1. Shader cores (issue + writeback).
    for (auto &core : cores_) {
        if (core->liveWarps())
            totals_.core_active_cycles++;
        else
            totals_.core_idle_cycles++;
        core->cycle(now, sampler);
    }

    // 2. Core -> interconnect (all outgoing requests enter the crossbar;
    //    per-partition acceptance below models the bandwidth limit).
    for (auto &core : cores_) {
        unsigned moved = 0;
        while (core->hasOutgoing() && moved < 2) {
            MemFetch mf = core->popOutgoing();
            mf.partition = unsigned((mf.line_addr / cfg_.l2.line_bytes) %
                                    cfg_.num_partitions);
            totals_.icnt_flits += (mf.bytes + 31) / 32;
            to_partition_.push(std::move(mf), now + cfg_.icnt_latency);
            moved++;
        }
    }

    // 3. Interconnect -> partitions.
    while (to_partition_.ready(now)) {
        MemFetch mf = to_partition_.pop();
        partitions_[mf.partition]->pushRequest(std::move(mf));
    }

    // 4. Partitions (L2 + DRAM), response collection, bank sampling.
    for (unsigned p = 0; p < partitions_.size(); p++) {
        MemPartition &part = *partitions_[p];
        part.cycle(now);
        unsigned moved = 0;
        while (part.hasResponse() && moved < 2) {
            MemFetch mf = part.popResponse();
            totals_.icnt_flits += (mf.bytes + 31) / 32;
            to_core_.push(std::move(mf), now + cfg_.icnt_latency);
            moved++;
        }
        if (sampler) {
            const DramChannel &dram = part.dram();
            for (unsigned b = 0; b < cfg_.dram_banks; b++)
                sampler->recordBank(p * cfg_.dram_banks + b,
                                    dram.bankTransferring(b, now),
                                    dram.bankPending(b));
        }
    }

    // 5. Interconnect -> cores.
    while (to_core_.ready(now)) {
        const MemFetch mf = to_core_.pop();
        cores_[mf.core_id]->pushResponse(mf, now);
    }

    if (sampler)
        sampler->endCycle();
}

KernelRunStats
GpuModel::runKernel(const func::LaunchEnv &env, const Dim3 &grid,
                    const Dim3 &block, stats::AerialSampler *sampler)
{
    return runKernelFrom(env, grid, block, 0, {}, sampler);
}

KernelRunStats
GpuModel::runKernelFrom(const func::LaunchEnv &env, const Dim3 &grid,
                        const Dim3 &block, uint64_t skip_ctas,
                        std::vector<std::unique_ptr<func::CtaExec>>
                            preloaded_ctas,
                        stats::AerialSampler *sampler)
{
    MLGS_REQUIRE(env.kernel, "runKernel without a kernel");

    KernelDispatch disp;
    disp.env = &env;
    disp.grid = grid;
    disp.block = block;
    disp.threads_per_cta = unsigned(block.count());
    disp.warps_per_cta = (disp.threads_per_cta + kWarpSize - 1) / kWarpSize;
    disp.shared_bytes_per_cta = env.kernel->shared_bytes;
    disp.total_ctas = grid.count();
    disp.next_cta = std::min<uint64_t>(skip_ctas, disp.total_ctas);
    disp.completed_ctas = disp.next_cta;
    disp.preload_base = skip_ctas;
    disp.preloaded = std::move(preloaded_ctas);

    MLGS_REQUIRE(disp.threads_per_cta <= cfg_.max_threads_per_core,
                 "CTA larger than a core's thread capacity");
    MLGS_REQUIRE(disp.shared_bytes_per_cta <= cfg_.shared_mem_per_core,
                 "CTA shared memory exceeds the core's capacity");

    // Snapshot cumulative per-component stats so this run reports deltas.
    uint64_t l1_h0 = 0, l1_m0 = 0;
    std::vector<CoreCounters> core0;
    for (const auto &core : cores_) {
        l1_h0 += core->l1().hits();
        l1_m0 += core->l1().misses();
        core0.push_back(core->counters());
    }
    uint64_t l2_h0 = 0, l2_m0 = 0, rh0 = 0, rm0 = 0, wr0 = 0;
    for (const auto &p : partitions_) {
        l2_h0 += p->l2().hits();
        l2_m0 += p->l2().misses();
        rh0 += p->dram().rowHits();
        rm0 += p->dram().rowMisses();
        wr0 += p->l2Writebacks();
    }

    const cycle_t start = clock_;
    cycle_t last_progress_cycle = clock_;
    uint64_t last_completed = disp.completed_ctas;

    while (!disp.allDone() || anythingInFlight()) {
        // Greedy CTA dispatch each cycle.
        for (auto &core : cores_) {
            while (!disp.allIssued() && core->tryIssueCta(disp)) {
            }
        }
        cycleOnce(clock_, sampler);

        if (disp.completed_ctas != last_completed) {
            last_completed = disp.completed_ctas;
            last_progress_cycle = clock_;
        }
        MLGS_ASSERT(clock_ - last_progress_cycle < 10'000'000,
                    "timing model made no progress for 10M cycles in kernel ",
                    env.kernel->name);
        clock_++;
    }

    const cycle_t now = clock_ - start;
    totals_.cycles += now;
    KernelRunStats rs;
    rs.kernel_name = env.kernel->name;
    rs.cycles = now;
    uint64_t l1_h = 0, l1_m = 0;
    for (unsigned c = 0; c < cores_.size(); c++) {
        const CoreCounters &cc = cores_[c]->counters();
        const CoreCounters &c0 = core0[c];
        rs.warp_instructions += cc.issued_instructions - c0.issued_instructions;
        rs.thread_instructions += cc.thread_instructions - c0.thread_instructions;
        totals_.warp_instructions +=
            cc.issued_instructions - c0.issued_instructions;
        totals_.thread_instructions +=
            cc.thread_instructions - c0.thread_instructions;
        totals_.alu += cc.alu - c0.alu;
        totals_.sfu += cc.sfu - c0.sfu;
        totals_.mem_insts += cc.mem - c0.mem;
        totals_.shared_accesses += cc.shared_accesses - c0.shared_accesses;
        l1_h += cores_[c]->l1().hits();
        l1_m += cores_[c]->l1().misses();
    }
    uint64_t l2_h = 0, l2_m = 0, rh = 0, rm = 0, wr = 0;
    for (const auto &p : partitions_) {
        l2_h += p->l2().hits();
        l2_m += p->l2().misses();
        rh += p->dram().rowHits();
        rm += p->dram().rowMisses();
        wr += p->l2Writebacks();
    }
    totals_.l1_hits += l1_h - l1_h0;
    totals_.l1_misses += l1_m - l1_m0;
    totals_.l2_hits += l2_h - l2_h0;
    totals_.l2_misses += l2_m - l2_m0;
    totals_.dram_reads += (l2_m - l2_m0);
    totals_.dram_writes += wr - wr0;
    totals_.dram_row_hits += rh - rh0;
    totals_.dram_row_misses += rm - rm0;

    rs.ipc = now ? double(rs.warp_instructions) / double(now) : 0.0;
    const uint64_t dl1h = l1_h - l1_h0, dl1m = l1_m - l1_m0;
    rs.l1_hit_rate = (dl1h + dl1m) ? double(dl1h) / double(dl1h + dl1m) : 0.0;
    const uint64_t dl2h = l2_h - l2_h0, dl2m = l2_m - l2_m0;
    rs.l2_hit_rate = (dl2h + dl2m) ? double(dl2h) / double(dl2h + dl2m) : 0.0;
    const uint64_t drh = rh - rh0, drm = rm - rm0;
    rs.dram_row_hit_rate = (drh + drm) ? double(drh) / double(drh + drm) : 0.0;
    return rs;
}

} // namespace mlgs::timing
