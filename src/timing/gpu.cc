#include "timing/gpu.h"

#include <algorithm>
#include <limits>

namespace mlgs::timing
{

namespace
{
constexpr cycle_t kNoDeadline = std::numeric_limits<cycle_t>::max();
} // namespace

TimingTotals &
TimingTotals::operator+=(const TimingTotals &o)
{
    cycles += o.cycles;
    warp_instructions += o.warp_instructions;
    thread_instructions += o.thread_instructions;
    alu += o.alu;
    sfu += o.sfu;
    mem_insts += o.mem_insts;
    shared_accesses += o.shared_accesses;
    l1_hits += o.l1_hits;
    l1_misses += o.l1_misses;
    l2_hits += o.l2_hits;
    l2_misses += o.l2_misses;
    icnt_flits += o.icnt_flits;
    dram_reads += o.dram_reads;
    dram_writes += o.dram_writes;
    dram_row_hits += o.dram_row_hits;
    dram_row_misses += o.dram_row_misses;
    core_active_cycles += o.core_active_cycles;
    core_idle_cycles += o.core_idle_cycles;
    return *this;
}

GpuModel::GpuModel(const GpuConfig &cfg, func::Interpreter &interp)
    : cfg_(cfg), interp_(&interp)
{
    for (unsigned c = 0; c < cfg_.num_cores; c++)
        cores_.push_back(std::make_unique<ShaderCore>(c, cfg_, interp));
    for (unsigned p = 0; p < cfg_.num_partitions; p++)
        partitions_.push_back(std::make_unique<MemPartition>(cfg_, p));
    totals_base_ = snapshot();
}

GpuModel::~GpuModel() = default;

bool
GpuModel::anythingInFlight() const
{
    for (const auto &core : cores_)
        if (core->busy())
            return true;
    for (const auto &part : partitions_)
        if (part->busy())
            return true;
    return !to_partition_.empty() || !to_core_.empty();
}

bool
GpuModel::parallelStepAllowed(const stats::AerialSampler *sampler) const
{
    if (!pool_ || pool_->threadCount() <= 1)
        return false;
    // The sampler and the coverage map are shared mutable state written
    // from inside ShaderCore::cycle / stepWarp; keep those runs serial.
    if (sampler || interp_->coverage())
        return false;
    // Warp-stream capture appends to shared per-warp vectors and replay is
    // only meaningful against a serially recorded stream; keep both serial.
    if (interp_->warpStreamActive())
        return false;
    // The site profiler accumulates per-pc counters in one map.
    if (interp_->siteProfiler())
        return false;
    // Global atomics order cross-CTA memory updates; a started kernel
    // using them pins the whole device to the serial path.
    for (const auto &ak : active_)
        if (ak->started && ptx::usesGlobalAtomics(*ak->env.kernel))
            return false;
    return true;
}

void
GpuModel::cycleOnce(cycle_t now, stats::AerialSampler *sampler)
{
    // 1. Shader cores (issue + writeback). Cores are independent within a
    //    cycle: each only touches its own CTA slots, L1, queues and
    //    counters, plus GpuMemory (thread-safe) and the atomic CTA
    //    completion count. Everything cross-core below runs on this thread
    //    in ascending core-id order, so the sharded step is bitwise
    //    equivalent to the serial loop.
    unsigned busy = 0;
    for (auto &core : cores_) {
        if (core->liveWarps()) {
            totals_.core_active_cycles++;
            busy++;
        } else {
            totals_.core_idle_cycles++;
        }
    }
    if (busy >= 2 && parallelStepAllowed(sampler)) {
        pool_->parallelFor(cores_.size(), [&](uint64_t c, unsigned) {
            cores_[c]->cycle(now, nullptr);
        });
    } else {
        for (auto &core : cores_)
            core->cycle(now, sampler);
    }

    // 2. Core -> interconnect (all outgoing requests enter the crossbar;
    //    per-partition acceptance below models the bandwidth limit).
    for (auto &core : cores_) {
        unsigned moved = 0;
        while (core->hasOutgoing() && moved < 2) {
            MemFetch mf = core->popOutgoing();
            mf.partition = unsigned((mf.line_addr / cfg_.l2.line_bytes) %
                                    cfg_.num_partitions);
            totals_.icnt_flits += (mf.bytes + 31) / 32;
            to_partition_.push(std::move(mf), now + cfg_.icnt_latency);
            moved++;
        }
    }

    // 3. Interconnect -> partitions.
    while (to_partition_.ready(now)) {
        MemFetch mf = to_partition_.pop();
        partitions_[mf.partition]->pushRequest(std::move(mf));
    }

    // 4. Partitions (L2 + DRAM), response collection, bank sampling.
    for (unsigned p = 0; p < partitions_.size(); p++) {
        MemPartition &part = *partitions_[p];
        part.cycle(now);
        unsigned moved = 0;
        while (part.hasResponse() && moved < 2) {
            MemFetch mf = part.popResponse();
            totals_.icnt_flits += (mf.bytes + 31) / 32;
            to_core_.push(std::move(mf), now + cfg_.icnt_latency);
            moved++;
        }
        if (sampler) {
            const DramChannel &dram = part.dram();
            for (unsigned b = 0; b < cfg_.dram_banks; b++)
                sampler->recordBank(p * cfg_.dram_banks + b,
                                    dram.bankTransferring(b, now),
                                    dram.bankPending(b));
        }
    }

    // 5. Interconnect -> cores.
    while (to_core_.ready(now)) {
        const MemFetch mf = to_core_.pop();
        cores_[mf.core_id]->pushResponse(mf, now);
    }

    if (sampler)
        sampler->endCycle();
}

std::vector<uint64_t>
GpuModel::perBankRowHits() const
{
    std::vector<uint64_t> out;
    for (const auto &p : partitions_)
        for (unsigned b = 0; b < cfg_.dram_banks; b++)
            out.push_back(p->dram().bankRowHits(b));
    return out;
}

std::vector<uint64_t>
GpuModel::perBankRowMisses() const
{
    std::vector<uint64_t> out;
    for (const auto &p : partitions_)
        for (unsigned b = 0; b < cfg_.dram_banks; b++)
            out.push_back(p->dram().bankRowMisses(b));
    return out;
}

GpuModel::StatBase
GpuModel::snapshot() const
{
    StatBase b;
    for (const auto &core : cores_) {
        b.l1_h += core->l1().hits();
        b.l1_m += core->l1().misses();
        b.core.push_back(core->counters());
    }
    for (const auto &p : partitions_) {
        b.l2_h += p->l2().hits();
        b.l2_m += p->l2().misses();
        b.row_h += p->dram().rowHits();
        b.row_m += p->dram().rowMisses();
        b.l2_wb += p->l2Writebacks();
    }
    b.icnt = totals_.icnt_flits;
    b.busy = totals_.cycles;
    b.active = totals_.core_active_cycles;
    b.idle = totals_.core_idle_cycles;
    return b;
}

uint64_t
GpuModel::beginKernel(const func::LaunchEnv &env, const Dim3 &grid,
                      const Dim3 &block, cycle_t not_before,
                      uint64_t skip_ctas,
                      std::vector<std::unique_ptr<func::CtaExec>> preloaded)
{
    MLGS_REQUIRE(env.kernel, "beginKernel without a kernel");

    auto ak = std::make_unique<ActiveKernel>();
    ak->token = next_token_++;
    ak->env = env;
    ak->env.launch_seq = next_launch_seq_++;
    ak->not_before = not_before;

    KernelDispatch &disp = ak->disp;
    disp.env = &ak->env;
    disp.grid = grid;
    disp.block = block;
    disp.threads_per_cta = unsigned(block.count());
    disp.warps_per_cta = (disp.threads_per_cta + kWarpSize - 1) / kWarpSize;
    disp.shared_bytes_per_cta = env.kernel->shared_bytes;
    disp.total_ctas = grid.count();
    disp.next_cta = std::min<uint64_t>(skip_ctas, disp.total_ctas);
    disp.completed_ctas = disp.next_cta;
    disp.preload_base = skip_ctas;
    disp.preloaded = std::move(preloaded);

    MLGS_REQUIRE(disp.threads_per_cta <= cfg_.max_threads_per_core,
                 "CTA larger than a core's thread capacity");
    MLGS_REQUIRE(disp.shared_bytes_per_cta <= cfg_.shared_mem_per_core,
                 "CTA shared memory exceeds the core's capacity");

    last_progress_clock_ = clock_;
    active_.push_back(std::move(ak));
    return active_.back()->token;
}

KernelCompletion
GpuModel::finishActive(size_t idx)
{
    ActiveKernel &ak = *active_[idx];
    const StatBase now = snapshot();

    KernelRunStats rs;
    rs.kernel_name = ak.env.kernel->name;
    rs.cycles = clock_ - ak.start_clock;
    for (unsigned c = 0; c < cores_.size(); c++) {
        const CoreCounters &cc = now.core[c];
        const CoreCounters &c0 = ak.base.core[c];
        rs.warp_instructions += cc.issued_instructions - c0.issued_instructions;
        rs.thread_instructions +=
            cc.thread_instructions - c0.thread_instructions;
    }
    rs.ipc = rs.cycles ? double(rs.warp_instructions) / double(rs.cycles) : 0.0;
    const uint64_t dl1h = now.l1_h - ak.base.l1_h;
    const uint64_t dl1m = now.l1_m - ak.base.l1_m;
    rs.l1_hit_rate = (dl1h + dl1m) ? double(dl1h) / double(dl1h + dl1m) : 0.0;
    const uint64_t dl2h = now.l2_h - ak.base.l2_h;
    const uint64_t dl2m = now.l2_m - ak.base.l2_m;
    rs.l2_hit_rate = (dl2h + dl2m) ? double(dl2h) / double(dl2h + dl2m) : 0.0;
    const uint64_t drh = now.row_h - ak.base.row_h;
    const uint64_t drm = now.row_m - ak.base.row_m;
    rs.dram_row_hit_rate = (drh + drm) ? double(drh) / double(drh + drm) : 0.0;

    // Full window delta (per-launch breakdown + sampling extrapolation).
    rs.start_cycle = ak.start_clock;
    TimingTotals &w = rs.totals;
    w.cycles = now.busy - ak.base.busy;
    w.warp_instructions = rs.warp_instructions;
    w.thread_instructions = rs.thread_instructions;
    for (unsigned c = 0; c < cores_.size(); c++) {
        const CoreCounters &cc = now.core[c];
        const CoreCounters &c0 = ak.base.core[c];
        w.alu += cc.alu - c0.alu;
        w.sfu += cc.sfu - c0.sfu;
        w.mem_insts += cc.mem - c0.mem;
        w.shared_accesses += cc.shared_accesses - c0.shared_accesses;
    }
    w.l1_hits = dl1h;
    w.l1_misses = dl1m;
    w.l2_hits = dl2h;
    w.l2_misses = dl2m;
    w.icnt_flits = now.icnt - ak.base.icnt;
    w.dram_reads = dl2m;
    w.dram_writes = now.l2_wb - ak.base.l2_wb;
    w.dram_row_hits = drh;
    w.dram_row_misses = drm;
    w.core_active_cycles = now.active - ak.base.active;
    w.core_idle_cycles = now.idle - ak.base.idle;

    // Grand totals accumulate the delta since the previous accumulation
    // point, so overlapping kernels never double-count an event.
    for (unsigned c = 0; c < cores_.size(); c++) {
        const CoreCounters &cc = now.core[c];
        const CoreCounters &c0 = totals_base_.core[c];
        totals_.warp_instructions +=
            cc.issued_instructions - c0.issued_instructions;
        totals_.thread_instructions +=
            cc.thread_instructions - c0.thread_instructions;
        totals_.alu += cc.alu - c0.alu;
        totals_.sfu += cc.sfu - c0.sfu;
        totals_.mem_insts += cc.mem - c0.mem;
        totals_.shared_accesses += cc.shared_accesses - c0.shared_accesses;
    }
    totals_.l1_hits += now.l1_h - totals_base_.l1_h;
    totals_.l1_misses += now.l1_m - totals_base_.l1_m;
    totals_.l2_hits += now.l2_h - totals_base_.l2_h;
    totals_.l2_misses += now.l2_m - totals_base_.l2_m;
    totals_.dram_reads += now.l2_m - totals_base_.l2_m;
    totals_.dram_writes += now.l2_wb - totals_base_.l2_wb;
    totals_.dram_row_hits += now.row_h - totals_base_.row_h;
    totals_.dram_row_misses += now.row_m - totals_base_.row_m;
    totals_base_ = now;

    const KernelCompletion comp{ak.token, clock_};
    per_launch_.push_back(rs);
    finished_.emplace(ak.token, std::move(rs));
    active_.erase(active_.begin() + long(idx));
    last_progress_clock_ = clock_;
    return comp;
}

std::optional<KernelCompletion>
GpuModel::advanceUntil(cycle_t limit, stats::AerialSampler *sampler)
{
    while (!active_.empty()) {
        // Mark kernels whose start time has arrived as started.
        for (auto &ak : active_) {
            if (!ak->started && clock_ >= ak->not_before) {
                ak->started = true;
                ak->start_clock = clock_;
                ak->base = snapshot();
            }
        }

        // Retire the earliest-launched finished kernel. A lone kernel also
        // waits for the pipeline to drain, preserving the classic
        // one-kernel-at-a-time cycle accounting exactly.
        for (size_t i = 0; i < active_.size(); i++) {
            ActiveKernel &ak = *active_[i];
            if (ak.started && ak.disp.allDone() &&
                (active_.size() > 1 || !anythingInFlight()))
                return finishActive(i);
        }

        // Fully idle gap: every resident kernel is still waiting for its
        // start time — jump the clock instead of simulating empty cycles.
        if (!anythingInFlight()) {
            bool any_started = false;
            cycle_t next_start = kNoDeadline;
            for (const auto &ak : active_) {
                if (ak->started)
                    any_started = true;
                else
                    next_start = std::min(next_start, ak->not_before);
            }
            if (!any_started && next_start > clock_) {
                if (next_start > limit) {
                    clock_ = limit;
                    last_progress_clock_ = clock_;
                    return std::nullopt;
                }
                clock_ = next_start;
                last_progress_clock_ = clock_;
                continue;
            }
        }

        if (clock_ >= limit)
            return std::nullopt;

        // Leftover-core CTA dispatch: kernels claim free core slots in
        // launch order, so a later kernel fills whatever an earlier one
        // leaves unoccupied.
        for (auto &core : cores_) {
            for (auto &ak : active_) {
                if (!ak->started)
                    continue;
                while (!ak->disp.allIssued() && core->tryIssueCta(ak->disp)) {
                }
            }
        }

        cycleOnce(clock_, sampler);
        totals_.cycles++;
        clock_++;

        uint64_t completed = 0;
        for (const auto &ak : active_)
            completed += ak->disp.completed_ctas;
        if (completed != last_completed_sum_) {
            last_completed_sum_ = completed;
            last_progress_clock_ = clock_;
        }
        MLGS_ASSERT(clock_ - last_progress_clock_ < 10'000'000,
                    "timing model made no progress for 10M cycles in kernel ",
                    active_.front()->env.kernel->name);
    }
    return std::nullopt;
}

KernelRunStats
GpuModel::collectKernel(uint64_t token)
{
    const auto it = finished_.find(token);
    MLGS_REQUIRE(it != finished_.end(),
                 "collectKernel: token not finished: ", token);
    KernelRunStats rs = std::move(it->second);
    finished_.erase(it);
    return rs;
}

KernelRunStats
GpuModel::runKernel(const func::LaunchEnv &env, const Dim3 &grid,
                    const Dim3 &block, stats::AerialSampler *sampler)
{
    return runKernelFrom(env, grid, block, 0, {}, sampler);
}

KernelRunStats
GpuModel::runKernelFrom(const func::LaunchEnv &env, const Dim3 &grid,
                        const Dim3 &block, uint64_t skip_ctas,
                        std::vector<std::unique_ptr<func::CtaExec>>
                            preloaded_ctas,
                        stats::AerialSampler *sampler)
{
    MLGS_REQUIRE(active_.empty(),
                 "runKernelFrom requires an idle device (",
                 active_.size(), " kernels resident)");
    const uint64_t token = beginKernel(env, grid, block, clock_, skip_ctas,
                                       std::move(preloaded_ctas));
    const auto comp = advanceUntil(kNoDeadline, sampler);
    MLGS_REQUIRE(comp && comp->token == token, "kernel did not complete");
    return collectKernel(token);
}

} // namespace mlgs::timing
