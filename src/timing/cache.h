/**
 * @file
 * Tag-only set-associative cache with LRU replacement and MSHR merging.
 * Functional data lives in GpuMemory; this models hit/miss timing only,
 * which is all the performance model needs.
 */
#ifndef MLGS_TIMING_CACHE_H
#define MLGS_TIMING_CACHE_H

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "timing/config.h"

namespace mlgs::timing
{

/** Cache access outcomes. */
enum class CacheOutcome
{
    Hit,
    Miss,          ///< allocated an MSHR; fill expected
    MissMerged,    ///< merged into an existing MSHR for the same line
    ReservationFail, ///< MSHR full: retry later
};

/** Tag array + MSHR bookkeeping. */
class TagCache
{
  public:
    explicit TagCache(const CacheConfig &cfg);

    /**
     * Probe for a read. On Miss the caller must eventually call fill();
     * MissMerged means a fill for the line is already outstanding.
     */
    CacheOutcome accessRead(addr_t line_addr, cycle_t now);

    /** Probe for a write-through write (updates LRU on hit, never allocates). */
    bool accessWrite(addr_t line_addr, cycle_t now);

    /** Install a line on fill response; frees its MSHR. */
    void fill(addr_t line_addr, cycle_t now);

    /** True if an MSHR is outstanding for the line. */
    bool mshrPending(addr_t line_addr) const
    {
        return mshrs_.count(line_addr) != 0;
    }

    size_t mshrInUse() const { return mshrs_.size(); }

    // Statistics.
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

  private:
    struct Line
    {
        addr_t tag = 0;
        bool valid = false;
        cycle_t last_use = 0;
    };

    unsigned setIndex(addr_t line_addr) const;
    Line *probe(addr_t line_addr);

    CacheConfig cfg_;
    unsigned num_sets_;
    std::vector<Line> lines_; ///< num_sets * assoc
    std::unordered_map<addr_t, unsigned> mshrs_; ///< line -> merged count

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_CACHE_H
