/**
 * @file
 * Per-partition DRAM channel: banks with open-row tracking, FR-FCFS (or FCFS)
 * scheduling, and a shared data bus. Produces the per-bank busy/pending
 * signals behind the paper's DRAM efficiency and utilization plots, where
 * serial single-bank phases appear as "bank camping".
 */
#ifndef MLGS_TIMING_DRAM_H
#define MLGS_TIMING_DRAM_H

#include <deque>
#include <vector>

#include "timing/config.h"
#include "timing/mem_fetch.h"

namespace mlgs::timing
{

/** One GDDR channel with cfg.dram_banks banks. */
class DramChannel
{
  public:
    DramChannel(const GpuConfig &cfg, unsigned partition_id);

    /** Enqueue a request (post-L2 miss or write-through). */
    void push(MemFetch mf);

    /** Advance one cycle; completed requests appear on done(). */
    void cycle(cycle_t now);

    bool hasDone(cycle_t now) const { return done_.ready(now); }
    MemFetch popDone();

    bool
    busyOrPending() const
    {
        return !queue_.empty() || !done_.empty() || inflight_ > 0;
    }

    unsigned numBanks() const { return unsigned(banks_.size()); }

    /** Bank status sampled each cycle by the GPU top level. */
    bool bankTransferring(unsigned bank, cycle_t now) const;
    bool bankPending(unsigned bank) const;

    // Aggregate statistics.
    uint64_t rowHits() const { return row_hits_; }
    uint64_t rowMisses() const { return row_misses_; }

    // Per-bank breakdown (determinism checks, bank-camping diagnostics).
    uint64_t bankRowHits(unsigned bank) const { return bank_row_hits_[bank]; }
    uint64_t
    bankRowMisses(unsigned bank) const
    {
        return bank_row_misses_[bank];
    }

    /** Address mapping exposed for tests. */
    unsigned bankOf(addr_t line_addr) const;
    uint64_t rowOf(addr_t line_addr) const;

  private:
    struct Bank
    {
        uint64_t open_row = UINT64_MAX;
        cycle_t ready_at = 0;        ///< bank free for a new column access
        cycle_t transfer_start = 0;  ///< data-bus window for its last request
        cycle_t transfer_until = 0;
    };

    const GpuConfig *cfg_;
    unsigned partition_id_;
    std::vector<Bank> banks_;
    std::vector<unsigned> pending_per_bank_;
    std::deque<MemFetch> queue_;
    DelayQueue<MemFetch> done_;
    cycle_t bus_free_ = 0;
    unsigned inflight_ = 0;

    uint64_t row_hits_ = 0;
    uint64_t row_misses_ = 0;
    std::vector<uint64_t> bank_row_hits_;
    std::vector<uint64_t> bank_row_misses_;
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_DRAM_H
