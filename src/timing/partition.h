/**
 * @file
 * One memory partition: an L2 slice in front of a DRAM channel, as in
 * GPGPU-Sim's memory partition unit.
 */
#ifndef MLGS_TIMING_PARTITION_H
#define MLGS_TIMING_PARTITION_H

#include <unordered_map>

#include "timing/cache.h"
#include "timing/dram.h"

namespace mlgs::timing
{

/** L2 slice + DRAM channel + queues. */
class MemPartition
{
  public:
    MemPartition(const GpuConfig &cfg, unsigned id);

    /** Request arriving from the interconnect. */
    void pushRequest(MemFetch mf) { incoming_.push_back(std::move(mf)); }

    /** Advance one cycle. */
    void cycle(cycle_t now);

    bool hasResponse() const { return !responses_.empty(); }
    MemFetch popResponse();

    bool busy() const;

    const TagCache &l2() const { return l2_; }
    const DramChannel &dram() const { return dram_; }
    DramChannel &dram() { return dram_; }

    uint64_t l2Writebacks() const { return writes_seen_; }

  private:
    const GpuConfig *cfg_;
    unsigned id_;
    TagCache l2_;
    DramChannel dram_;

    std::deque<MemFetch> incoming_;
    DelayQueue<MemFetch> l2_hit_pipe_;
    std::deque<MemFetch> responses_;
    std::unordered_map<addr_t, std::vector<MemFetch>> waiters_;

    uint64_t writes_seen_ = 0;
    unsigned inflight_ = 0; ///< reads being serviced (DRAM or hit pipe)
};

} // namespace mlgs::timing

#endif // MLGS_TIMING_PARTITION_H
